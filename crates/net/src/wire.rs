//! The IS-GC wire protocol: hand-rolled, length-prefixed binary frames.
//!
//! Every frame is
//!
//! ```text
//! +----------+---------+---------+-------------+--------------------+
//! | magic    | version | job id  | payload len | payload            |
//! | "ISGC"   | u8 = 2  | u64 LE  | u32 LE      | tag u8 + body      |
//! +----------+---------+---------+-------------+--------------------+
//! ```
//!
//! The job id scopes every frame to one tenant job of a multi-job server
//! (version 2; version 1 had no job field): a master drops frames tagged
//! with a foreign job instead of letting a misconfigured worker feed
//! codewords into another tenant's training run. Single-job deployments
//! use job id 0 throughout.
//!
//! Multi-byte integers are little-endian; `f64` vectors are a `u32` element
//! count followed by IEEE-754 bit patterns. Decoding is strict: a frame with
//! an unknown tag, an inner length that disagrees with the payload length,
//! or trailing bytes is rejected with a typed [`WireError`] — never a panic —
//! so a corrupt or malicious peer cannot take down the master.

use std::fmt;
use std::io::{self, Read, Write};

/// Leading bytes of every frame.
pub const MAGIC: [u8; 4] = *b"ISGC";

/// Protocol version; bumped on any incompatible change (2 added the job id
/// header field and the sub-master messages).
pub const VERSION: u8 = 2;

/// Length of the fixed frame header: magic + version + job id + payload len.
pub const HEADER_LEN: usize = 17;

/// Upper bound on the payload length field (64 MiB): anything larger is
/// treated as a corrupt frame instead of an allocation request.
pub const MAX_PAYLOAD: u32 = 1 << 26;

/// Everything that can go wrong reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame used a protocol version this build does not speak.
    UnsupportedVersion(u8),
    /// The payload length field exceeded [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload length field exceeded the receiving connection's
    /// configured clamp (see [`FrameAssembler::with_max_frame`]) — a frame
    /// that may be protocol-legal elsewhere but is an allocation request
    /// this peer refuses to honor.
    FrameTooLarge {
        /// The length the frame header requested.
        len: u32,
        /// The clamp it exceeded.
        max: u32,
    },
    /// The payload's message tag is not a known [`Message`] variant.
    UnknownTag(u8),
    /// The payload ended before the message body was complete.
    Truncated,
    /// The payload kept going after the message body was complete.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversized(len) => write!(f, "frame payload of {len} bytes exceeds limit"),
            WireError::FrameTooLarge { len, max } => write!(
                f,
                "frame payload of {len} bytes exceeds this connection's clamp of {max}"
            ),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Truncated => write!(f, "truncated message body"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message body"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Everything master and workers say to each other.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → master: first message on a fresh connection. `preferred` is
    /// the worker's previous id when reconnecting, `None` on first contact.
    Hello {
        /// Slot the worker wants back after a reconnect.
        preferred: Option<u64>,
    },
    /// Master → worker: registration reply carrying the worker's assignment.
    Assign {
        /// The slot this connection now owns.
        worker: u64,
        /// Total number of workers (and partitions) in the cluster.
        n: u64,
        /// Partitions stored per worker.
        c: u64,
        /// Mini-batch size per partition per step.
        batch_size: u64,
        /// Seed shared by master and workers for datasets and batches.
        seed: u64,
        /// The data partitions this worker computes each step.
        partitions: Vec<u64>,
    },
    /// Master → worker: fresh parameters; compute step `step` on them.
    Params {
        /// Step the parameters belong to (tags the reply).
        step: u64,
        /// The flat parameter vector.
        values: Vec<f64>,
    },
    /// Worker → master: one coded gradient for `step`.
    Codeword {
        /// Sender's slot.
        worker: u64,
        /// Step this codeword was computed for.
        step: u64,
        /// The summed per-partition gradient vector.
        values: Vec<f64>,
    },
    /// Worker → master: liveness signal, sent on an interval.
    Heartbeat {
        /// Sender's slot.
        worker: u64,
    },
    /// Master → worker: training is over; disconnect and exit.
    Shutdown,
    /// Worker → master: "I will not contribute a codeword for `step`" —
    /// a fast-fail straggler signal, so the master can stop counting this
    /// worker toward the step's wait target immediately instead of burning
    /// a heartbeat timeout on it.
    Decline {
        /// Sender's slot.
        worker: u64,
        /// The step being sat out.
        step: u64,
    },
    /// Sub-master → root: first message on a fresh connection, claiming a
    /// worker shard of a 2-level aggregation tree.
    SubHello {
        /// The shard index this sub-master owns (or wants back after a
        /// reconnect).
        shard: u64,
    },
    /// Root → sub-master: registration reply carrying the shard geometry.
    ShardAssign {
        /// The shard this connection now owns.
        shard: u64,
        /// First worker id of the shard (inclusive).
        lo: u64,
        /// One past the last worker id of the shard.
        hi: u64,
        /// Total number of workers in the job's cluster.
        n: u64,
        /// Partitions stored per worker.
        c: u64,
        /// Mini-batch size per partition per step.
        batch_size: u64,
        /// Seed shared by the whole job.
        seed: u64,
    },
    /// Sub-master → root: one shard's decoded step — the shard-local
    /// arrival set, the shard's slice of the independent set, and the
    /// partial codeword sum (empty when the shard recovered nothing). The
    /// raw codewords never leave the shard.
    ShardUpload {
        /// Sender's shard.
        shard: u64,
        /// Step this upload was computed for.
        step: u64,
        /// Shard workers whose codeword arrived in time.
        arrivals: Vec<u64>,
        /// Shard workers the shard-local decode selected.
        selected: Vec<u64>,
        /// Partitions recovered by this shard.
        recovered: u64,
        /// Pairwise partial sum over the shard's worker range; empty when
        /// `recovered` is zero.
        partial: Vec<f64>,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_ASSIGN: u8 = 2;
const TAG_PARAMS: u8 = 3;
const TAG_CODEWORD: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_DECLINE: u8 = 7;
const TAG_SUB_HELLO: u8 = 8;
const TAG_SHARD_ASSIGN: u8 = 9;
const TAG_SHARD_UPLOAD: u8 = 10;

impl Message {
    /// Serializes the message as one complete frame for job 0 — the
    /// single-job deployments' shorthand for [`Message::encode_for_job`].
    pub fn encode(&self) -> Vec<u8> {
        self.encode_for_job(0)
    }

    /// Serializes the message as one complete frame (header + payload)
    /// scoped to `job`.
    pub fn encode_for_job(&self, job: u64) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Message::Hello { preferred } => {
                payload.push(TAG_HELLO);
                match preferred {
                    Some(id) => {
                        payload.push(1);
                        put_u64(&mut payload, *id);
                    }
                    None => {
                        payload.push(0);
                        put_u64(&mut payload, 0);
                    }
                }
            }
            Message::Assign {
                worker,
                n,
                c,
                batch_size,
                seed,
                partitions,
            } => {
                payload.push(TAG_ASSIGN);
                put_u64(&mut payload, *worker);
                put_u64(&mut payload, *n);
                put_u64(&mut payload, *c);
                put_u64(&mut payload, *batch_size);
                put_u64(&mut payload, *seed);
                put_u64_vec(&mut payload, partitions);
            }
            Message::Params { step, values } => {
                payload.push(TAG_PARAMS);
                put_u64(&mut payload, *step);
                put_f64_vec(&mut payload, values);
            }
            Message::Codeword {
                worker,
                step,
                values,
            } => {
                payload.push(TAG_CODEWORD);
                put_u64(&mut payload, *worker);
                put_u64(&mut payload, *step);
                put_f64_vec(&mut payload, values);
            }
            Message::Heartbeat { worker } => {
                payload.push(TAG_HEARTBEAT);
                put_u64(&mut payload, *worker);
            }
            Message::Shutdown => payload.push(TAG_SHUTDOWN),
            Message::Decline { worker, step } => {
                payload.push(TAG_DECLINE);
                put_u64(&mut payload, *worker);
                put_u64(&mut payload, *step);
            }
            Message::SubHello { shard } => {
                payload.push(TAG_SUB_HELLO);
                put_u64(&mut payload, *shard);
            }
            Message::ShardAssign {
                shard,
                lo,
                hi,
                n,
                c,
                batch_size,
                seed,
            } => {
                payload.push(TAG_SHARD_ASSIGN);
                put_u64(&mut payload, *shard);
                put_u64(&mut payload, *lo);
                put_u64(&mut payload, *hi);
                put_u64(&mut payload, *n);
                put_u64(&mut payload, *c);
                put_u64(&mut payload, *batch_size);
                put_u64(&mut payload, *seed);
            }
            Message::ShardUpload {
                shard,
                step,
                arrivals,
                selected,
                recovered,
                partial,
            } => {
                payload.push(TAG_SHARD_UPLOAD);
                put_u64(&mut payload, *shard);
                put_u64(&mut payload, *step);
                put_u64_vec(&mut payload, arrivals);
                put_u64_vec(&mut payload, selected);
                put_u64(&mut payload, *recovered);
                put_f64_vec(&mut payload, partial);
            }
        }
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.extend_from_slice(&job.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Parses one frame from the front of `bytes`, returning the message and
    /// the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Any malformed input — short buffer, bad magic, foreign version,
    /// oversized or inconsistent lengths, unknown tag, trailing bytes —
    /// yields the corresponding [`WireError`] without panicking.
    pub fn decode(bytes: &[u8]) -> Result<(Message, usize), WireError> {
        Self::decode_tagged(bytes).map(|(_, message, used)| (message, used))
    }

    /// [`Message::decode`] also returning the frame's job id.
    ///
    /// # Errors
    ///
    /// As [`Message::decode`].
    pub fn decode_tagged(bytes: &[u8]) -> Result<(u64, Message, usize), WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if bytes[4] != VERSION {
            return Err(WireError::UnsupportedVersion(bytes[4]));
        }
        let job = u64::from_le_bytes(bytes[5..13].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(bytes[13..17].try_into().expect("4-byte slice"));
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized(len));
        }
        let len = len as usize;
        if bytes.len() < HEADER_LEN + len {
            return Err(WireError::Truncated);
        }
        let message = Self::decode_payload(&bytes[HEADER_LEN..HEADER_LEN + len])?;
        Ok((job, message, HEADER_LEN + len))
    }

    /// Parses a frame payload (tag byte + body) — the slice a
    /// [`FrameAssembler`] yields per complete frame.
    ///
    /// # Errors
    ///
    /// As [`Message::decode`], minus the header errors (the assembler
    /// already validated those).
    pub fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
        let mut cursor = Cursor::new(payload);
        let tag = cursor.u8()?;
        let message = match tag {
            TAG_HELLO => {
                let flag = cursor.u8()?;
                let id = cursor.u64()?;
                Message::Hello {
                    preferred: (flag != 0).then_some(id),
                }
            }
            TAG_ASSIGN => Message::Assign {
                worker: cursor.u64()?,
                n: cursor.u64()?,
                c: cursor.u64()?,
                batch_size: cursor.u64()?,
                seed: cursor.u64()?,
                partitions: cursor.u64_vec()?,
            },
            TAG_PARAMS => Message::Params {
                step: cursor.u64()?,
                values: cursor.f64_vec()?,
            },
            TAG_CODEWORD => Message::Codeword {
                worker: cursor.u64()?,
                step: cursor.u64()?,
                values: cursor.f64_vec()?,
            },
            TAG_HEARTBEAT => Message::Heartbeat {
                worker: cursor.u64()?,
            },
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_DECLINE => Message::Decline {
                worker: cursor.u64()?,
                step: cursor.u64()?,
            },
            TAG_SUB_HELLO => Message::SubHello {
                shard: cursor.u64()?,
            },
            TAG_SHARD_ASSIGN => Message::ShardAssign {
                shard: cursor.u64()?,
                lo: cursor.u64()?,
                hi: cursor.u64()?,
                n: cursor.u64()?,
                c: cursor.u64()?,
                batch_size: cursor.u64()?,
                seed: cursor.u64()?,
            },
            TAG_SHARD_UPLOAD => Message::ShardUpload {
                shard: cursor.u64()?,
                step: cursor.u64()?,
                arrivals: cursor.u64_vec()?,
                selected: cursor.u64_vec()?,
                recovered: cursor.u64()?,
                partial: cursor.f64_vec()?,
            },
            other => return Err(WireError::UnknownTag(other)),
        };
        if cursor.remaining() != 0 {
            return Err(WireError::TrailingBytes(cursor.remaining()));
        }
        Ok(message)
    }
}

/// Writes one framed message to `w` and flushes it, returning the number of
/// bytes put on the wire (header + payload).
///
/// # Errors
///
/// Propagates transport failures as [`WireError::Io`].
pub fn write_message(w: &mut impl Write, message: &Message) -> Result<usize, WireError> {
    write_message_for_job(w, 0, message)
}

/// [`write_message`] scoped to a job id.
///
/// # Errors
///
/// Propagates transport failures as [`WireError::Io`].
pub fn write_message_for_job(
    w: &mut impl Write,
    job: u64,
    message: &Message,
) -> Result<usize, WireError> {
    write_frame(w, &message.encode_for_job(job))
}

/// Writes one already-encoded frame and flushes it — the buffer-reuse path:
/// a master broadcasting to `n` workers encodes once and writes the same
/// bytes `n` times instead of re-serializing per peer.
///
/// # Errors
///
/// Propagates transport failures as [`WireError::Io`].
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<usize, WireError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Reads exactly one framed message from `r`.
///
/// # Errors
///
/// [`WireError::Closed`] when the peer shut down cleanly between frames;
/// otherwise any [`WireError`] a malformed frame produces.
pub fn read_message(r: &mut impl Read) -> Result<Message, WireError> {
    read_message_sized(r).map(|(message, _)| message)
}

/// Reads exactly one framed message from `r`, also returning the frame size
/// in bytes (header + payload) — the master's byte counters feed on this.
///
/// # Errors
///
/// As [`read_message`].
pub fn read_message_sized(r: &mut impl Read) -> Result<(Message, usize), WireError> {
    read_message_tagged(r).map(|(_, message, bytes)| (message, bytes))
}

/// [`read_message_sized`] also returning the frame's job id, so a server
/// can reject frames scoped to a foreign tenant.
///
/// # Errors
///
/// As [`read_message`].
pub fn read_message_tagged(r: &mut impl Read) -> Result<(u64, Message, usize), WireError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish clean EOF (no bytes at a frame boundary) from truncation.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(WireError::UnsupportedVersion(header[4]));
    }
    let job = u64::from_le_bytes(header[5..13].try_into().expect("8-byte slice"));
    let len = u32::from_le_bytes(header[13..17].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    let message = Message::decode_payload(&payload)?;
    Ok((job, message, header.len() + payload.len()))
}

/// Encodes a `Params` frame for `job` directly from a borrowed slice —
/// byte-identical to `Message::Params { step, values: values.to_vec() }
/// .encode_for_job(job)` without the intermediate `Vec<f64>` clone. The
/// broadcast hot path calls this once per step with the engine's parameter
/// slice.
pub fn encode_params_frame(job: u64, step: u64, values: &[f64]) -> Vec<u8> {
    let payload_len = 1 + 8 + 4 + values.len() * 8;
    let mut frame = Vec::with_capacity(HEADER_LEN + payload_len);
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.extend_from_slice(&job.to_le_bytes());
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.push(TAG_PARAMS);
    put_u64(&mut frame, step);
    put_f64_vec(&mut frame, values);
    frame
}

/// One complete frame yielded by [`FrameAssembler::next_frame`], borrowing
/// the assembler's buffer: the payload is read in place, never copied out.
#[derive(Debug)]
pub struct Frame<'a> {
    /// The tenant job id from the frame header.
    pub job: u64,
    /// The frame payload: tag byte + message body.
    pub payload: &'a [u8],
    /// Total frame size on the wire (header + payload).
    pub wire_len: usize,
}

impl Frame<'_> {
    /// Decodes the payload into a [`Message`] (the copying path; codeword
    /// payloads can instead be viewed in place via [`CodewordView`]).
    ///
    /// # Errors
    ///
    /// As [`Message::decode_payload`].
    pub fn message(&self) -> Result<Message, WireError> {
        Message::decode_payload(self.payload)
    }
}

/// Reassembles wire frames from arbitrarily split byte chunks — the state a
/// nonblocking connection keeps between readiness events. Bytes go in via
/// [`FrameAssembler::push`] (or [`FrameAssembler::fill_from`], which reads
/// straight into the buffer tail so the transport never copies through an
/// intermediate allocation), complete frames come out of
/// [`FrameAssembler::next_frame`] as in-place payload slices.
///
/// Consumed bytes are reclaimed lazily: the buffer compacts on the next
/// fill, so back-to-back `next_frame` calls on one readiness burst touch
/// each byte exactly once.
///
/// Every assembler clamps the length prefix *before* any allocation
/// happens: the protocol-wide [`MAX_PAYLOAD`] always applies, and
/// [`FrameAssembler::with_max_frame`] tightens it per connection — a peer
/// claiming a larger frame gets a typed [`WireError::FrameTooLarge`]
/// instead of a buffer sized by its header.
#[derive(Debug)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
    /// Largest payload this connection accepts (≤ [`MAX_PAYLOAD`]).
    max_frame: u32,
}

impl Default for FrameAssembler {
    fn default() -> FrameAssembler {
        FrameAssembler {
            buf: Vec::new(),
            start: 0,
            max_frame: MAX_PAYLOAD,
        }
    }
}

/// How many bytes [`FrameAssembler::fill_from`] grows the buffer by per
/// read call.
const FILL_CHUNK: usize = 64 * 1024;

impl FrameAssembler {
    /// An empty assembler accepting payloads up to [`MAX_PAYLOAD`].
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// An empty assembler clamped to `max_frame` payload bytes (itself
    /// clamped to [`MAX_PAYLOAD`]): a frame whose header claims more is
    /// rejected with [`WireError::FrameTooLarge`] before any allocation.
    pub fn with_max_frame(max_frame: u32) -> FrameAssembler {
        FrameAssembler {
            max_frame: max_frame.min(MAX_PAYLOAD),
            ..FrameAssembler::default()
        }
    }

    /// Bytes buffered but not yet consumed by [`FrameAssembler::next_frame`].
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Appends raw bytes (a test vector, or a chunk already read elsewhere).
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `r` into the buffer tail, returning how many bytes
    /// arrived (0 means EOF). On a nonblocking source, `WouldBlock` passes
    /// through as the error it is — the caller's readiness loop handles it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `read` error.
    pub fn fill_from(&mut self, r: &mut impl io::Read) -> io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + FILL_CHUNK, 0);
        match r.read(&mut self.buf[old..]) {
            Ok(k) => {
                self.buf.truncate(old + k);
                Ok(k)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Drops already-consumed bytes from the front of the buffer.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Yields the next complete frame, or `Ok(None)` when the buffered
    /// bytes end mid-frame (more readiness events will complete it).
    ///
    /// # Errors
    ///
    /// [`WireError::BadMagic`], [`WireError::UnsupportedVersion`],
    /// [`WireError::Oversized`], or [`WireError::FrameTooLarge`] when the
    /// buffered header is malformed or over this connection's clamp —
    /// connection-fatal, since frame boundaries are lost.
    pub fn next_frame(&mut self) -> Result<Option<Frame<'_>>, WireError> {
        let bytes = &self.buf[self.start..];
        if bytes.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if bytes[4] != VERSION {
            return Err(WireError::UnsupportedVersion(bytes[4]));
        }
        let job = u64::from_le_bytes(bytes[5..13].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(bytes[13..17].try_into().expect("4-byte slice"));
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized(len));
        }
        if len > self.max_frame {
            return Err(WireError::FrameTooLarge {
                len,
                max: self.max_frame,
            });
        }
        let len = len as usize;
        if bytes.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload_start = self.start + HEADER_LEN;
        self.start = payload_start + len;
        Ok(Some(Frame {
            job,
            payload: &self.buf[payload_start..payload_start + len],
            wire_len: HEADER_LEN + len,
        }))
    }
}

/// A zero-copy view of a `Codeword` payload: the gradient values stay as
/// little-endian bytes in the connection's reassembly buffer and are decoded
/// element-wise straight into their destination, skipping both the
/// intermediate `Vec<f64>` and the copy into a vector type.
#[derive(Debug)]
pub struct CodewordView<'a> {
    /// The sender's claimed slot.
    pub worker: u64,
    /// The step the codeword was computed for.
    pub step: u64,
    values: &'a [u8],
}

impl<'a> CodewordView<'a> {
    /// Views `payload` as a codeword. Returns `None` when the payload is a
    /// different message kind (fall back to [`Message::decode_payload`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::TrailingBytes`] when the
    /// payload is a codeword but its body is inconsistent.
    pub fn parse(payload: &'a [u8]) -> Option<Result<CodewordView<'a>, WireError>> {
        if payload.first() != Some(&TAG_CODEWORD) {
            return None;
        }
        let mut cursor = Cursor::new(&payload[1..]);
        Some((|| {
            let worker = cursor.u64()?;
            let step = cursor.u64()?;
            let count = cursor.u32()? as usize;
            let values = cursor.take_remaining();
            if values.len() < count * 8 {
                return Err(WireError::Truncated);
            }
            if values.len() > count * 8 {
                return Err(WireError::TrailingBytes(values.len() - count * 8));
            }
            Ok(CodewordView {
                worker,
                step,
                values,
            })
        })())
    }

    /// Number of gradient values.
    pub fn len(&self) -> usize {
        self.values.len() / 8
    }

    /// Whether the codeword carries no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Decodes value `i` in place.
    ///
    /// # Panics
    ///
    /// When `i >= self.len()`.
    pub fn value(&self, i: usize) -> f64 {
        f64::from_le_bytes(
            self.values[i * 8..i * 8 + 8]
                .try_into()
                .expect("8-byte slice"),
        )
    }
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64_vec(buf: &mut Vec<u8>, xs: &[u64]) {
    buf.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for x in xs {
        put_u64(buf, *x);
    }
}

fn put_f64_vec(buf: &mut Vec<u8>, xs: &[f64]) {
    buf.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

/// A bounds-checked reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take_remaining(&mut self) -> &'a [u8] {
        let slice = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        slice
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let count = self.u32()? as usize;
        // The count must be consistent with the bytes actually present;
        // otherwise a corrupt count could request a huge allocation.
        if self.remaining() < count * 8 {
            return Err(WireError::Truncated);
        }
        (0..count).map(|_| self.u64()).collect()
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let count = self.u32()? as usize;
        if self.remaining() < count * 8 {
            return Err(WireError::Truncated);
        }
        (0..count)
            .map(|_| {
                self.take(8)
                    .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte slice")))
            })
            .collect()
    }
}

/// A deterministic corpus of messages covering every wire variant, shared
/// by the wire property tests here and the model checker's conformance
/// tests in `isgc-mc` (the dependency direction — chaos and mc depend on
/// net — puts the shared generator in this crate).
///
/// The same seed always yields byte-identical messages: field values come
/// from a splitmix64 stream, floats are raw bit patterns (NaN payloads,
/// infinities and subnormals included), and every variant appears at least
/// `len / 10` times because the variant index cycles rather than being
/// sampled.
#[must_use]
pub fn corpus_messages(seed: u64) -> Vec<Message> {
    let mut state = seed;
    let mut next = move || -> u64 {
        // splitmix64: the standard seeding PRNG; tiny, full-period, and
        // good enough for corpus generation.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..80u64)
        .map(|i| {
            let a = next();
            let b = next();
            let ints: Vec<u64> = (0..next() % 16).map(|_| next() % 1024).collect();
            let floats: Vec<f64> = (0..next() % 48).map(|_| f64::from_bits(next())).collect();
            match i % 10 {
                0 => Message::Hello {
                    preferred: (a % 2 == 0).then_some(b),
                },
                1 => Message::Assign {
                    worker: a,
                    n: b,
                    c: a.wrapping_add(b),
                    batch_size: b.wrapping_mul(3),
                    seed: a ^ b,
                    partitions: ints,
                },
                2 => Message::Params {
                    step: a,
                    values: floats,
                },
                3 => Message::Codeword {
                    worker: a,
                    step: b,
                    values: floats,
                },
                4 => Message::Heartbeat { worker: a },
                5 => Message::Decline { worker: a, step: b },
                6 => Message::SubHello { shard: a },
                7 => Message::ShardAssign {
                    shard: a,
                    lo: b,
                    hi: a.wrapping_add(b),
                    n: a.wrapping_mul(7),
                    c: b.wrapping_mul(5),
                    batch_size: a ^ b,
                    seed: b.rotate_left(17),
                },
                8 => Message::ShardUpload {
                    shard: a,
                    step: b,
                    arrivals: ints.clone(),
                    selected: ints,
                    recovered: a.wrapping_add(3),
                    partial: floats,
                },
                _ => Message::Shutdown,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(message: Message) {
        let frame = message.encode();
        let (decoded, used) = Message::decode(&frame).expect("decode");
        assert_eq!(decoded, message);
        assert_eq!(used, frame.len());
        // Streaming path agrees with the slice path, and both size accounts
        // (reader and writer) report the full frame length.
        let mut reader = io::Cursor::new(frame.clone());
        let (streamed, bytes) = read_message_sized(&mut reader).expect("read");
        assert_eq!(streamed, message);
        assert_eq!(bytes, frame.len());
        let mut sink = Vec::new();
        assert_eq!(
            write_message(&mut sink, &message).expect("write"),
            frame.len()
        );
        assert_eq!(sink, frame);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::Hello { preferred: None });
        roundtrip(Message::Hello { preferred: Some(7) });
        roundtrip(Message::Assign {
            worker: 3,
            n: 8,
            c: 2,
            batch_size: 16,
            seed: 99,
            partitions: vec![3, 4],
        });
        roundtrip(Message::Params {
            step: 12,
            values: vec![0.5, -1.25, f64::MAX, f64::MIN_POSITIVE],
        });
        roundtrip(Message::Codeword {
            worker: 1,
            step: 12,
            values: vec![],
        });
        roundtrip(Message::Heartbeat { worker: 5 });
        roundtrip(Message::Shutdown);
        roundtrip(Message::Decline {
            worker: 6,
            step: 31,
        });
    }

    #[test]
    fn nan_payloads_survive_bitwise() {
        let frame = Message::Params {
            step: 0,
            values: vec![f64::NAN],
        }
        .encode();
        let (decoded, _) = Message::decode(&frame).unwrap();
        match decoded {
            Message::Params { values, .. } => assert!(values[0].is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut frame = Message::Shutdown.encode();
        frame[0] = b'X';
        assert!(matches!(
            Message::decode(&frame),
            Err(WireError::BadMagic(_))
        ));
        let mut frame = Message::Shutdown.encode();
        frame[4] = 9;
        // (version byte position is unchanged from v1)
        assert!(matches!(
            Message::decode(&frame),
            Err(WireError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let frame = Message::Codeword {
            worker: 0,
            step: 3,
            values: vec![1.0, 2.0],
        }
        .encode();
        for cut in 0..frame.len() {
            assert!(
                Message::decode(&frame[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn rejects_unknown_tag_trailing_bytes_and_oversize() {
        let mut frame = Message::Shutdown.encode();
        frame[HEADER_LEN] = 200; // tag byte
        assert!(matches!(
            Message::decode(&frame),
            Err(WireError::UnknownTag(200))
        ));

        let mut frame = Message::Heartbeat { worker: 1 }.encode();
        frame.push(0xAB);
        let len = (frame.len() - HEADER_LEN) as u32;
        frame[13..17].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            Message::decode(&frame),
            Err(WireError::TrailingBytes(1))
        ));

        let mut frame = Message::Shutdown.encode();
        frame[13..17].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            Message::decode(&frame),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn corrupt_vector_count_is_an_error_not_an_alloc() {
        let mut frame = Message::Params {
            step: 1,
            values: vec![1.0],
        }
        .encode();
        // Overwrite the element count (after tag + step) with u32::MAX.
        let count_offset = HEADER_LEN + 1 + 8;
        frame[count_offset..count_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Message::decode(&frame), Err(WireError::Truncated)));
    }

    #[test]
    fn clean_eof_is_closed_mid_frame_is_truncated() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_message(&mut io::Cursor::new(empty)),
            Err(WireError::Closed)
        ));
        let frame = Message::Heartbeat { worker: 2 }.encode();
        let cut = &frame[..5];
        assert!(matches!(
            read_message(&mut io::Cursor::new(cut)),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn params_frame_fast_path_is_byte_identical() {
        let values = vec![0.5, -1.25, f64::NAN, f64::MAX];
        for job in [0u64, 9] {
            for step in [0u64, 3, u64::MAX] {
                let slow = Message::Params {
                    step,
                    values: values.clone(),
                }
                .encode_for_job(job);
                assert_eq!(encode_params_frame(job, step, &values), slow);
            }
        }
        assert_eq!(
            encode_params_frame(1, 2, &[]),
            Message::Params {
                step: 2,
                values: vec![]
            }
            .encode_for_job(1)
        );
    }

    #[test]
    fn assembler_yields_frames_across_any_split() {
        let frame = Message::Codeword {
            worker: 3,
            step: 7,
            values: vec![1.5, -2.5, 0.0],
        }
        .encode_for_job(11);
        for cut in 0..=frame.len() {
            let mut asm = FrameAssembler::new();
            asm.push(&frame[..cut]);
            if cut < frame.len() {
                assert!(asm.next_frame().expect("prefix is well-formed").is_none());
                asm.push(&frame[cut..]);
            }
            let got = asm.next_frame().expect("valid").expect("complete");
            assert_eq!(got.job, 11);
            assert_eq!(got.wire_len, frame.len());
            assert_eq!(
                got.message().expect("payload decodes"),
                Message::Codeword {
                    worker: 3,
                    step: 7,
                    values: vec![1.5, -2.5, 0.0],
                }
            );
            assert_eq!(asm.pending(), 0);
        }
    }

    #[test]
    fn assembler_rejects_corrupt_headers() {
        let mut frame = Message::Shutdown.encode();
        frame[0] = b'X';
        let mut asm = FrameAssembler::new();
        asm.push(&frame);
        assert!(matches!(asm.next_frame(), Err(WireError::BadMagic(_))));

        let mut frame = Message::Shutdown.encode();
        frame[13..17].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut asm = FrameAssembler::new();
        asm.push(&frame);
        assert!(matches!(asm.next_frame(), Err(WireError::Oversized(_))));
    }

    #[test]
    fn assembler_clamps_to_its_configured_max_frame() {
        // A frame comfortably within MAX_PAYLOAD but over the connection's
        // clamp is FrameTooLarge — rejected off the header, before the body
        // even arrives (only HEADER_LEN bytes are buffered here).
        let frame = Message::Params {
            step: 1,
            values: vec![0.0; 64],
        }
        .encode();
        let payload_len = (frame.len() - HEADER_LEN) as u32;
        let mut asm = FrameAssembler::with_max_frame(payload_len - 1);
        asm.push(&frame[..HEADER_LEN]);
        assert!(matches!(
            asm.next_frame(),
            Err(WireError::FrameTooLarge { len, max })
                if len == payload_len && max == payload_len - 1
        ));

        // At exactly the clamp the frame passes.
        let mut asm = FrameAssembler::with_max_frame(payload_len);
        asm.push(&frame);
        let got = asm.next_frame().expect("within clamp").expect("complete");
        assert_eq!(got.wire_len, frame.len());

        // The clamp can never exceed the protocol-wide bound.
        let asm = FrameAssembler::with_max_frame(u32::MAX);
        assert_eq!(asm.max_frame, MAX_PAYLOAD);
    }

    #[test]
    fn codeword_view_matches_copying_decode() {
        let message = Message::Codeword {
            worker: 5,
            step: 12,
            values: vec![1.0, -0.5, f64::MIN_POSITIVE, f64::NAN],
        };
        let frame = message.encode_for_job(2);
        let payload = &frame[HEADER_LEN..];
        let view = CodewordView::parse(payload)
            .expect("is a codeword")
            .expect("well-formed");
        assert_eq!((view.worker, view.step, view.len()), (5, 12, 4));
        assert!(!view.is_empty());
        let Message::Codeword { values, .. } = message else {
            unreachable!()
        };
        for (i, v) in values.iter().enumerate() {
            assert_eq!(view.value(i).to_bits(), v.to_bits());
        }

        // Non-codeword payloads are None, truncated bodies are errors.
        let other = Message::Heartbeat { worker: 1 }.encode();
        assert!(CodewordView::parse(&other[HEADER_LEN..]).is_none());
        let short = &payload[..payload.len() - 1];
        assert!(CodewordView::parse(short).expect("codeword tag").is_err());
    }

    #[test]
    fn back_to_back_frames_parse_in_sequence() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&Message::Heartbeat { worker: 1 }.encode());
        stream.extend_from_slice(&Message::Shutdown.encode());
        let (first, used) = Message::decode(&stream).unwrap();
        assert_eq!(first, Message::Heartbeat { worker: 1 });
        let (second, used2) = Message::decode(&stream[used..]).unwrap();
        assert_eq!(second, Message::Shutdown);
        assert_eq!(used + used2, stream.len());
    }
}
