//! A hand-rolled nonblocking reactor: one thread multiplexing readiness
//! over every master-side socket.
//!
//! The previous transport spawned two threads per connection (a handshake
//! thread plus a long-lived reader), capping a master — and every
//! sub-master of the PR-5 aggregation tree — at tens of workers before
//! context-switch and stack overhead dominate. This module replaces all of
//! it with a single event loop in the style of DSLab's event-driven
//! executor: sockets are switched to nonblocking mode, `poll(2)` reports
//! readiness, and the reactor owns
//!
//! - **registration**: the listener is just another pollable; fresh
//!   connections sit in a `Pending` phase until their `Hello`/`SubHello`
//!   arrives (job-tag-checked at the door), then the owning state machine
//!   adopts or rejects them;
//! - **read interest + reassembly**: each connection keeps a
//!   [`FrameAssembler`] so a frame split across arbitrarily many readiness
//!   events decodes byte-identically; `Codeword` payloads are decoded *in
//!   place* from that buffer straight into an [`isgc_linalg::Vector`] —
//!   no intermediate `Vec<u8>`/`Vec<f64>` copies on the upload hot path;
//! - **write interest + pooled broadcast**: outbound frames are
//!   reference-counted `Arc<[u8]>` slices shared across per-connection
//!   write queues, with partial writes resumed on the next `POLLOUT`;
//! - **timers**: a bucketed tick-based [`TimerWheel`] drives per-connection
//!   heartbeat deadlines and handshake timeouts, so liveness is a logical
//!   clock decision instead of a race between wall-clock thread sleeps;
//! - **a drained event queue**: readiness is translated into [`NetEvent`]s
//!   consumed one at a time by the unchanged single-threaded master state
//!   machine ([`crate::master::MasterLoop`](crate::master) and the tree
//!   loops in [`crate::submaster`]).
//!
//! Liveness decisions, slot assignment, and step semantics stay in the
//! owning loop; the reactor only moves bytes and fires deadlines. All
//! `net.reactor.*` metric series are [`isgc_obs::Class::Timing`], so golden
//! logical snapshots are untouched by the transport swap.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use isgc_linalg::Vector;
use isgc_obs::Registry;

use crate::wire::{CodewordView, FrameAssembler, Message};
use crate::NetError;

/// Identity of one connection for its whole life. Tokens are never reused,
/// so an event from a replaced connection can always be told apart from the
/// current one (the role epochs played under the thread-per-connection
/// transport).
pub type Token = u64;

/// Logical timer granularity. Deadlines are quantized to ticks of this
/// size; anything finer would be noise next to the masters' 20 ms poll
/// cadence.
const TICK: Duration = Duration::from_millis(5);

/// Slots in the timer wheel; deadlines further out than one rotation just
/// survive extra sweeps (hashed-wheel style).
const WHEEL_SLOTS: usize = 512;

/// How long a pending connection may sit without completing its handshake
/// before the reactor drops it (the old handshake threads' read timeout).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// What the transport tells the owning state machine. Public because the
/// model checker's virtual network (`isgc-mc`) synthesizes these events
/// directly through the [`crate::seam::Transport`] seam.
#[derive(Debug)]
pub enum NetEvent {
    /// A pending connection introduced itself as a worker.
    Hello {
        /// The introducing connection.
        token: Token,
        /// The worker slot the peer claims, if it has one.
        preferred: Option<u64>,
    },
    /// A pending connection introduced itself as a sub-master.
    SubHello {
        /// The introducing connection.
        token: Token,
        /// The shard the sub-master claims.
        shard: u64,
    },
    /// An adopted connection produced a message of `bytes` wire bytes.
    Msg {
        /// The connection that produced the frame.
        token: Token,
        /// The decoded message.
        message: Message,
        /// Wire bytes consumed by the frame (for byte counters).
        bytes: usize,
    },
    /// An adopted connection produced a codeword, decoded in place from the
    /// reassembly buffer (the zero-copy upload path — `Message::Codeword`
    /// never materializes).
    Codeword {
        /// The connection that produced the codeword.
        token: Token,
        /// The step the codeword is tagged for.
        step: u64,
        /// The codeword payload.
        values: Vector,
        /// Wire bytes consumed by the frame (for byte counters).
        bytes: usize,
    },
    /// An adopted connection passed its idle deadline on the logical timer
    /// wheel without producing a byte. The connection stays open — the
    /// owner decides what silence means — and the deadline re-arms.
    HeartbeatTimeout {
        /// The silent connection.
        token: Token,
    },
    /// An adopted connection is gone (EOF, reset, write failure, or a
    /// malformed frame) and has been deregistered.
    Gone {
        /// The departed connection.
        token: Token,
    },
}

/// Connection lifecycle phase.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Phase {
    /// Accepted, but the introduction frame has not been processed yet.
    Pending,
    /// Owned by a slot of the state machine; full message flow.
    Adopted,
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    phase: Phase,
    /// Partial-frame reassembly across readiness events.
    assembler: FrameAssembler,
    /// Outbound frames (shared broadcast buffers) with a resume offset
    /// into the front frame.
    out: VecDeque<(Arc<[u8]>, usize)>,
    /// Idle timeout re-armed on every inbound byte; `None` disables
    /// silence detection (e.g. a sub-master's root link).
    idle: Option<Duration>,
    /// The currently armed deadline tick; wheel entries that do not match
    /// are stale and ignored (lazy cancellation).
    deadline: u64,
    /// A pending connection that already emitted its introduction stops
    /// parsing until adopted.
    introduced: bool,
}

/// What parsing a connection's buffered bytes concluded.
enum Parsed {
    /// Keep the connection.
    Keep,
    /// Drop it (malformed frame, wrong introduction, foreign handshake).
    Fatal,
}

/// A bucketed logical-time wheel: `schedule` files `(token, deadline)`
/// entries under `deadline % slots`, `advance_to` sweeps the ticks since
/// the last advance and yields every entry now due. Cancellation is lazy —
/// the reactor compares each fired entry against the connection's current
/// deadline — so re-arming is O(1). Pure tick arithmetic, no clocks: unit
/// tests drive it deterministically (see below), production maps wall time
/// to ticks once per poll.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(Token, u64)>>,
    now: u64,
}

impl TimerWheel {
    pub(crate) fn new(slots: usize) -> TimerWheel {
        TimerWheel {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            now: 0,
        }
    }

    /// The last tick `advance_to` reached.
    pub(crate) fn now(&self) -> u64 {
        self.now
    }

    /// Files an entry due at `deadline` (clamped to the future: entries at
    /// or before the current tick fire on the next advance).
    pub(crate) fn schedule(&mut self, token: Token, deadline: u64) {
        let deadline = deadline.max(self.now + 1);
        let slot = (deadline % self.slots.len() as u64) as usize;
        self.slots[slot].push((token, deadline));
    }

    /// Advances logical time to `tick`, returning every `(token, deadline)`
    /// entry that came due. A jump of a full rotation or more sweeps each
    /// bucket exactly once.
    pub(crate) fn advance_to(&mut self, tick: u64) -> Vec<(Token, u64)> {
        let mut due = Vec::new();
        if tick <= self.now {
            return due;
        }
        let len = self.slots.len() as u64;
        if tick - self.now >= len {
            for bucket in &mut self.slots {
                bucket.retain(|&(token, deadline)| {
                    if deadline <= tick {
                        due.push((token, deadline));
                        false
                    } else {
                        true
                    }
                });
            }
        } else {
            for t in self.now + 1..=tick {
                let slot = (t % len) as usize;
                self.slots[slot].retain(|&(token, deadline)| {
                    if deadline <= tick {
                        due.push((token, deadline));
                        false
                    } else {
                        true
                    }
                });
            }
        }
        self.now = tick;
        due
    }
}

/// The readiness syscall, gated per platform. On Linux this is a direct
/// `poll(2)` binding — std already links libc, so no new dependency — and
/// the only `unsafe` in the crate. Elsewhere a portable fallback marks
/// every descriptor ready and lets the nonblocking reads/writes sort out
/// who actually had data (correct, just busier).
#[cfg(target_os = "linux")]
mod sys {
    #![allow(unsafe_code)]

    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    /// Mirror of `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Blocks until a descriptor is ready or `timeout` passes; returns how
    /// many descriptors have nonzero `revents`. `EINTR` reads as a timeout.
    pub fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        if fds.is_empty() {
            std::thread::sleep(timeout);
            return Ok(0);
        }
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `fds` is an exclusively borrowed slice of `#[repr(C)]`
        // pollfd structs and `nfds` is exactly its length; the kernel
        // writes only the `revents` fields within the slice.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use std::io;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    /// Fallback stand-in for `struct pollfd`; `fd` is unused because the
    /// sweep never enters the kernel.
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// Portable readiness sweep: report everything as ready after a short
    /// sleep; the nonblocking I/O attempts that follow are the real test.
    pub fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        std::thread::sleep(timeout.min(Duration::from_millis(2)));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

#[cfg(target_os = "linux")]
use std::os::unix::io::AsRawFd;

/// Raw descriptor for the poll set; a constant placeholder on platforms
/// using the readiness sweep (which never dereferences it).
#[cfg(target_os = "linux")]
fn raw_fd(stream: &impl AsRawFd) -> i32 {
    stream.as_raw_fd()
}

#[cfg(not(target_os = "linux"))]
fn raw_fd<T>(_stream: &T) -> i32 {
    -1
}

/// The master-side event loop. One instance per listening state machine
/// (flat master, tree root, or sub-master shard); the swarm client reuses
/// it listener-less for its outbound connections.
pub(crate) struct Reactor {
    listener: Option<TcpListener>,
    conns: BTreeMap<Token, Conn>,
    next_token: Token,
    events: VecDeque<NetEvent>,
    wheel: TimerWheel,
    base: Instant,
    job: u64,
    metrics: Option<Registry>,
}

impl Reactor {
    /// Builds a reactor around an (optional) listening socket, switching it
    /// to nonblocking mode.
    pub(crate) fn new(
        listener: Option<TcpListener>,
        job: u64,
        metrics: Option<Registry>,
    ) -> Result<Reactor, NetError> {
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
        }
        Ok(Reactor {
            listener,
            conns: BTreeMap::new(),
            next_token: 1,
            events: VecDeque::new(),
            wheel: TimerWheel::new(WHEEL_SLOTS),
            base: Instant::now(),
            job,
            metrics,
        })
    }

    /// Pops the next event, pumping the poll loop for up to `timeout` when
    /// the queue is empty. `Ok(None)` means the timeout passed quietly —
    /// the drop-in replacement for the old channel's `recv_timeout`.
    pub(crate) fn next_event(&mut self, timeout: Duration) -> Result<Option<NetEvent>, NetError> {
        if let Some(event) = self.events.pop_front() {
            return Ok(Some(event));
        }
        self.pump(timeout)?;
        Ok(self.events.pop_front())
    }

    /// Promotes a pending connection to an adopted peer: sends `first` (the
    /// registration reply), arms the idle deadline, and parses any frames
    /// the peer optimistically sent after its introduction. Returns false
    /// when the connection died in the process.
    pub(crate) fn adopt(&mut self, token: Token, first: Arc<[u8]>, idle: Option<Duration>) -> bool {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            conn.phase = Phase::Adopted;
            conn.idle = idle;
            conn.introduced = true;
        }
        self.arm_idle(token);
        self.send(token, first);
        if !self.conns.contains_key(&token) {
            return false;
        }
        self.parse_conn(token);
        self.conns.contains_key(&token)
    }

    /// Registers an already-handshaked outbound stream (a sub-master's root
    /// link, a swarm member) as an adopted connection.
    ///
    /// # Errors
    ///
    /// Propagates the switch to nonblocking mode.
    pub(crate) fn register_adopted(
        &mut self,
        stream: TcpStream,
        idle: Option<Duration>,
    ) -> Result<Token, NetError> {
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true)?;
        let token = self.insert(stream, Phase::Adopted, idle);
        self.arm_idle(token);
        Ok(token)
    }

    /// Drops a pending connection the state machine refused.
    pub(crate) fn reject(&mut self, token: Token) {
        self.remove(token);
    }

    /// Queues one frame on a connection and flushes as much as the socket
    /// accepts right now; the remainder rides on write readiness. Failures
    /// surface as a [`NetEvent::Gone`] rather than a return value, exactly
    /// like a failure discovered mid-broadcast.
    pub(crate) fn send(&mut self, token: Token, frame: Arc<[u8]>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.out.push_back((frame, 0));
        if flush_out(conn, &self.metrics).is_err() {
            self.drop_conn(token);
        }
    }

    /// Sends one shared frame to every listed connection — the pooled
    /// broadcast path: a single encode, `Arc` clones instead of buffer
    /// copies, per-peer resume offsets.
    pub(crate) fn broadcast(&mut self, frame: &Arc<[u8]>, targets: impl Iterator<Item = Token>) {
        for token in targets {
            self.send(token, Arc::clone(frame));
        }
    }

    /// Pumps the loop until every write queue drained or `limit` passed —
    /// the graceful-teardown flush behind a `Shutdown` broadcast (and the
    /// sub-master's synchronous upload guarantee).
    pub(crate) fn flush_all(&mut self, limit: Duration) {
        let deadline = Instant::now() + limit;
        while self.conns.values().any(|c| !c.out.is_empty()) {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return;
            };
            if self.pump(remaining.min(TICK)).is_err() {
                return;
            }
        }
    }

    /// Pumps the loop until `token`'s write queue drained (true) or the
    /// connection died / `limit` passed (false) — the sub-master's
    /// synchronous upload-delivery guarantee. Events gathered while
    /// flushing stay queued for the next [`Reactor::next_event`].
    pub(crate) fn flush_conn(&mut self, token: Token, limit: Duration) -> bool {
        let deadline = Instant::now() + limit;
        loop {
            match self.conns.get(&token) {
                None => return false,
                Some(conn) if conn.out.is_empty() => return true,
                Some(_) => {}
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            if self.pump(remaining.min(TICK)).is_err() {
                return false;
            }
        }
    }

    /// Emulates a killed process: hard-closes every socket (pending and
    /// adopted), drops unsent frames, and closes the listener.
    pub(crate) fn hard_close_all(&mut self) {
        for conn in self.conns.values() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        self.conns.clear();
        self.listener = None;
        self.gauge_conns();
    }

    /// One poll cycle: wait for readiness (or `timeout`), fire due timers,
    /// then drain every ready descriptor into the event queue.
    fn pump(&mut self, timeout: Duration) -> Result<(), NetError> {
        let has_listener = self.listener.is_some();
        let mut fds = Vec::with_capacity(self.conns.len() + 1);
        let mut tokens = Vec::with_capacity(self.conns.len());
        if let Some(listener) = &self.listener {
            fds.push(sys::PollFd {
                fd: raw_fd(listener),
                events: sys::POLLIN,
                revents: 0,
            });
        }
        for (&token, conn) in &self.conns {
            let mut interest = sys::POLLIN;
            if !conn.out.is_empty() {
                interest |= sys::POLLOUT;
            }
            fds.push(sys::PollFd {
                fd: raw_fd(&conn.stream),
                events: interest,
                revents: 0,
            });
            tokens.push(token);
        }
        let ready = sys::wait(&mut fds, timeout)?;
        self.count(crate::metrics::REACTOR_WAKEUPS_TOTAL, 1);
        // Readiness is handled *before* timers fire: a read re-arms the
        // connection's idle deadline, so a peer whose heartbeats sat in
        // the kernel buffer while the owning loop was busy elsewhere is
        // not "silent" — exactly the judgment the per-connection reader
        // threads used to make. Only a peer with nothing to read when its
        // deadline passes times out.
        if ready > 0 {
            self.count(crate::metrics::REACTOR_READY_EVENTS_TOTAL, ready as u64);
            let base = usize::from(has_listener);
            if has_listener && fds[0].revents != 0 {
                self.accept_ready();
            }
            for (i, token) in tokens.into_iter().enumerate() {
                let revents = fds[base + i].revents;
                if revents == 0 {
                    continue;
                }
                if revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
                    self.read_ready(token);
                }
                if revents & sys::POLLOUT != 0 {
                    self.write_ready(token);
                }
            }
        }
        self.fire_timers();
        Ok(())
    }

    /// Accepts every connection the listener has queued.
    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.insert(stream, Phase::Pending, None);
                    let deadline = self.wheel.now() + ticks(HANDSHAKE_TIMEOUT);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.deadline = deadline;
                    }
                    self.wheel.schedule(token, deadline);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Reads a connection to exhaustion, parsing frames as they complete.
    fn read_ready(&mut self, token: Token) {
        let mut read_any = false;
        let mut eof = false;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // A pending peer that already introduced itself stays buffered
            // until the state machine adopts (or rejects) it.
            if conn.phase == Phase::Pending && conn.introduced {
                return;
            }
            match conn.assembler.fill_from(&mut conn.stream) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(_) => {
                    read_any = true;
                    self.parse_conn(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        if read_any {
            self.arm_idle(token);
        }
        if eof {
            self.drop_conn(token);
        }
    }

    /// Parses whatever complete frames `token`'s assembler holds.
    fn parse_conn(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match parse_frames(token, conn, &mut self.events, self.job) {
            Parsed::Keep => {}
            Parsed::Fatal => self.drop_conn(token),
        }
    }

    /// Drains a connection's write queue after write readiness.
    fn write_ready(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if flush_out(conn, &self.metrics).is_err() {
            self.drop_conn(token);
        }
    }

    /// Advances the wheel to the current logical tick and translates due
    /// entries: pending connections past their handshake deadline are
    /// dropped, silent adopted ones get a [`NetEvent::HeartbeatTimeout`]
    /// and a re-armed deadline.
    fn fire_timers(&mut self) {
        let now = self.tick_now();
        let due = self.wheel.advance_to(now);
        let mut fired = 0u64;
        let mut handshake_expired: Vec<Token> = Vec::new();
        for (token, deadline) in due {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if conn.deadline != deadline {
                continue; // superseded by activity since scheduling
            }
            fired += 1;
            match conn.phase {
                // Handshake too slow: not one of ours; drop silently.
                Phase::Pending => handshake_expired.push(token),
                Phase::Adopted => {
                    if let Some(idle) = conn.idle {
                        let next = now + ticks(idle);
                        conn.deadline = next;
                        self.wheel.schedule(token, next);
                        self.events.push_back(NetEvent::HeartbeatTimeout { token });
                    }
                }
            }
        }
        for token in handshake_expired {
            self.remove(token);
        }
        if fired > 0 {
            self.count(crate::metrics::REACTOR_TIMER_FIRES_TOTAL, fired);
        }
    }

    /// Re-arms `token`'s idle deadline off the logical clock (called on
    /// every inbound byte).
    fn arm_idle(&mut self, token: Token) {
        let now = self.wheel.now();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let Some(idle) = conn.idle else {
            return;
        };
        let deadline = now + ticks(idle);
        conn.deadline = deadline;
        self.wheel.schedule(token, deadline);
    }

    /// The current logical tick (wall clock quantized once per poll).
    fn tick_now(&self) -> u64 {
        (self.base.elapsed().as_millis() / TICK.as_millis()) as u64
    }

    fn insert(&mut self, stream: TcpStream, phase: Phase, idle: Option<Duration>) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        self.conns.insert(
            token,
            Conn {
                stream,
                phase,
                assembler: FrameAssembler::new(),
                out: VecDeque::new(),
                idle,
                deadline: 0,
                introduced: false,
            },
        );
        self.gauge_conns();
        token
    }

    /// Deregisters a connection, emitting `Gone` when the owner had it.
    fn drop_conn(&mut self, token: Token) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.phase == Phase::Adopted {
                self.events.push_back(NetEvent::Gone { token });
            }
            self.gauge_conns();
        }
    }

    /// Silently deregisters (replaced connections, rejections).
    fn remove(&mut self, token: Token) {
        self.conns.remove(&token);
        self.gauge_conns();
    }

    fn count(&self, name: &str, by: u64) {
        if let Some(registry) = &self.metrics {
            registry.inc_by(name, &[], isgc_obs::Class::Timing, by);
        }
    }

    fn gauge_conns(&self) {
        if let Some(registry) = &self.metrics {
            registry.set_gauge(
                crate::metrics::REACTOR_CONNECTIONS,
                &[],
                isgc_obs::Class::Timing,
                self.conns.len() as f64,
            );
        }
    }
}

/// Duration → whole ticks, at least one.
fn ticks(d: Duration) -> u64 {
    (d.as_millis().div_ceil(TICK.as_millis())).max(1) as u64
}

/// Writes as much of `conn`'s queue as the socket accepts. `Err` means the
/// connection is dead.
fn flush_out(conn: &mut Conn, metrics: &Option<Registry>) -> Result<(), ()> {
    while let Some((frame, offset)) = conn.out.front_mut() {
        match conn.stream.write(&frame[*offset..]) {
            Ok(0) => return Err(()),
            Ok(k) => {
                *offset += k;
                if *offset == frame.len() {
                    let bytes = frame.len() as u64;
                    conn.out.pop_front();
                    if let Some(registry) = metrics {
                        use isgc_obs::Class::Timing;
                        registry.inc(crate::metrics::FRAMES_SENT_TOTAL, &[], Timing);
                        registry.inc_by(crate::metrics::BYTES_SENT_TOTAL, &[], Timing, bytes);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(registry) = metrics {
                    registry.inc(
                        crate::metrics::REACTOR_PARTIAL_WRITES_TOTAL,
                        &[],
                        isgc_obs::Class::Timing,
                    );
                }
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

/// Turns `conn`'s buffered bytes into events. Pending connections yield
/// exactly one introduction (job-checked at the door); adopted ones yield
/// the full message flow with codewords decoded in place.
fn parse_frames(
    token: Token,
    conn: &mut Conn,
    events: &mut VecDeque<NetEvent>,
    job: u64,
) -> Parsed {
    loop {
        if conn.phase == Phase::Pending && conn.introduced {
            return Parsed::Keep;
        }
        let phase = conn.phase;
        let frame = match conn.assembler.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return Parsed::Keep,
            Err(_) => return Parsed::Fatal,
        };
        match phase {
            Phase::Pending => {
                if frame.job != job {
                    // Tagged for a foreign tenant: not one of ours.
                    return Parsed::Fatal;
                }
                match frame.message() {
                    Ok(Message::Hello { preferred }) => {
                        conn.introduced = true;
                        events.push_back(NetEvent::Hello { token, preferred });
                    }
                    Ok(Message::SubHello { shard }) => {
                        conn.introduced = true;
                        events.push_back(NetEvent::SubHello { token, shard });
                    }
                    _ => return Parsed::Fatal,
                }
            }
            Phase::Adopted => {
                if frame.job != job {
                    continue; // foreign tenant frame: discard, keep reading
                }
                let bytes = frame.wire_len;
                match CodewordView::parse(frame.payload) {
                    Some(Ok(view)) => {
                        let values = Vector::from_fn(view.len(), |i| view.value(i));
                        events.push_back(NetEvent::Codeword {
                            token,
                            step: view.step,
                            values,
                            bytes,
                        });
                    }
                    Some(Err(_)) => return Parsed::Fatal,
                    None => match frame.message() {
                        Ok(message) => events.push_back(NetEvent::Msg {
                            token,
                            message,
                            bytes,
                        }),
                        Err(_) => return Parsed::Fatal,
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_exactly_at_the_deadline_tick() {
        let mut wheel = TimerWheel::new(8);
        wheel.schedule(1, 5);
        assert!(wheel.advance_to(4).is_empty());
        assert_eq!(wheel.advance_to(5), vec![(1, 5)]);
        assert!(wheel.advance_to(100).is_empty());
    }

    #[test]
    fn wheel_survives_rotation_wraparound() {
        // Deadline more than one rotation out must not fire early when its
        // bucket is swept on an earlier pass.
        let mut wheel = TimerWheel::new(4);
        wheel.schedule(7, 9); // bucket 1, more than two rotations of 4
        assert!(wheel.advance_to(5).is_empty()); // sweeps bucket 1 at t=5
        assert_eq!(wheel.advance_to(9), vec![(7, 9)]);
    }

    #[test]
    fn wheel_handles_large_jumps_and_reentry() {
        let mut wheel = TimerWheel::new(4);
        wheel.schedule(1, 2);
        wheel.schedule(2, 1000);
        // A jump far past both deadlines (≥ one rotation) fires both.
        let mut due = wheel.advance_to(5000);
        due.sort_unstable();
        assert_eq!(due, vec![(1, 2), (2, 1000)]);
        // Re-arming after the jump still works.
        wheel.schedule(3, 5002);
        assert_eq!(wheel.advance_to(5002), vec![(3, 5002)]);
        assert_eq!(wheel.now(), 5002);
    }

    #[test]
    fn wheel_lazy_cancellation_is_the_callers_contract() {
        // Two entries for one token: the reactor keeps only the newest
        // deadline and ignores the stale firing — both entries surface.
        let mut wheel = TimerWheel::new(16);
        wheel.schedule(1, 3);
        wheel.schedule(1, 6); // re-armed
        assert_eq!(wheel.advance_to(3), vec![(1, 3)]); // stale, caller skips
        assert_eq!(wheel.advance_to(6), vec![(1, 6)]);
    }

    #[test]
    fn wheel_clamps_past_deadlines_to_the_next_tick() {
        let mut wheel = TimerWheel::new(8);
        wheel.advance_to(10);
        wheel.schedule(1, 4); // already past: fires on the next advance
        assert_eq!(wheel.advance_to(11), vec![(1, 11)]);
    }

    #[test]
    fn ticks_rounds_up_and_never_returns_zero() {
        assert_eq!(ticks(Duration::from_millis(1)), 1);
        assert_eq!(ticks(TICK), 1);
        assert_eq!(ticks(Duration::from_millis(6)), 2);
        assert_eq!(ticks(Duration::ZERO), 1);
        assert_eq!(ticks(Duration::from_secs(2)), 400);
    }
}
