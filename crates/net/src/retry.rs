//! One retry policy for every reconnection path in the runtime.
//!
//! PR 1 grew three ad-hoc backoff loops (worker initial connect, worker
//! reconnect, heartbeat write retries); they disagreed on capping and none
//! jittered, so a restarted master was greeted by every worker dialing on
//! the same schedule — a thundering herd. [`RetryPolicy`] unifies them:
//! exponential backoff with a hard cap, a bounded attempt count, and
//! *deterministic* jitter derived from a salt (typically the worker id), so
//! peers spread out without introducing nondeterminism that would break
//! seeded chaos replay.

use std::time::Duration;

/// Exponential backoff with cap, bounded attempts, and deterministic jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the second attempt (the first runs immediately).
    pub base: Duration,
    /// Multiplier applied to the delay after every failed attempt.
    pub factor: u32,
    /// Upper bound on any single delay, pre-jitter.
    pub cap: Duration,
    /// Total attempts made before giving up (at least 1).
    pub max_attempts: u32,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor drawn from `[1 − jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(50),
            factor: 2,
            cap: Duration::from_secs(2),
            max_attempts: 8,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that tries exactly once, with no waiting.
    pub fn once() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The delay to sleep *before* attempt `attempt` (0-based). Attempt 0
    /// runs immediately; later delays grow by `factor`, saturate at `cap`,
    /// and are jittered deterministically by `salt` so distinct peers using
    /// the same policy spread their retries apart.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let mut d = self.base;
        for _ in 1..attempt {
            d = d.saturating_mul(self.factor).min(self.cap);
        }
        d = d.min(self.cap);
        if self.jitter <= 0.0 {
            return d;
        }
        // splitmix64 of (salt, attempt) → uniform factor in
        // [1 − jitter/2, 1 + jitter/2]. Pure function of its inputs: the
        // same peer retries on the same schedule every run.
        let mut x = salt ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let scale = 1.0 + self.jitter * (unit - 0.5);
        Duration::from_secs_f64(d.as_secs_f64() * scale)
    }

    /// Runs `op` up to `max_attempts` times, sleeping the policy's delay
    /// between attempts; returns the first success or the last error.
    ///
    /// # Errors
    ///
    /// The error of the final failed attempt.
    pub fn run<T, E>(&self, salt: u64, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            let pause = self.delay(attempt, salt);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_is_immediate() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay(0, 123), Duration::ZERO);
    }

    #[test]
    fn delays_grow_and_cap() {
        let p = RetryPolicy {
            base: Duration::from_millis(100),
            factor: 2,
            cap: Duration::from_millis(350),
            max_attempts: 6,
            jitter: 0.0,
        };
        assert_eq!(p.delay(1, 0), Duration::from_millis(100));
        assert_eq!(p.delay(2, 0), Duration::from_millis(200));
        assert_eq!(p.delay(3, 0), Duration::from_millis(350)); // capped
        assert_eq!(p.delay(9, 0), Duration::from_millis(350));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            base: Duration::from_millis(100),
            factor: 2,
            cap: Duration::from_secs(1),
            max_attempts: 4,
            jitter: 0.5,
        };
        for attempt in 1..4 {
            for salt in 0..8u64 {
                let a = p.delay(attempt, salt);
                let b = p.delay(attempt, salt);
                assert_eq!(a, b, "jitter must be a pure function");
                let nominal = p.delay(attempt, salt).as_secs_f64() / 1.0;
                let unjittered = RetryPolicy {
                    jitter: 0.0,
                    ..p.clone()
                }
                .delay(attempt, salt)
                .as_secs_f64();
                assert!(nominal >= unjittered * 0.75 - 1e-9);
                assert!(nominal <= unjittered * 1.25 + 1e-9);
            }
        }
        // Different salts actually spread.
        assert_ne!(p.delay(1, 1), p.delay(1, 2));
    }

    #[test]
    fn run_stops_on_success_and_reports_last_error() {
        let p = RetryPolicy {
            base: Duration::from_millis(1),
            factor: 1,
            cap: Duration::from_millis(1),
            max_attempts: 3,
            jitter: 0.0,
        };
        let mut calls = 0;
        let ok: Result<u32, &str> = p.run(0, || {
            calls += 1;
            if calls == 2 {
                Ok(7)
            } else {
                Err("nope")
            }
        });
        assert_eq!(ok, Ok(7));
        assert_eq!(calls, 2);

        let mut calls = 0;
        let err: Result<u32, String> = p.run(0, || {
            calls += 1;
            Err(format!("fail {calls}"))
        });
        assert_eq!(err, Err("fail 3".to_string()));
    }
}
