//! The IS-GC master: listens on TCP, registers workers, drives training
//! steps, and ignores an arbitrary subset of stragglers every step.
//!
//! Robustness machinery (PR 2): the master checkpoints `(step, params,
//! assignments)` so a restarted process resumes mid-training; workers that
//! stay dead for a configurable number of steps are declared permanently
//! dead and their partitions are re-homed onto survivors (placement repair,
//! minimizing added conflict-graph edges); a step that closes having
//! recovered nothing surfaces as a typed [`NetError::Degraded`] instead of
//! silently spinning. All per-step randomness is derived from
//! `(seed, step)`, never streamed, so a resumed run is bit-identical to an
//! uninterrupted one from the restart point onward.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use isgc_core::decode::{CrDecoder, Decoder, ExactDecoder, FrDecoder, HrDecoder};
use isgc_core::{bounds, ConflictGraph, Placement, Scheme, WorkerSet};
use isgc_linalg::Vector;
use isgc_ml::dataset::Dataset;
use isgc_ml::model::Model;
use isgc_ml::optimizer::Sgd;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::checkpoint::{CheckpointConfig, MasterCheckpoint};
use crate::report::{NetReport, NetTrainReport, RepairEvent};
use crate::retry::RetryPolicy;
use crate::wire::{read_message, write_message, Message, WireError};
use crate::{NetError, WaitPolicy};

/// Configuration of a networked training run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The data placement; `placement.n()` workers must register.
    pub placement: Placement,
    /// How each step stops collecting codewords.
    pub wait: WaitPolicy,
    /// Mini-batch size per partition per step.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Stop when the full-dataset loss reaches this value.
    pub loss_threshold: f64,
    /// Hard cap on steps.
    pub max_steps: usize,
    /// Seed shared with workers (parameter init, batches, decode
    /// tie-breaks); transmitted in `Assign`.
    pub seed: u64,
    /// A worker silent for longer than this is presumed dead and stops
    /// counting toward wait targets until it reconnects or speaks again.
    pub heartbeat_timeout: Duration,
    /// How long `run` waits for all `n` workers to register.
    pub register_timeout: Duration,
    /// When set, the master persists a [`MasterCheckpoint`] on the given
    /// cadence and resumes from the file if it exists at startup.
    pub checkpoint: Option<CheckpointConfig>,
    /// When set, a worker dead for this many consecutive step starts is
    /// declared permanently dead: its partitions are reassigned to
    /// survivors (minimizing added conflict-graph edges) and fresh `Assign`
    /// frames are issued. Counted in steps, not wall time, so seeded chaos
    /// schedules replay exactly.
    pub repair_after_steps: Option<u64>,
    /// How long each step start waits for a previously-registered but
    /// currently disconnected worker to re-register before broadcasting.
    /// Zero (the default) broadcasts immediately. The chaos harness sets a
    /// generous grace so a flapping worker's arrival set depends only on
    /// its scripted faults, never on how fast its reconnect handshake races
    /// the next broadcast. Workers already declared dead by placement
    /// repair are never waited for.
    pub rejoin_grace: Duration,
}

impl NetConfig {
    /// A config with conventional robustness timeouts.
    pub fn new(placement: Placement, wait: WaitPolicy) -> Self {
        NetConfig {
            placement,
            wait,
            batch_size: 8,
            learning_rate: 0.05,
            loss_threshold: 0.0,
            max_steps: 50,
            seed: 7,
            heartbeat_timeout: Duration::from_secs(2),
            register_timeout: Duration::from_secs(30),
            checkpoint: None,
            repair_after_steps: None,
            rejoin_grace: Duration::ZERO,
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        let n = self.placement.n();
        if let WaitPolicy::FirstW(w) = self.wait {
            if !(1..=n).contains(&w) {
                return Err(NetError::InvalidConfig(format!(
                    "wait count w = {w} outside 1..={n}"
                )));
            }
        }
        if self.batch_size == 0 {
            return Err(NetError::InvalidConfig(
                "batch_size must be positive".into(),
            ));
        }
        if self.max_steps == 0 {
            return Err(NetError::InvalidConfig("max_steps must be positive".into()));
        }
        if self.repair_after_steps == Some(0) {
            return Err(NetError::InvalidConfig(
                "repair_after_steps must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// What the per-step observer tells the master to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepControl {
    /// Keep training.
    Continue,
    /// Simulate a master crash: stop immediately *without* telling workers
    /// to shut down, exactly as a killed process would. Used by the chaos
    /// harness to exercise checkpoint/restore.
    Crash,
}

/// The tie-break RNG for one step, derived — never streamed — from
/// `(seed, step)` so that a master resumed from a checkpoint decodes
/// exactly like one that never crashed.
fn step_rng(seed: u64, step: u64) -> StdRng {
    let mut z = seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Events flowing from connection threads into the master loop.
enum Event {
    /// A fresh connection completed its `Hello` handshake.
    Join {
        stream: TcpStream,
        preferred: Option<u64>,
    },
    /// A registered connection produced a message.
    Msg {
        worker: usize,
        epoch: u64,
        message: Message,
    },
    /// A registered connection died (EOF, reset, or protocol error).
    Gone { worker: usize, epoch: u64 },
}

/// What one inbound event amounted to, once slot state is updated.
enum Dispatched {
    /// Nothing the collection loop cares about.
    Nothing,
    /// A codeword: `(worker, step, values)`.
    Codeword(usize, u64, Vec<f64>),
    /// A fast-fail straggler signal: `(worker, step)`.
    Decline(usize, u64),
}

/// One worker slot as the master sees it.
struct Slot {
    /// Write half of the current connection, if any.
    writer: Option<TcpStream>,
    /// Bumped on every (re)registration so events from replaced connections
    /// can be told apart from live ones.
    epoch: u64,
    /// Whether the current connection is believed usable.
    alive: bool,
    /// Whether this slot was ever assigned to a connection.
    registered: bool,
    /// Last time any message arrived from this worker.
    last_seen: Instant,
    /// Consecutive step starts this worker has been dead for; feeds the
    /// permanent-death declaration behind placement repair.
    dead_steps: u64,
}

/// A listening IS-GC master. Bind first (so tests can learn the ephemeral
/// port), then [`Master::run`] a training session.
pub struct Master {
    listener: TcpListener,
}

impl Master {
    /// Binds the master's listening socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Master, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Master { listener })
    }

    /// Binds with retries under `policy` — the restart path: a master
    /// coming back on its old port may briefly race the OS releasing it.
    ///
    /// # Errors
    ///
    /// The final bind error once the policy's attempts are exhausted.
    pub fn bind_with_retry(
        addr: impl ToSocketAddrs + Copy,
        policy: &RetryPolicy,
    ) -> Result<Master, NetError> {
        policy.run(0, || Master::bind(addr))
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the OS.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs a full training session; see [`Master::run_with`].
    ///
    /// # Errors
    ///
    /// As [`Master::run_with`].
    pub fn run<M: Model>(
        self,
        model: &M,
        dataset: &Dataset,
        config: &NetConfig,
    ) -> Result<NetTrainReport, NetError> {
        self.run_with(model, dataset, config, |_| {})
    }

    /// Runs a full training session, calling `observer` after every step.
    ///
    /// Blocks until `placement.n()` workers registered, then trains for up
    /// to `max_steps` steps, decoding each step's arrivals with the
    /// placement's IS-GC decoder and applying the shared SGD update. Dead
    /// workers (heartbeat silence, closed connections, `Decline` frames)
    /// shrink the wait target instead of stalling the step; late codewords
    /// are discarded by step tag; reconnecting workers reclaim their slot
    /// mid-run. With [`NetConfig::checkpoint`] set, the session resumes
    /// from the checkpoint file when one exists.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for bad parameters,
    /// [`NetError::Protocol`] when registration times out or a checkpoint
    /// is unusable, [`NetError::Degraded`] when a step recovers nothing,
    /// and [`NetError::AllWorkersLost`] when no worker is left at all.
    pub fn run_with<M: Model>(
        self,
        model: &M,
        dataset: &Dataset,
        config: &NetConfig,
        mut observer: impl FnMut(&NetReport),
    ) -> Result<NetTrainReport, NetError> {
        self.run_controlled(model, dataset, config, |report| {
            observer(report);
            StepControl::Continue
        })
    }

    /// Like [`Master::run_with`], but the observer may return
    /// [`StepControl::Crash`] to stop the master cold — no shutdown
    /// broadcast, sockets dropped — returning the partial report. The chaos
    /// harness uses this to script mid-run master crashes; a subsequent
    /// `run_controlled` with the same checkpointed config resumes.
    ///
    /// # Errors
    ///
    /// As [`Master::run_with`].
    pub fn run_controlled<M: Model>(
        self,
        model: &M,
        dataset: &Dataset,
        config: &NetConfig,
        mut observer: impl FnMut(&NetReport) -> StepControl,
    ) -> Result<NetTrainReport, NetError> {
        config.validate()?;
        let n = config.placement.n();
        let decoder: Box<dyn Decoder> = match config.placement.scheme() {
            Scheme::Fractional => Box::new(
                FrDecoder::new(&config.placement).expect("FR placement validated on construction"),
            ),
            Scheme::Cyclic => Box::new(
                CrDecoder::new(&config.placement).expect("CR placement validated on construction"),
            ),
            Scheme::Hybrid => Box::new(
                HrDecoder::new(&config.placement).expect("HR placement validated on construction"),
            ),
            Scheme::Custom => Box::new(ExactDecoder::new(&config.placement)),
        };

        let local_addr = self.listener.local_addr()?;
        let (event_tx, event_rx) = unbounded::<Event>();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = spawn_accept_loop(self.listener, event_tx.clone(), Arc::clone(&stop));

        let assignments: Vec<Vec<usize>> = (0..n)
            .map(|w| config.placement.partitions_of(w).to_vec())
            .collect();
        let mut loop_state = MasterLoop {
            slots: (0..n)
                .map(|_| Slot {
                    writer: None,
                    epoch: 0,
                    alive: false,
                    registered: false,
                    last_seen: Instant::now(),
                    dead_steps: 0,
                })
                .collect(),
            event_rx,
            event_tx,
            config: config.clone(),
            decoder,
            assignments,
            graph: ConflictGraph::from_placement(&config.placement),
            repaired: false,
        };

        let outcome = loop_state.train(model, dataset, &mut observer);

        // Tell workers we're done and unblock the accept loop so its thread
        // exits: set the flag, then poke the listener with a throwaway
        // connection. A scripted crash skips the shutdown broadcast — a
        // killed process sends nothing.
        if !matches!(outcome, Ok((_, SessionEnd::Crashed))) {
            loop_state.broadcast(&Message::Shutdown);
        } else {
            // A killed process closes every fd. Emulate that: reader threads
            // hold clones of these sockets, so merely dropping the writers
            // leaves the connections open and workers would block forever
            // instead of seeing EOF and reconnecting to the resumed master.
            for slot in &mut loop_state.slots {
                if let Some(writer) = slot.writer.take() {
                    let _ = writer.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(local_addr);
        let _ = accept_handle.join();
        outcome.map(|(report, _)| report)
    }
}

/// How a training session came to an end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionEnd {
    /// Ran to completion (step cap or loss threshold).
    Completed,
    /// The observer scripted a crash.
    Crashed,
}

/// Spawns the accept loop: each fresh connection gets a short-lived
/// handshake thread that reads `Hello` and forwards a `Join` event.
fn spawn_accept_loop(
    listener: TcpListener,
    event_tx: Sender<Event>,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("isgc-net-accept".into())
        .spawn(move || loop {
            let (stream, _peer) = match listener.accept() {
                Ok(pair) => pair,
                Err(_) if stop.load(Ordering::Acquire) => return,
                Err(_) => continue,
            };
            if stop.load(Ordering::Acquire) {
                return;
            }
            let tx = event_tx.clone();
            let _ = thread::Builder::new()
                .name("isgc-net-handshake".into())
                .spawn(move || {
                    let mut stream = stream;
                    let _ = stream.set_nodelay(true);
                    // Bound the handshake so a silent client can't pin the
                    // thread forever.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    // Anything but a Hello means it's not a worker; the
                    // connection is silently dropped.
                    if let Ok(Message::Hello { preferred }) = read_message(&mut stream) {
                        let _ = stream.set_read_timeout(None);
                        let _ = tx.send(Event::Join { stream, preferred });
                    }
                });
        })
        .expect("failed to spawn accept thread")
}

/// Spawns the per-connection reader feeding `Event::Msg` / `Event::Gone`.
fn spawn_reader(stream: TcpStream, worker: usize, epoch: u64, tx: Sender<Event>) {
    let _ = thread::Builder::new()
        .name(format!("isgc-net-reader-{worker}"))
        .spawn(move || {
            let mut stream = stream;
            loop {
                match read_message(&mut stream) {
                    Ok(message) => {
                        if tx
                            .send(Event::Msg {
                                worker,
                                epoch,
                                message,
                            })
                            .is_err()
                        {
                            return; // master loop is gone
                        }
                    }
                    Err(WireError::Closed) | Err(_) => {
                        let _ = tx.send(Event::Gone { worker, epoch });
                        return;
                    }
                }
            }
        });
}

/// The master's single-threaded state machine over connection events.
struct MasterLoop {
    slots: Vec<Slot>,
    event_rx: Receiver<Event>,
    event_tx: Sender<Event>,
    config: NetConfig,
    /// The scheme decoder used while the placement is still the configured
    /// one; after a repair the conflict graph below takes over.
    decoder: Box<dyn Decoder>,
    /// Current per-worker partition lists; starts as the placement's and
    /// diverges once placement repair runs (a repaired-dead worker's list
    /// becomes empty).
    assignments: Vec<Vec<usize>>,
    /// Conflict graph of `assignments`, rebuilt on every repair.
    graph: ConflictGraph,
    /// Whether any repair has run (switches the decode path).
    repaired: bool,
}

impl MasterLoop {
    fn n(&self) -> usize {
        self.slots.len()
    }

    /// Handles one event; codewords and declines are returned to the
    /// caller, everything else mutates slot state here.
    fn dispatch(&mut self, event: Event) -> Dispatched {
        match event {
            Event::Join { stream, preferred } => {
                self.register(stream, preferred);
                Dispatched::Nothing
            }
            Event::Gone { worker, epoch } => {
                if self.slots[worker].epoch == epoch {
                    self.slots[worker].alive = false;
                    self.slots[worker].writer = None;
                }
                Dispatched::Nothing
            }
            Event::Msg {
                worker,
                epoch,
                message,
            } => {
                if self.slots[worker].epoch != epoch {
                    return Dispatched::Nothing; // from a replaced connection
                }
                self.slots[worker].last_seen = Instant::now();
                self.slots[worker].alive = true;
                match message {
                    Message::Codeword {
                        worker: claimed,
                        step,
                        values,
                    } => {
                        // The slot id is authoritative; a mismatched claim is
                        // a protocol violation we tolerate by trusting the
                        // connection, not the payload.
                        let _ = claimed;
                        Dispatched::Codeword(worker, step, values)
                    }
                    Message::Decline { step, .. } => Dispatched::Decline(worker, step),
                    Message::Heartbeat { .. } => Dispatched::Nothing,
                    // Workers never send anything else; ignore rather than
                    // letting one confused peer kill the run.
                    _ => Dispatched::Nothing,
                }
            }
        }
    }

    /// Assigns a slot to a fresh connection and starts its reader.
    fn register(&mut self, stream: TcpStream, preferred: Option<u64>) {
        let n = self.n();
        let id = match preferred {
            Some(p) if (p as usize) < n => p as usize,
            Some(_) => return, // claims a slot outside the cluster: reject
            None => match self.slots.iter().position(|s| !s.registered) {
                Some(free) => free,
                None => {
                    // Cluster is full; a worker that lost its id and
                    // reconnected fresh would land here. Adopt the first
                    // dead slot if any, else drop the connection.
                    match self.slots.iter().position(|s| !s.alive) {
                        Some(dead) => dead,
                        None => return,
                    }
                }
            },
        };
        let assign = self.assign_message(id);
        let mut write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        if write_message(&mut write_half, &assign).is_err() {
            return;
        }
        let slot = &mut self.slots[id];
        slot.epoch += 1;
        slot.registered = true;
        slot.alive = true;
        slot.last_seen = Instant::now();
        slot.writer = Some(write_half);
        slot.dead_steps = 0;
        spawn_reader(stream, id, slot.epoch, self.event_tx.clone());
    }

    /// Builds the `Assign` frame for worker `id` from its *current*
    /// assignment (which placement repair may have changed).
    fn assign_message(&self, id: usize) -> Message {
        Message::Assign {
            worker: id as u64,
            n: self.n() as u64,
            c: self.config.placement.c() as u64,
            batch_size: self.config.batch_size as u64,
            seed: self.config.seed,
            partitions: self.assignments[id].iter().map(|&j| j as u64).collect(),
        }
    }

    /// Marks heartbeat-silent workers dead.
    fn sweep_dead(&mut self) {
        let timeout = self.config.heartbeat_timeout;
        for slot in &mut self.slots {
            if slot.alive && slot.last_seen.elapsed() > timeout {
                slot.alive = false;
            }
        }
    }

    fn alive_count(&self) -> usize {
        self.slots.iter().filter(|s| s.alive).count()
    }

    /// Sends a message to every alive worker, demoting ones that fail.
    fn broadcast(&mut self, message: &Message) {
        for slot in &mut self.slots {
            if !slot.alive {
                continue;
            }
            let ok = slot
                .writer
                .as_mut()
                .is_some_and(|w| write_message(w, message).is_ok());
            if !ok {
                slot.alive = false;
                slot.writer = None;
            }
        }
    }

    /// Blocks until all `n` workers registered (or the deadline passes).
    fn await_registration(&mut self) -> Result<(), NetError> {
        let deadline = Instant::now() + self.config.register_timeout;
        loop {
            let registered = self.slots.iter().filter(|s| s.registered).count();
            if registered == self.n() {
                return Ok(());
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(NetError::Protocol(format!(
                    "registration timed out with {registered} of {} workers",
                    self.n()
                )));
            };
            match self.event_rx.recv_timeout(remaining.min(POLL)) {
                Ok(event) => {
                    let _ = self.dispatch(event);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Protocol("event channel closed".into()));
                }
            }
        }
    }

    /// Waits up to `rejoin_grace` for every previously-registered but
    /// disconnected worker (not yet declared dead by repair) to re-register,
    /// so a flapping worker's step membership is decided by what it *sends*
    /// (codeword or decline), never by whether its reconnect handshake beat
    /// the broadcast. Returns the number of codewords swallowed while
    /// waiting — necessarily stale, since this step has not been broadcast
    /// yet — so the caller can fold them into the step's stale count.
    fn await_rejoins(&mut self) -> usize {
        let grace = self.config.rejoin_grace;
        let mut stale = 0usize;
        if grace.is_zero() {
            return stale;
        }
        let waiting = |slots: &[Slot], assignments: &[Vec<usize>]| {
            slots
                .iter()
                .zip(assignments)
                .any(|(s, a)| s.registered && !s.alive && !a.is_empty())
        };
        let deadline = Instant::now() + grace;
        while waiting(&self.slots, &self.assignments) {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match self.event_rx.recv_timeout(remaining.min(POLL)) {
                Ok(event) => {
                    if let Dispatched::Codeword(..) = self.dispatch(event) {
                        stale += 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        stale
    }

    /// Bumps per-slot dead-step counters and runs placement repair on any
    /// worker that crossed the permanent-death threshold. Returns the
    /// reassignments applied (empty almost always).
    fn step_start_repairs(&mut self) -> Vec<RepairEvent> {
        for slot in &mut self.slots {
            if slot.alive {
                slot.dead_steps = 0;
            } else {
                slot.dead_steps += 1;
            }
        }
        let Some(threshold) = self.config.repair_after_steps else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for dead in 0..self.n() {
            if self.slots[dead].dead_steps >= threshold && !self.assignments[dead].is_empty() {
                events.extend(self.repair_worker(dead));
            }
        }
        if !events.is_empty() {
            self.rebuild_graph();
            self.repaired = true;
            // Re-issue Assign frames to every survivor whose partition list
            // grew, over the existing connections.
            let touched: std::collections::BTreeSet<usize> = events.iter().map(|e| e.to).collect();
            for id in touched {
                let message = self.assign_message(id);
                let slot = &mut self.slots[id];
                let ok = slot
                    .writer
                    .as_mut()
                    .is_some_and(|w| write_message(w, &message).is_ok());
                if !ok {
                    slot.alive = false;
                    slot.writer = None;
                }
            }
        }
        events
    }

    /// Re-homes every partition of permanently-dead worker `dead` onto a
    /// survivor, choosing per partition the adopter that adds the fewest
    /// new conflict-graph edges (ties: fewest partitions held, then lowest
    /// id — fully deterministic).
    fn repair_worker(&mut self, dead: usize) -> Vec<RepairEvent> {
        let lost: Vec<usize> = std::mem::take(&mut self.assignments[dead]);
        let mut events = Vec::with_capacity(lost.len());
        for j in lost {
            let adopter = self.pick_adopter(dead, j);
            let Some(to) = adopter else { continue };
            self.assignments[to].push(j);
            self.assignments[to].sort_unstable();
            events.push(RepairEvent {
                partition: j,
                from: dead,
                to,
            });
        }
        events
    }

    /// The survivor that should adopt partition `j`, or `None` when no
    /// eligible survivor exists (everyone else holds `j` already or is
    /// itself stripped/dead).
    fn pick_adopter(&self, dead: usize, j: usize) -> Option<usize> {
        let holders: Vec<usize> = (0..self.n())
            .filter(|&w| w != dead && self.assignments[w].contains(&j))
            .collect();
        let mut best: Option<(usize, usize, usize)> = None; // (cost, load, id)
        for w in 0..self.n() {
            if w == dead
                || self.assignments[w].is_empty()
                || !self.slots[w].alive
                || self.assignments[w].contains(&j)
            {
                continue;
            }
            // New edges = holders of j this worker does not already
            // conflict with (sharing any partition).
            let cost = holders
                .iter()
                .filter(|&&h| {
                    !self.assignments[w]
                        .iter()
                        .any(|p| self.assignments[h].contains(p))
                })
                .count();
            let key = (cost, self.assignments[w].len(), w);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// Rebuilds the conflict graph from the current assignments.
    fn rebuild_graph(&mut self) {
        let n = self.n();
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                if self.assignments[a]
                    .iter()
                    .any(|p| self.assignments[b].contains(p))
                {
                    edges.push((a, b));
                }
            }
        }
        self.graph = ConflictGraph::from_edges(n, &edges);
    }

    /// Decodes one step's arrivals: the scheme decoder while the placement
    /// is intact, an exact MIS over the repaired conflict graph afterwards.
    /// Returns the selected workers and the number of recovered partitions.
    fn decode_step(&self, available: &WorkerSet, rng: &mut StdRng) -> (Vec<usize>, usize) {
        if !self.repaired {
            let result = self.decoder.decode(available, rng);
            return (result.selected().to_vec(), result.recovered_count());
        }
        let selected = self.graph.max_independent_set(available);
        // Selected workers are pairwise non-conflicting, so their partition
        // sets are disjoint: recovery is the plain sum of their sizes.
        let recovered = selected.iter().map(|&w| self.assignments[w].len()).sum();
        (selected, recovered)
    }

    /// Restores checkpointed state if a checkpoint exists; returns the step
    /// to resume at and the parameters to resume with.
    fn try_resume(&mut self, params: &mut Vector) -> Result<u64, NetError> {
        let Some(ck_config) = self.config.checkpoint.clone() else {
            return Ok(0);
        };
        let Some(ck) = MasterCheckpoint::load(&ck_config.path)? else {
            return Ok(0);
        };
        let (n, c) = (self.config.placement.n(), self.config.placement.c());
        ck.verify_fingerprint(self.config.seed, n, c)?;
        *params = Vector::from_slice(&ck.params);
        self.assignments = ck
            .assignments
            .iter()
            .map(|list| list.iter().map(|&j| j as usize).collect())
            .collect();
        let pristine = (0..n)
            .all(|w| self.assignments[w].as_slice() == self.config.placement.partitions_of(w));
        if !pristine {
            self.rebuild_graph();
            self.repaired = true;
        }
        Ok(ck.step)
    }

    /// Persists a checkpoint for `next_step` if the cadence says so.
    fn maybe_checkpoint(&self, next_step: u64, params: &Vector) -> Result<(), NetError> {
        let Some(ck_config) = &self.config.checkpoint else {
            return Ok(());
        };
        if !next_step.is_multiple_of(ck_config.every.max(1)) {
            return Ok(());
        }
        let ck = MasterCheckpoint {
            seed: self.config.seed,
            n: self.config.placement.n() as u64,
            c: self.config.placement.c() as u64,
            step: next_step,
            params: params.as_slice().to_vec(),
            assignments: self
                .assignments
                .iter()
                .map(|list| list.iter().map(|&j| j as u64).collect())
                .collect(),
        };
        ck.save(&ck_config.path)
    }

    /// The full training session.
    fn train<M: Model>(
        &mut self,
        model: &M,
        dataset: &Dataset,
        observer: &mut impl FnMut(&NetReport) -> StepControl,
    ) -> Result<(NetTrainReport, SessionEnd), NetError> {
        let n = self.n();
        // Parameter initialization is a pure function of the seed, so a
        // resumed master can overwrite it from the checkpoint and a fresh
        // one matches any peer that recomputes it.
        let mut init_rng =
            StdRng::seed_from_u64(self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut params = model.init_params(&mut init_rng);
        let start_step = self.try_resume(&mut params)?;

        self.await_registration()?;

        let mut opt = Sgd::new(self.config.learning_rate);
        let all_indices: Vec<usize> = (0..dataset.len()).collect();
        let mut steps = Vec::with_capacity(self.config.max_steps);
        let mut reached_threshold = false;
        let started = Instant::now();

        for step in start_step..self.config.max_steps as u64 {
            let repairs = self.step_start_repairs();
            let pre_stale = self.await_rejoins();
            self.broadcast(&Message::Params {
                step,
                values: params.as_slice().to_vec(),
            });
            let collected = self.collect_step(step)?;

            let available = WorkerSet::from_indices(n, collected.arrivals.iter().copied());
            let mut rng = step_rng(self.config.seed, step);
            let (selected, recovered) = self.decode_step(&available, &mut rng);
            if recovered == 0 {
                // No gradient at all, yet workers are nominally alive: the
                // run is spinning without progress. Surface it as a typed
                // error instead of silently looping.
                return Err(NetError::Degraded {
                    step,
                    recovered,
                    bound: bounds::recovery_lower_bound(
                        n,
                        self.config.placement.c(),
                        self.alive_count().min(n),
                    ),
                });
            }
            let mut g = Vector::zeros(params.len());
            for &w in &selected {
                g.axpy(
                    1.0,
                    collected.codewords[w]
                        .as_ref()
                        .expect("decoder selects only arrived workers"),
                );
            }
            // Paper-faithful normalization (Theorem 12's η·|D_d|): ĝ is
            // a sum of per-partition batch sums; scale once by the batch
            // size, matching isgc-runtime.
            g.scale(1.0 / self.config.batch_size as f64);
            opt.step(&mut params, &g);
            let loss = model.loss_mean(&params, dataset, &all_indices);
            self.maybe_checkpoint(step + 1, &params)?;
            let report = NetReport {
                step,
                arrivals: collected.arrivals,
                waited_ms: collected.waited.as_secs_f64() * 1e3,
                ignored: (0..n).filter(|w| !selected.contains(w)).collect(),
                selected,
                recovered,
                dead: self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.alive)
                    .map(|(i, _)| i)
                    .collect(),
                declined: collected.declined,
                repairs,
                stale: collected.stale + pre_stale,
                loss,
            };
            let control = observer(&report);
            steps.push(report);
            if control == StepControl::Crash {
                return Ok((
                    NetTrainReport {
                        steps,
                        reached_threshold: false,
                        wall_time: started.elapsed().as_secs_f64(),
                        final_params: params,
                    },
                    SessionEnd::Crashed,
                ));
            }
            if loss <= self.config.loss_threshold {
                reached_threshold = true;
                break;
            }
        }
        Ok((
            NetTrainReport {
                steps,
                reached_threshold,
                wall_time: started.elapsed().as_secs_f64(),
                final_params: params,
            },
            SessionEnd::Completed,
        ))
    }

    /// Collects one step's codewords under the configured wait policy.
    fn collect_step(&mut self, step: u64) -> Result<CollectedStep, NetError> {
        let step_start = Instant::now();
        let cutoff = match self.config.wait {
            WaitPolicy::FirstW(_) => None,
            WaitPolicy::Deadline(d) => Some(step_start + d),
        };
        let n = self.n();
        // A worker is eligible for this step only through the connection
        // that received the Params broadcast; one that reconnects mid-step
        // cannot produce this step's codeword, so it must not be waited on.
        let eligible: Vec<Option<u64>> = self
            .slots
            .iter()
            .map(|s| (s.alive && s.writer.is_some()).then_some(s.epoch))
            .collect();
        let mut codewords: Vec<Option<Vector>> = vec![None; n];
        let mut arrivals: Vec<usize> = Vec::new();
        let mut declined: Vec<bool> = vec![false; n];
        let mut stale = 0usize;
        let mut pending: VecDeque<Event> = VecDeque::new();

        loop {
            self.sweep_dead();
            let alive_pending = (0..n)
                .filter(|&w| {
                    self.slots[w].alive
                        && eligible[w] == Some(self.slots[w].epoch)
                        && !declined[w]
                        && codewords[w].is_none()
                })
                .count();
            let done = match self.config.wait {
                WaitPolicy::FirstW(w) => arrivals.len() >= w || alive_pending == 0,
                WaitPolicy::Deadline(_) => {
                    let expired = cutoff.is_some_and(|c| Instant::now() >= c);
                    (expired && !arrivals.is_empty()) || alive_pending == 0
                }
            };
            if done {
                if arrivals.is_empty() && self.alive_count() == 0 {
                    return Err(NetError::AllWorkersLost);
                }
                // A step that closes with zero arrivals but alive workers
                // (FirstW with everyone freshly dead-marked or declining)
                // is reported upstream as Degraded by the caller.
                return Ok(CollectedStep {
                    arrivals,
                    codewords,
                    waited: step_start.elapsed(),
                    stale,
                    declined: (0..n).filter(|&w| declined[w]).collect(),
                });
            }

            let event = match pending.pop_front() {
                Some(event) => event,
                None => match self.event_rx.recv_timeout(POLL) {
                    Ok(event) => event,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(NetError::Protocol("event channel closed".into()));
                    }
                },
            };
            match self.dispatch(event) {
                Dispatched::Codeword(worker, tagged_step, values) => {
                    if tagged_step == step && codewords[worker].is_none() {
                        codewords[worker] = Some(Vector::from_slice(&values));
                        arrivals.push(worker);
                        declined[worker] = false;
                    } else {
                        // Stale: a straggler finishing an earlier round (or
                        // a duplicate); count it, never mix it into this
                        // step.
                        stale += 1;
                    }
                }
                Dispatched::Decline(worker, tagged_step) => {
                    if tagged_step == step && codewords[worker].is_none() {
                        declined[worker] = true;
                    }
                }
                Dispatched::Nothing => {}
            }
        }
    }
}

/// Poll granularity of the master loop: how often liveness and deadlines are
/// re-checked while waiting for codewords.
const POLL: Duration = Duration::from_millis(20);

/// What one step's collection phase produced.
struct CollectedStep {
    arrivals: Vec<usize>,
    codewords: Vec<Option<Vector>>,
    waited: Duration,
    stale: usize,
    declined: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use isgc_ml::model::LinearRegression;

    fn test_config(n: usize, c: usize, w: usize) -> NetConfig {
        let mut config = NetConfig::new(
            Placement::cyclic(n, c).expect("valid CR"),
            WaitPolicy::FirstW(w),
        );
        config.max_steps = 3;
        config
    }

    #[test]
    fn config_validation_catches_bad_w() {
        let config = test_config(4, 2, 5);
        assert!(matches!(config.validate(), Err(NetError::InvalidConfig(_))));
        assert!(test_config(4, 2, 4).validate().is_ok());
    }

    #[test]
    fn config_validation_catches_zero_batch_steps_and_repair() {
        let mut config = test_config(4, 2, 2);
        config.batch_size = 0;
        assert!(config.validate().is_err());
        let mut config = test_config(4, 2, 2);
        config.max_steps = 0;
        assert!(config.validate().is_err());
        let mut config = test_config(4, 2, 2);
        config.repair_after_steps = Some(0);
        assert!(config.validate().is_err());
    }

    #[test]
    fn registration_times_out_without_workers() {
        let master = Master::bind("127.0.0.1:0").unwrap();
        let mut config = test_config(2, 1, 1);
        config.register_timeout = Duration::from_millis(100);
        let model = LinearRegression::new(2);
        let dataset = Dataset::synthetic_regression(16, 2, 0.1, 1);
        let err = master.run(&model, &dataset, &config).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn bind_reports_local_addr() {
        let master = Master::bind("127.0.0.1:0").unwrap();
        let addr = master.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
    }

    #[test]
    fn step_rng_is_stable_per_step_and_differs_across_steps() {
        use rand::RngCore;
        let a = step_rng(7, 3).next_u64();
        let b = step_rng(7, 3).next_u64();
        let c = step_rng(7, 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// Placement repair picks the adopter that adds the fewest conflict
    /// edges and strips the dead worker.
    #[test]
    fn repair_reassigns_partitions_deterministically() {
        let placement = Placement::fractional(4, 2).unwrap();
        let config = NetConfig::new(placement.clone(), WaitPolicy::FirstW(4));
        let (event_tx, event_rx) = unbounded::<Event>();
        let mut loop_state = MasterLoop {
            slots: (0..4)
                .map(|_| Slot {
                    writer: None,
                    epoch: 0,
                    alive: true,
                    registered: true,
                    last_seen: Instant::now(),
                    dead_steps: 0,
                })
                .collect(),
            event_rx,
            event_tx,
            config,
            decoder: Box::new(ExactDecoder::new(&placement)),
            assignments: (0..4)
                .map(|w| placement.partitions_of(w).to_vec())
                .collect(),
            graph: ConflictGraph::from_placement(&placement),
            repaired: false,
        };
        // FR(4,2): workers {0,1} hold {0,1}; workers {2,3} hold {2,3}.
        loop_state.slots[3].alive = false;
        let events = loop_state.repair_worker(3);
        loop_state.rebuild_graph();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(loop_state.assignments[3].is_empty());
        // Partitions 2 and 3 each gained a new replica on a survivor, and
        // every survivor's list is duplicate-free.
        for e in &events {
            assert!(loop_state.assignments[e.to].contains(&e.partition));
            let mut sorted = loop_state.assignments[e.to].clone();
            sorted.dedup();
            assert_eq!(sorted, loop_state.assignments[e.to]);
        }
        // Deterministic: rerunning the same scenario picks identically.
        let events2 = {
            let placement = Placement::fractional(4, 2).unwrap();
            let config = NetConfig::new(placement.clone(), WaitPolicy::FirstW(4));
            let (event_tx, event_rx) = unbounded::<Event>();
            let mut ls = MasterLoop {
                slots: (0..4)
                    .map(|_| Slot {
                        writer: None,
                        epoch: 0,
                        alive: true,
                        registered: true,
                        last_seen: Instant::now(),
                        dead_steps: 0,
                    })
                    .collect(),
                event_rx,
                event_tx,
                config,
                decoder: Box::new(ExactDecoder::new(&placement)),
                assignments: (0..4)
                    .map(|w| placement.partitions_of(w).to_vec())
                    .collect(),
                graph: ConflictGraph::from_placement(&placement),
                repaired: false,
            };
            ls.slots[3].alive = false;
            ls.repair_worker(3)
        };
        assert_eq!(events, events2);
    }
}
