//! The IS-GC master: listens on TCP, registers workers, drives training
//! steps, and ignores an arbitrary subset of stragglers every step.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use isgc_core::decode::{CrDecoder, Decoder, ExactDecoder, FrDecoder, HrDecoder};
use isgc_core::{Placement, Scheme, WorkerSet};
use isgc_linalg::Vector;
use isgc_ml::dataset::Dataset;
use isgc_ml::model::Model;
use isgc_ml::optimizer::Sgd;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{NetReport, NetTrainReport};
use crate::wire::{read_message, write_message, Message, WireError};
use crate::{NetError, WaitPolicy};

/// Configuration of a networked training run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The data placement; `placement.n()` workers must register.
    pub placement: Placement,
    /// How each step stops collecting codewords.
    pub wait: WaitPolicy,
    /// Mini-batch size per partition per step.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Stop when the full-dataset loss reaches this value.
    pub loss_threshold: f64,
    /// Hard cap on steps.
    pub max_steps: usize,
    /// Seed shared with workers (parameter init, batches, decode
    /// tie-breaks); transmitted in `Assign`.
    pub seed: u64,
    /// A worker silent for longer than this is presumed dead and stops
    /// counting toward wait targets until it reconnects or speaks again.
    pub heartbeat_timeout: Duration,
    /// How long `run` waits for all `n` workers to register.
    pub register_timeout: Duration,
}

impl NetConfig {
    /// A config with conventional robustness timeouts.
    pub fn new(placement: Placement, wait: WaitPolicy) -> Self {
        NetConfig {
            placement,
            wait,
            batch_size: 8,
            learning_rate: 0.05,
            loss_threshold: 0.0,
            max_steps: 50,
            seed: 7,
            heartbeat_timeout: Duration::from_secs(2),
            register_timeout: Duration::from_secs(30),
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        let n = self.placement.n();
        if let WaitPolicy::FirstW(w) = self.wait {
            if !(1..=n).contains(&w) {
                return Err(NetError::InvalidConfig(format!(
                    "wait count w = {w} outside 1..={n}"
                )));
            }
        }
        if self.batch_size == 0 {
            return Err(NetError::InvalidConfig(
                "batch_size must be positive".into(),
            ));
        }
        if self.max_steps == 0 {
            return Err(NetError::InvalidConfig("max_steps must be positive".into()));
        }
        Ok(())
    }
}

/// Events flowing from connection threads into the master loop.
enum Event {
    /// A fresh connection completed its `Hello` handshake.
    Join {
        stream: TcpStream,
        preferred: Option<u64>,
    },
    /// A registered connection produced a message.
    Msg {
        worker: usize,
        epoch: u64,
        message: Message,
    },
    /// A registered connection died (EOF, reset, or protocol error).
    Gone { worker: usize, epoch: u64 },
}

/// One worker slot as the master sees it.
struct Slot {
    /// Write half of the current connection, if any.
    writer: Option<TcpStream>,
    /// Bumped on every (re)registration so events from replaced connections
    /// can be told apart from live ones.
    epoch: u64,
    /// Whether the current connection is believed usable.
    alive: bool,
    /// Whether this slot was ever assigned to a connection.
    registered: bool,
    /// Last time any message arrived from this worker.
    last_seen: Instant,
}

/// A listening IS-GC master. Bind first (so tests can learn the ephemeral
/// port), then [`Master::run`] a training session.
pub struct Master {
    listener: TcpListener,
}

impl Master {
    /// Binds the master's listening socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Master, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Master { listener })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the OS.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs a full training session; see [`Master::run_with`].
    ///
    /// # Errors
    ///
    /// As [`Master::run_with`].
    pub fn run<M: Model>(
        self,
        model: &M,
        dataset: &Dataset,
        config: &NetConfig,
    ) -> Result<NetTrainReport, NetError> {
        self.run_with(model, dataset, config, |_| {})
    }

    /// Runs a full training session, calling `observer` after every step.
    ///
    /// Blocks until `placement.n()` workers registered, then trains for up
    /// to `max_steps` steps, decoding each step's arrivals with the
    /// placement's IS-GC decoder and applying the shared SGD update. Dead
    /// workers (heartbeat silence, closed connections) shrink the wait
    /// target instead of stalling the step; late codewords are discarded by
    /// step tag; reconnecting workers reclaim their slot mid-run.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for bad parameters,
    /// [`NetError::Protocol`] when registration times out, and
    /// [`NetError::AllWorkersLost`] when no worker is left to make progress.
    pub fn run_with<M: Model>(
        self,
        model: &M,
        dataset: &Dataset,
        config: &NetConfig,
        mut observer: impl FnMut(&NetReport),
    ) -> Result<NetTrainReport, NetError> {
        config.validate()?;
        let n = config.placement.n();
        let decoder: Box<dyn Decoder> = match config.placement.scheme() {
            Scheme::Fractional => Box::new(
                FrDecoder::new(&config.placement).expect("FR placement validated on construction"),
            ),
            Scheme::Cyclic => Box::new(
                CrDecoder::new(&config.placement).expect("CR placement validated on construction"),
            ),
            Scheme::Hybrid => Box::new(
                HrDecoder::new(&config.placement).expect("HR placement validated on construction"),
            ),
            Scheme::Custom => Box::new(ExactDecoder::new(&config.placement)),
        };

        let local_addr = self.listener.local_addr()?;
        let (event_tx, event_rx) = unbounded::<Event>();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = spawn_accept_loop(self.listener, event_tx.clone(), Arc::clone(&stop));

        let mut loop_state = MasterLoop {
            slots: (0..n)
                .map(|_| Slot {
                    writer: None,
                    epoch: 0,
                    alive: false,
                    registered: false,
                    last_seen: Instant::now(),
                })
                .collect(),
            event_rx,
            event_tx,
            config: config.clone(),
        };

        let outcome = loop_state.train(model, dataset, decoder.as_ref(), &mut observer);

        // Tell workers we're done and unblock the accept loop so its thread
        // exits: set the flag, then poke the listener with a throwaway
        // connection.
        loop_state.broadcast(&Message::Shutdown);
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(local_addr);
        let _ = accept_handle.join();
        outcome
    }
}

/// Spawns the accept loop: each fresh connection gets a short-lived
/// handshake thread that reads `Hello` and forwards a `Join` event.
fn spawn_accept_loop(
    listener: TcpListener,
    event_tx: Sender<Event>,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("isgc-net-accept".into())
        .spawn(move || loop {
            let (stream, _peer) = match listener.accept() {
                Ok(pair) => pair,
                Err(_) if stop.load(Ordering::Acquire) => return,
                Err(_) => continue,
            };
            if stop.load(Ordering::Acquire) {
                return;
            }
            let tx = event_tx.clone();
            let _ = thread::Builder::new()
                .name("isgc-net-handshake".into())
                .spawn(move || {
                    let mut stream = stream;
                    let _ = stream.set_nodelay(true);
                    // Bound the handshake so a silent client can't pin the
                    // thread forever.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    // Anything but a Hello means it's not a worker; the
                    // connection is silently dropped.
                    if let Ok(Message::Hello { preferred }) = read_message(&mut stream) {
                        let _ = stream.set_read_timeout(None);
                        let _ = tx.send(Event::Join { stream, preferred });
                    }
                });
        })
        .expect("failed to spawn accept thread")
}

/// Spawns the per-connection reader feeding `Event::Msg` / `Event::Gone`.
fn spawn_reader(stream: TcpStream, worker: usize, epoch: u64, tx: Sender<Event>) {
    let _ = thread::Builder::new()
        .name(format!("isgc-net-reader-{worker}"))
        .spawn(move || {
            let mut stream = stream;
            loop {
                match read_message(&mut stream) {
                    Ok(message) => {
                        if tx
                            .send(Event::Msg {
                                worker,
                                epoch,
                                message,
                            })
                            .is_err()
                        {
                            return; // master loop is gone
                        }
                    }
                    Err(WireError::Closed) | Err(_) => {
                        let _ = tx.send(Event::Gone { worker, epoch });
                        return;
                    }
                }
            }
        });
}

/// The master's single-threaded state machine over connection events.
struct MasterLoop {
    slots: Vec<Slot>,
    event_rx: Receiver<Event>,
    event_tx: Sender<Event>,
    config: NetConfig,
}

impl MasterLoop {
    fn n(&self) -> usize {
        self.slots.len()
    }

    /// Handles one event; codewords are returned to the caller, everything
    /// else mutates slot state here.
    fn dispatch(&mut self, event: Event) -> Option<(usize, u64, Vec<f64>)> {
        match event {
            Event::Join { stream, preferred } => {
                self.register(stream, preferred);
                None
            }
            Event::Gone { worker, epoch } => {
                if self.slots[worker].epoch == epoch {
                    self.slots[worker].alive = false;
                    self.slots[worker].writer = None;
                }
                None
            }
            Event::Msg {
                worker,
                epoch,
                message,
            } => {
                if self.slots[worker].epoch != epoch {
                    return None; // from a replaced connection
                }
                self.slots[worker].last_seen = Instant::now();
                self.slots[worker].alive = true;
                match message {
                    Message::Codeword {
                        worker: claimed,
                        step,
                        values,
                    } => {
                        // The slot id is authoritative; a mismatched claim is
                        // a protocol violation we tolerate by trusting the
                        // connection, not the payload.
                        let _ = claimed;
                        Some((worker, step, values))
                    }
                    Message::Heartbeat { .. } => None,
                    // Workers never send anything else; ignore rather than
                    // letting one confused peer kill the run.
                    _ => None,
                }
            }
        }
    }

    /// Assigns a slot to a fresh connection and starts its reader.
    fn register(&mut self, stream: TcpStream, preferred: Option<u64>) {
        let n = self.n();
        let id = match preferred {
            Some(p) if (p as usize) < n => p as usize,
            Some(_) => return, // claims a slot outside the cluster: reject
            None => match self.slots.iter().position(|s| !s.registered) {
                Some(free) => free,
                None => {
                    // Cluster is full; a worker that lost its id and
                    // reconnected fresh would land here. Adopt the first
                    // dead slot if any, else drop the connection.
                    match self.slots.iter().position(|s| !s.alive) {
                        Some(dead) => dead,
                        None => return,
                    }
                }
            },
        };
        let assign = Message::Assign {
            worker: id as u64,
            n: n as u64,
            c: self.config.placement.c() as u64,
            batch_size: self.config.batch_size as u64,
            seed: self.config.seed,
            partitions: self
                .config
                .placement
                .partitions_of(id)
                .iter()
                .map(|&j| j as u64)
                .collect(),
        };
        let mut write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        if write_message(&mut write_half, &assign).is_err() {
            return;
        }
        let slot = &mut self.slots[id];
        slot.epoch += 1;
        slot.registered = true;
        slot.alive = true;
        slot.last_seen = Instant::now();
        slot.writer = Some(write_half);
        spawn_reader(stream, id, slot.epoch, self.event_tx.clone());
    }

    /// Marks heartbeat-silent workers dead.
    fn sweep_dead(&mut self) {
        let timeout = self.config.heartbeat_timeout;
        for slot in &mut self.slots {
            if slot.alive && slot.last_seen.elapsed() > timeout {
                slot.alive = false;
            }
        }
    }

    fn alive_count(&self) -> usize {
        self.slots.iter().filter(|s| s.alive).count()
    }

    /// Sends a message to every alive worker, demoting ones that fail.
    fn broadcast(&mut self, message: &Message) {
        for slot in &mut self.slots {
            if !slot.alive {
                continue;
            }
            let ok = slot
                .writer
                .as_mut()
                .is_some_and(|w| write_message(w, message).is_ok());
            if !ok {
                slot.alive = false;
                slot.writer = None;
            }
        }
    }

    /// Blocks until all `n` workers registered (or the deadline passes).
    fn await_registration(&mut self) -> Result<(), NetError> {
        let deadline = Instant::now() + self.config.register_timeout;
        loop {
            let registered = self.slots.iter().filter(|s| s.registered).count();
            if registered == self.n() {
                return Ok(());
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(NetError::Protocol(format!(
                    "registration timed out with {registered} of {} workers",
                    self.n()
                )));
            };
            match self.event_rx.recv_timeout(remaining.min(POLL)) {
                Ok(event) => {
                    let _ = self.dispatch(event);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Protocol("event channel closed".into()));
                }
            }
        }
    }

    /// The full training session.
    fn train<M: Model>(
        &mut self,
        model: &M,
        dataset: &Dataset,
        decoder: &dyn Decoder,
        observer: &mut impl FnMut(&NetReport),
    ) -> Result<NetTrainReport, NetError> {
        self.await_registration()?;

        let n = self.n();
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut params = model.init_params(&mut rng);
        let mut opt = Sgd::new(self.config.learning_rate);
        let all_indices: Vec<usize> = (0..dataset.len()).collect();
        let mut steps = Vec::with_capacity(self.config.max_steps);
        let mut reached_threshold = false;
        let started = Instant::now();

        for step in 0..self.config.max_steps as u64 {
            self.broadcast(&Message::Params {
                step,
                values: params.as_slice().to_vec(),
            });
            let collected = self.collect_step(step)?;

            let available = WorkerSet::from_indices(n, collected.arrivals.iter().copied());
            let result = decoder.decode(&available, &mut rng);
            let recovered = result.recovered_count();
            if recovered > 0 {
                let mut g = Vector::zeros(params.len());
                for &w in result.selected() {
                    g.axpy(
                        1.0,
                        collected.codewords[w]
                            .as_ref()
                            .expect("decoder selects only arrived workers"),
                    );
                }
                // Paper-faithful normalization (Theorem 12's η·|D_d|): ĝ is
                // a sum of per-partition batch sums; scale once by the batch
                // size, matching isgc-runtime.
                g.scale(1.0 / self.config.batch_size as f64);
                opt.step(&mut params, &g);
            }
            let loss = model.loss_mean(&params, dataset, &all_indices);
            let report = NetReport {
                step,
                arrivals: collected.arrivals,
                waited_ms: collected.waited.as_secs_f64() * 1e3,
                selected: result.selected().to_vec(),
                recovered,
                ignored: (0..n).filter(|w| !result.selected().contains(w)).collect(),
                dead: self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.alive)
                    .map(|(i, _)| i)
                    .collect(),
                stale: collected.stale,
                loss,
            };
            observer(&report);
            steps.push(report);
            if loss <= self.config.loss_threshold {
                reached_threshold = true;
                break;
            }
        }
        Ok(NetTrainReport {
            steps,
            reached_threshold,
            wall_time: started.elapsed().as_secs_f64(),
            final_params: params,
        })
    }

    /// Collects one step's codewords under the configured wait policy.
    fn collect_step(&mut self, step: u64) -> Result<CollectedStep, NetError> {
        let step_start = Instant::now();
        let cutoff = match self.config.wait {
            WaitPolicy::FirstW(_) => None,
            WaitPolicy::Deadline(d) => Some(step_start + d),
        };
        let n = self.n();
        let mut codewords: Vec<Option<Vector>> = vec![None; n];
        let mut arrivals: Vec<usize> = Vec::new();
        let mut stale = 0usize;
        let mut pending: VecDeque<Event> = VecDeque::new();

        loop {
            self.sweep_dead();
            let alive_pending = (0..n)
                .filter(|&w| self.slots[w].alive && codewords[w].is_none())
                .count();
            let done = match self.config.wait {
                WaitPolicy::FirstW(w) => arrivals.len() >= w || alive_pending == 0,
                WaitPolicy::Deadline(_) => {
                    let expired = cutoff.is_some_and(|c| Instant::now() >= c);
                    (expired && !arrivals.is_empty()) || alive_pending == 0
                }
            };
            if done {
                if arrivals.is_empty() && self.alive_count() == 0 {
                    return Err(NetError::AllWorkersLost);
                }
                // A step that closes with zero arrivals but alive workers
                // (FirstW with everyone freshly dead-marked) still makes
                // progress upstream: zero recovery means no update.
                return Ok(CollectedStep {
                    arrivals,
                    codewords,
                    waited: step_start.elapsed(),
                    stale,
                });
            }

            let event = match pending.pop_front() {
                Some(event) => event,
                None => match self.event_rx.recv_timeout(POLL) {
                    Ok(event) => event,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(NetError::Protocol("event channel closed".into()));
                    }
                },
            };
            if let Some((worker, tagged_step, values)) = self.dispatch(event) {
                if tagged_step == step && codewords[worker].is_none() {
                    codewords[worker] = Some(Vector::from_slice(&values));
                    arrivals.push(worker);
                } else {
                    // Stale: a straggler finishing an earlier round (or a
                    // duplicate); count it, never mix it into this step.
                    stale += 1;
                }
            }
        }
    }
}

/// Poll granularity of the master loop: how often liveness and deadlines are
/// re-checked while waiting for codewords.
const POLL: Duration = Duration::from_millis(20);

/// What one step's collection phase produced.
struct CollectedStep {
    arrivals: Vec<usize>,
    codewords: Vec<Option<Vector>>,
    waited: Duration,
    stale: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use isgc_ml::model::LinearRegression;

    fn test_config(n: usize, c: usize, w: usize) -> NetConfig {
        let mut config = NetConfig::new(
            Placement::cyclic(n, c).expect("valid CR"),
            WaitPolicy::FirstW(w),
        );
        config.max_steps = 3;
        config
    }

    #[test]
    fn config_validation_catches_bad_w() {
        let config = test_config(4, 2, 5);
        assert!(matches!(config.validate(), Err(NetError::InvalidConfig(_))));
        assert!(test_config(4, 2, 4).validate().is_ok());
    }

    #[test]
    fn config_validation_catches_zero_batch_and_steps() {
        let mut config = test_config(4, 2, 2);
        config.batch_size = 0;
        assert!(config.validate().is_err());
        let mut config = test_config(4, 2, 2);
        config.max_steps = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn registration_times_out_without_workers() {
        let master = Master::bind("127.0.0.1:0").unwrap();
        let mut config = test_config(2, 1, 1);
        config.register_timeout = Duration::from_millis(100);
        let model = LinearRegression::new(2);
        let dataset = Dataset::synthetic_regression(16, 2, 0.1, 1);
        let err = master.run(&model, &dataset, &config).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn bind_reports_local_addr() {
        let master = Master::bind("127.0.0.1:0").unwrap();
        let addr = master.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
    }
}
