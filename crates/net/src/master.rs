//! The IS-GC master: listens on TCP, registers workers, drives training
//! steps, and ignores an arbitrary subset of stragglers every step.
//!
//! Robustness machinery (PR 2): the master checkpoints `(step, params,
//! assignments)` so a restarted process resumes mid-training; workers that
//! stay dead for a configurable number of steps are declared permanently
//! dead and their partitions are re-homed onto survivors (placement repair,
//! minimizing added conflict-graph edges); a step that closes having
//! recovered nothing surfaces as a typed [`NetError::Degraded`] instead of
//! silently spinning. All per-step randomness is derived from
//! `(seed, step)`, never streamed, so a resumed run is bit-identical to an
//! uninterrupted one from the restart point onward.
//!
//! Step semantics — decode, repair, bounds, normalization, the SGD update —
//! live in [`isgc_engine::StepEngine`]; this module is the TCP
//! [`Collector`]: registration, liveness, broadcast, collection, and
//! checkpoint persistence. All I/O rides the nonblocking
//! `crate::reactor`: the master process runs the accept path, every
//! connection, and the step state machine on **one** thread, regardless of
//! `n` — connection lifecycle events arrive as `NetEvent`s where the old
//! transport parked two threads per worker.

use std::collections::HashMap;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use isgc_core::Placement;
use isgc_engine::{
    Collected, Collector, DegradePolicy, EngineConfig, EngineError, FnObserver, LadderState,
    RepairEvent, StepContext, StepEngine, StepReport,
};
use isgc_linalg::Vector;
use isgc_ml::dataset::Dataset;
use isgc_ml::model::Model;

use crate::checkpoint::{CheckpointConfig, MasterCheckpoint};
use crate::reactor::{NetEvent, Reactor, Token};
use crate::report::{NetReport, NetTrainReport};
use crate::retry::RetryPolicy;
use crate::seam::Transport;
use crate::wire::{encode_params_frame, Message};
use crate::{NetError, WaitPolicy};

pub use isgc_engine::StepControl;

/// Configuration of a networked training run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The data placement; `placement.n()` workers must register.
    pub placement: Placement,
    /// How each step stops collecting codewords.
    pub wait: WaitPolicy,
    /// Mini-batch size per partition per step.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Stop when the full-dataset loss reaches this value.
    pub loss_threshold: f64,
    /// Hard cap on steps.
    pub max_steps: usize,
    /// Seed shared with workers (parameter init, batches, decode
    /// tie-breaks); transmitted in `Assign`.
    pub seed: u64,
    /// A worker silent for longer than this is presumed dead and stops
    /// counting toward wait targets until it reconnects or speaks again.
    /// Enforced by the reactor's logical timer wheel, so the decision is a
    /// deterministic deadline, not a race between wall-clock thread sleeps.
    pub heartbeat_timeout: Duration,
    /// How long `run` waits for all `n` workers to register.
    pub register_timeout: Duration,
    /// When set, the master persists a [`MasterCheckpoint`] on the given
    /// cadence and resumes from the file if it exists at startup.
    pub checkpoint: Option<CheckpointConfig>,
    /// When set, a worker dead for this many consecutive step starts is
    /// declared permanently dead: its partitions are reassigned to
    /// survivors (minimizing added conflict-graph edges) and fresh `Assign`
    /// frames are issued. Counted in steps, not wall time, so seeded chaos
    /// schedules replay exactly.
    pub repair_after_steps: Option<u64>,
    /// How long each step start waits for a previously-registered but
    /// currently disconnected worker to re-register before broadcasting.
    /// Zero (the default) broadcasts immediately. The chaos harness sets a
    /// generous grace so a flapping worker's arrival set depends only on
    /// its scripted faults, never on how fast its reconnect handshake races
    /// the next broadcast. Workers already declared dead by placement
    /// repair are never waited for.
    pub rejoin_grace: Duration,
    /// When set, the master records the engine's per-step metric series
    /// (via [`isgc_engine::MetricsObserver`]) plus transport byte/frame
    /// counters (see [`crate::metrics`]) into this registry.
    pub metrics: Option<isgc_obs::Registry>,
    /// What the engine does with steps below the coverage floor (the
    /// graceful degradation ladder). The TCP default is
    /// [`DegradePolicy::Fail`] — a zero-recovery step surfaces as
    /// [`NetError::Degraded`] — but supervised deployments can opt into
    /// bounded approximation instead.
    pub degrade: DegradePolicy,
    /// Tenant id stamped on every outbound frame and required on every
    /// inbound one — frames tagged with a foreign job are dropped before
    /// they reach the step loop. Job 0 is the single-tenant default.
    pub job: u64,
    /// Human-readable tenant name. When set (and `metrics` is set), the
    /// engine's per-step series are recorded under a `("job", name)` label
    /// scope, and [`NetConfig::checkpoint`] should be pre-scoped via
    /// [`CheckpointConfig::scoped`] so co-tenants keep separate files.
    pub job_name: Option<String>,
}

impl NetConfig {
    /// A config with conventional robustness timeouts.
    pub fn new(placement: Placement, wait: WaitPolicy) -> Self {
        NetConfig {
            placement,
            wait,
            batch_size: 8,
            learning_rate: 0.05,
            loss_threshold: 0.0,
            max_steps: 50,
            seed: 7,
            heartbeat_timeout: Duration::from_secs(2),
            register_timeout: Duration::from_secs(30),
            checkpoint: None,
            repair_after_steps: None,
            rejoin_grace: Duration::ZERO,
            metrics: None,
            degrade: DegradePolicy::Fail,
            job: 0,
            job_name: None,
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        let n = self.placement.n();
        if let WaitPolicy::FirstW(w) = self.wait {
            if !(1..=n).contains(&w) {
                return Err(NetError::InvalidConfig(format!(
                    "wait count w = {w} outside 1..={n}"
                )));
            }
        }
        if self.batch_size == 0 {
            return Err(NetError::InvalidConfig(
                "batch_size must be positive".into(),
            ));
        }
        if self.max_steps == 0 {
            return Err(NetError::InvalidConfig("max_steps must be positive".into()));
        }
        if self.repair_after_steps == Some(0) {
            return Err(NetError::InvalidConfig(
                "repair_after_steps must be at least 1".into(),
            ));
        }
        if let DegradePolicy::Approximate {
            max_consecutive,
            min_coverage,
        } = &self.degrade
        {
            if *max_consecutive == 0 {
                return Err(NetError::InvalidConfig(
                    "degrade max_consecutive must be at least 1".into(),
                ));
            }
            if !(0.0..=1.0).contains(min_coverage) {
                return Err(NetError::InvalidConfig(format!(
                    "degrade min_coverage must be within [0, 1], got {min_coverage}"
                )));
            }
        }
        Ok(())
    }

    /// The engine configuration this network config corresponds to.
    pub(crate) fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::new(self.placement.clone());
        config.batch_size = self.batch_size;
        config.learning_rate = self.learning_rate;
        config.loss_threshold = self.loss_threshold;
        config.max_steps = self.max_steps as u64;
        config.seed = self.seed;
        config.repair_after_steps = self.repair_after_steps;
        // Default Fail: a zero-recovery step over TCP means the run is
        // spinning while workers burn cycles, so surface NetError::Degraded
        // unless the operator opted into the degradation ladder.
        config.degrade = self.degrade.clone();
        config
    }
}

/// Wraps a transport failure for transit through the engine.
pub(crate) fn backend(e: NetError) -> EngineError {
    EngineError::Backend(Box::new(e))
}

/// Recovers the typed [`NetError`] from an engine failure.
pub(crate) fn engine_to_net(e: EngineError) -> NetError {
    match e {
        EngineError::Degraded {
            step,
            recovered,
            bound,
        } => NetError::Degraded {
            step,
            recovered,
            bound,
        },
        EngineError::Backend(inner) => match inner.downcast::<NetError>() {
            Ok(net) => *net,
            Err(other) => NetError::Protocol(other.to_string()),
        },
        EngineError::InvalidConfig(reason) => NetError::InvalidConfig(reason),
        other => NetError::Protocol(other.to_string()),
    }
}

/// What one inbound event amounted to, once slot state is updated.
enum Dispatched {
    /// Nothing the collection loop cares about.
    Nothing,
    /// A codeword: `(worker, step, values)` — already decoded in place by
    /// the reactor, no intermediate copy.
    Codeword(usize, u64, Vector),
    /// A fast-fail straggler signal: `(worker, step)`.
    Decline(usize, u64),
}

/// One worker slot as the master sees it.
pub(crate) struct Slot {
    /// The reactor connection currently owning this slot, if any. Tokens
    /// are never reused, so an event from a replaced connection can always
    /// be told apart from the current one.
    pub(crate) conn: Option<Token>,
    /// Whether the current connection is believed usable.
    pub(crate) alive: bool,
    /// Whether this slot was ever assigned to a connection.
    pub(crate) registered: bool,
}

impl Slot {
    /// An unregistered, unconnected slot.
    pub(crate) fn empty() -> Slot {
        Slot {
            conn: None,
            alive: false,
            registered: false,
        }
    }
}

/// A listening IS-GC master. Bind first (so tests can learn the ephemeral
/// port), then [`Master::run`] a training session.
pub struct Master {
    listener: TcpListener,
}

impl Master {
    /// Binds the master's listening socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Master, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Master { listener })
    }

    /// Binds with retries under `policy` — the restart path: a master
    /// coming back on its old port may briefly race the OS releasing it.
    ///
    /// # Errors
    ///
    /// The final bind error once the policy's attempts are exhausted.
    pub fn bind_with_retry(
        addr: impl ToSocketAddrs + Copy,
        policy: &RetryPolicy,
    ) -> Result<Master, NetError> {
        policy.run(0, || Master::bind(addr))
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the OS.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs a full training session; see [`Master::run_with`].
    ///
    /// # Errors
    ///
    /// As [`Master::run_with`].
    pub fn run<M: Model>(
        self,
        model: &M,
        dataset: &Dataset,
        config: &NetConfig,
    ) -> Result<NetTrainReport, NetError> {
        self.run_with(model, dataset, config, |_| {})
    }

    /// Runs a full training session, calling `observer` after every step.
    ///
    /// Blocks until `placement.n()` workers registered, then trains for up
    /// to `max_steps` steps, decoding each step's arrivals with the
    /// placement's IS-GC decoder and applying the shared SGD update. Dead
    /// workers (heartbeat silence, closed connections, `Decline` frames)
    /// shrink the wait target instead of stalling the step; late codewords
    /// are discarded by step tag; reconnecting workers reclaim their slot
    /// mid-run. With [`NetConfig::checkpoint`] set, the session resumes
    /// from the checkpoint file when one exists.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for bad parameters,
    /// [`NetError::Protocol`] when registration times out or a checkpoint
    /// is unusable, [`NetError::Degraded`] when a step recovers nothing,
    /// and [`NetError::AllWorkersLost`] when no worker is left at all.
    pub fn run_with<M: Model>(
        self,
        model: &M,
        dataset: &Dataset,
        config: &NetConfig,
        mut observer: impl FnMut(&NetReport),
    ) -> Result<NetTrainReport, NetError> {
        self.run_controlled(model, dataset, config, |report| {
            observer(report);
            StepControl::Continue
        })
    }

    /// Like [`Master::run_with`], but the observer may return
    /// [`StepControl::Crash`] to stop the master cold — no shutdown
    /// broadcast, sockets dropped — returning the partial report. The chaos
    /// harness uses this to script mid-run master crashes; a subsequent
    /// `run_controlled` with the same checkpointed config resumes.
    ///
    /// # Errors
    ///
    /// As [`Master::run_with`].
    pub fn run_controlled<M: Model>(
        self,
        model: &M,
        dataset: &Dataset,
        config: &NetConfig,
        mut observer: impl FnMut(&NetReport) -> StepControl,
    ) -> Result<NetTrainReport, NetError> {
        config.validate()?;
        let reactor = Reactor::new(Some(self.listener), config.job, config.metrics.clone())?;
        let mut loop_state = MasterLoop::new(config.clone(), Box::new(reactor));

        let outcome = (|| -> Result<NetTrainReport, NetError> {
            let mut engine = StepEngine::new(config.engine_config()).map_err(engine_to_net)?;
            // Parameter initialization is a pure function of the seed, so a
            // resumed master overwrites it from the checkpoint and a fresh
            // one matches any backend given the same seed.
            let mut params = engine.initial_params(model);
            let (start_step, ladder) = loop_state.try_resume(&mut params)?;
            engine
                .resume_from(start_step, loop_state.assignments.clone())
                .map_err(engine_to_net)?;
            engine.resume_ladder(ladder);
            loop_state.await_registration()?;
            let mut step_observer = FnObserver(|report: &StepReport| observer(report));
            match config.metrics.clone() {
                Some(registry) => {
                    // Wrap the caller's observer so the engine's logical
                    // series lands in the registry; the inner observer keeps
                    // its StepControl authority.
                    let n = config.placement.n();
                    let mut metered =
                        isgc_engine::MetricsObserver::wrapping(registry, n, &mut step_observer);
                    if let Some(name) = &config.job_name {
                        metered = metered.scoped_to_job(name.clone());
                    }
                    engine
                        .run(model, dataset, Some(params), &mut loop_state, &mut metered)
                        .map_err(engine_to_net)
                }
                None => engine
                    .run(
                        model,
                        dataset,
                        Some(params),
                        &mut loop_state,
                        &mut step_observer,
                    )
                    .map_err(engine_to_net),
            }
        })();

        // Tell workers we're done. A scripted crash skips the shutdown
        // broadcast — a killed process sends nothing — and hard-closes
        // every socket instead. Either way the listener dies with the
        // reactor; there is no accept thread to unblock.
        let crashed = matches!(&outcome, Ok(report) if report.interrupted);
        loop_state.close_peers(crashed);
        outcome
    }

    /// Turns the bound master into a step-at-a-time [`MasterSession`]:
    /// registration and (flat-mode) checkpoint resume happen here, then the
    /// caller drives one training step per [`MasterSession::step`] call.
    /// This is the networked job driver a multi-tenant scheduler
    /// round-robins — `isgc-sched` steps several of these in one process.
    ///
    /// # Errors
    ///
    /// As [`Master::run_with`]; on error the transport (reactor, listener,
    /// every accepted socket) is already torn down.
    pub fn into_session<M: Model>(
        self,
        model: M,
        dataset: Dataset,
        config: &NetConfig,
    ) -> Result<MasterSession<M>, NetError> {
        self.into_session_inner(model, dataset, config, None)
    }

    /// Like [`Master::into_session`], but collecting through a 2-level
    /// aggregation tree: `submasters` sub-masters register (via `SubHello`),
    /// each owning a group-aligned worker shard, and every step the root
    /// merges their partial codeword sums with the canonical pairwise
    /// reduction — bitwise identical to flat aggregation.
    ///
    /// # Errors
    ///
    /// As [`Master::into_session`], plus [`NetError::InvalidConfig`] when
    /// the placement is not FR or a shard boundary cuts through an FR group.
    pub fn into_tree_session<M: Model>(
        self,
        model: M,
        dataset: Dataset,
        config: &NetConfig,
        submasters: usize,
    ) -> Result<MasterSession<M>, NetError> {
        self.into_session_inner(model, dataset, config, Some(submasters))
    }

    fn into_session_inner<M: Model>(
        self,
        model: M,
        dataset: Dataset,
        config: &NetConfig,
        submasters: Option<usize>,
    ) -> Result<MasterSession<M>, NetError> {
        config.validate()?;
        let n = config.placement.n();
        let local_addr = self.listener.local_addr()?;
        let reactor = Reactor::new(Some(self.listener), config.job, config.metrics.clone())?;

        // Errors need no explicit transport teardown: dropping the reactor
        // closes the listener and every accepted socket.
        let (collector, engine, session) =
            build_session_state(&model, &dataset, config, reactor, submasters)?;
        let metrics = config.metrics.clone().map(|registry| {
            let mut observer = isgc_engine::MetricsObserver::new(registry, n);
            if let Some(name) = &config.job_name {
                observer = observer.scoped_to_job(name.clone());
            }
            observer
        });
        Ok(MasterSession {
            model,
            dataset,
            engine,
            session,
            collector,
            metrics,
            local_addr,
        })
    }
}

/// Builds the collector, engine, and open session for
/// [`Master::into_session_inner`].
fn build_session_state<M: Model>(
    model: &M,
    dataset: &Dataset,
    config: &NetConfig,
    reactor: Reactor,
    submasters: Option<usize>,
) -> Result<(SessionCollector, StepEngine, isgc_engine::Session), NetError> {
    match submasters {
        None => {
            let mut loop_state = MasterLoop::new(config.clone(), Box::new(reactor));
            let mut engine = StepEngine::new(config.engine_config()).map_err(engine_to_net)?;
            let mut params = engine.initial_params(model);
            let (start_step, ladder) = loop_state.try_resume(&mut params)?;
            engine
                .resume_from(start_step, loop_state.assignments.clone())
                .map_err(engine_to_net)?;
            engine.resume_ladder(ladder);
            loop_state.await_registration()?;
            let session = engine.begin(model, dataset, Some(params));
            Ok((SessionCollector::Flat(loop_state), engine, session))
        }
        Some(submasters) => {
            let mut root =
                crate::submaster::TreeRootLoop::new(config.clone(), Box::new(reactor), submasters)?;
            let engine = StepEngine::new(config.engine_config()).map_err(engine_to_net)?;
            let params = engine.initial_params(model);
            root.await_registration()?;
            let session = engine.begin(model, dataset, Some(params));
            Ok((SessionCollector::Tree(root), engine, session))
        }
    }
}

/// The transport behind one [`MasterSession`].
enum SessionCollector {
    /// Every worker reports straight to this master.
    Flat(MasterLoop),
    /// Sub-masters report shard partials; see [`crate::submaster`].
    Tree(crate::submaster::TreeRootLoop),
}

/// A registered, resumed, step-at-a-time networked training session — the
/// [`Master`]'s run loop with the stepping authority handed to the caller.
/// Drop order does not matter: [`MasterSession::finish`] performs the full
/// transport teardown (shutdown broadcast, then the reactor — which owns
/// the listener and every socket — drops with the session).
pub struct MasterSession<M: Model> {
    model: M,
    dataset: Dataset,
    engine: StepEngine,
    session: isgc_engine::Session,
    collector: SessionCollector,
    metrics: Option<isgc_engine::MetricsObserver>,
    local_addr: std::net::SocketAddr,
}

impl<M: Model> MasterSession<M> {
    /// The bound address workers (or sub-masters) dial.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Runs one training step over the wire.
    ///
    /// # Errors
    ///
    /// As [`Master::run_with`]; after an error the session is closed and
    /// further calls return [`isgc_engine::SessionStatus::Done`] without
    /// touching the network.
    pub fn step(&mut self) -> Result<isgc_engine::SessionStatus, NetError> {
        let collector: &mut dyn Collector = match &mut self.collector {
            SessionCollector::Flat(loop_state) => loop_state,
            SessionCollector::Tree(root) => root,
        };
        let result = match &mut self.metrics {
            Some(observer) => self.engine.step(
                &mut self.session,
                &self.model,
                &self.dataset,
                collector,
                observer,
            ),
            None => self.engine.step(
                &mut self.session,
                &self.model,
                &self.dataset,
                collector,
                &mut isgc_engine::NoopObserver,
            ),
        };
        result.map_err(engine_to_net)
    }

    /// Closes the session: broadcasts `Shutdown` to the peers (unless the
    /// run was interrupted by a scripted crash, which emulates a killed
    /// process by hard-closing every socket) and returns the training
    /// report. The listener closes when the reactor drops with the session.
    pub fn finish(mut self) -> NetTrainReport {
        let report = self.engine.finish(self.session);
        let crashed = report.interrupted;
        match &mut self.collector {
            SessionCollector::Flat(loop_state) => loop_state.close_peers(crashed),
            SessionCollector::Tree(root) => root.close_peers(crashed),
        }
        report
    }
}

/// The master's single-threaded state machine over connection events — the
/// engine's TCP [`Collector`]. Owns its [`Transport`] (the [`Reactor`] in
/// production, a virtual network under the model checker) and polls it
/// inline: there is no I/O thread anywhere in the master process.
pub(crate) struct MasterLoop {
    slots: Vec<Slot>,
    /// Which slot each adopted connection feeds. A token missing here (or
    /// disagreeing with `Slot::conn`) belongs to a replaced connection and
    /// its events are ignored.
    owner: HashMap<Token, usize>,
    reactor: Box<dyn Transport>,
    config: NetConfig,
    /// Current per-worker partition lists, mirroring the engine's table;
    /// starts as the placement's and diverges when the engine runs placement
    /// repair (a repaired-dead worker's list becomes empty). Used to build
    /// `Assign` frames and to decide which disconnected workers are worth a
    /// rejoin grace.
    assignments: Vec<Vec<usize>>,
}

impl Collector for MasterLoop {
    fn n(&self) -> usize {
        self.slots.len()
    }

    fn alive(&self) -> Vec<bool> {
        self.slots.iter().map(|s| s.alive).collect()
    }

    /// The engine re-homed a dead worker's partitions: mirror the table and
    /// re-issue `Assign` frames to every survivor whose list grew, over the
    /// existing connections.
    fn on_repair(&mut self, events: &[RepairEvent], assignments: &[Vec<usize>]) {
        self.assignments = assignments.to_vec();
        let touched: std::collections::BTreeSet<usize> = events.iter().map(|e| e.to).collect();
        for id in touched {
            let frame: Arc<[u8]> = self
                .assign_message(id)
                .encode_for_job(self.config.job)
                .into();
            match self.slots[id].conn {
                Some(token) => self.reactor.send(token, frame),
                None => self.slots[id].alive = false,
            }
        }
    }

    fn collect(&mut self, ctx: &StepContext<'_>) -> Result<Collected, EngineError> {
        let pre_stale = self.await_rejoins();
        // One encode, shared bytes to every peer — the fast path skips the
        // `Vec<f64>` clone a `Message::Params` round-trip would cost.
        let frame: Arc<[u8]> =
            encode_params_frame(self.config.job, ctx.step, ctx.params.as_slice()).into();
        self.broadcast_frame(&frame);
        let collected = self.collect_step(ctx.step).map_err(backend)?;
        Ok(Collected {
            arrivals: collected.arrivals,
            codewords: collected.codewords,
            declined: collected.declined,
            stale: collected.stale + pre_stale,
            waited_ms: collected.waited.as_secs_f64() * 1e3,
            duration: collected.waited.as_secs_f64(),
            sharded: None,
        })
    }

    fn after_step(
        &mut self,
        completed: u64,
        params: &Vector,
        ladder: LadderState,
    ) -> Result<(), EngineError> {
        self.maybe_checkpoint(completed, params, ladder)
            .map_err(backend)
    }
}

impl MasterLoop {
    pub(crate) fn new(config: NetConfig, reactor: Box<dyn Transport>) -> MasterLoop {
        let n = config.placement.n();
        MasterLoop {
            slots: (0..n).map(|_| Slot::empty()).collect(),
            owner: HashMap::new(),
            reactor,
            assignments: (0..n)
                .map(|w| config.placement.partitions_of(w).to_vec())
                .collect(),
            config,
        }
    }

    fn n(&self) -> usize {
        self.slots.len()
    }

    /// Notifies workers the run is over — a `Shutdown` broadcast (flushed
    /// through the reactor) normally, or (emulating a killed process, whose
    /// fds all close) a hard shutdown of every socket when the run ended in
    /// a scripted crash.
    pub(crate) fn close_peers(&mut self, crashed: bool) {
        if !crashed {
            let frame: Arc<[u8]> = Message::Shutdown.encode_for_job(self.config.job).into();
            self.broadcast_frame(&frame);
            self.reactor.flush_all(Duration::from_secs(1));
        } else {
            self.reactor.hard_close_all();
        }
    }

    /// Counts one inbound frame, when a metrics registry is attached.
    fn count_received(&self, bytes: usize) {
        if let Some(registry) = &self.config.metrics {
            use isgc_obs::Class::Timing;
            registry.inc(crate::metrics::FRAMES_RECEIVED_TOTAL, &[], Timing);
            registry.inc_by(
                crate::metrics::BYTES_RECEIVED_TOTAL,
                &[],
                Timing,
                bytes as u64,
            );
        }
    }

    /// The slot an adopted connection currently owns, or `None` when the
    /// event came from a replaced (or never-registered) connection.
    fn slot_of(&self, token: Token) -> Option<usize> {
        let id = *self.owner.get(&token)?;
        (self.slots[id].conn == Some(token)).then_some(id)
    }

    /// Handles one event; codewords and declines are returned to the
    /// caller, everything else mutates slot state here.
    fn dispatch(&mut self, event: NetEvent) -> Dispatched {
        match event {
            NetEvent::Hello { token, preferred } => {
                self.register(token, preferred);
                Dispatched::Nothing
            }
            // A sub-master dialing a flat master: not part of this topology;
            // drop the connection.
            NetEvent::SubHello { token, .. } => {
                self.reactor.reject(token);
                Dispatched::Nothing
            }
            NetEvent::Gone { token } => {
                if let Some(id) = self.slot_of(token) {
                    self.slots[id].alive = false;
                    self.slots[id].conn = None;
                }
                self.owner.remove(&token);
                Dispatched::Nothing
            }
            NetEvent::HeartbeatTimeout { token } => {
                // The reactor's timer wheel says this connection has been
                // silent past the heartbeat deadline: presumed dead. The
                // socket stays open — a late message revives the slot.
                if let Some(id) = self.slot_of(token) {
                    self.slots[id].alive = false;
                }
                Dispatched::Nothing
            }
            NetEvent::Codeword {
                token,
                step,
                values,
                bytes,
            } => {
                self.count_received(bytes);
                let Some(id) = self.slot_of(token) else {
                    return Dispatched::Nothing; // from a replaced connection
                };
                self.slots[id].alive = true;
                Dispatched::Codeword(id, step, values)
            }
            NetEvent::Msg {
                token,
                message,
                bytes,
            } => {
                self.count_received(bytes);
                let Some(id) = self.slot_of(token) else {
                    return Dispatched::Nothing; // from a replaced connection
                };
                self.slots[id].alive = true;
                match message {
                    Message::Decline { step, .. } => Dispatched::Decline(id, step),
                    Message::Heartbeat { .. } => Dispatched::Nothing,
                    // Workers never send anything else (codewords arrive as
                    // NetEvent::Codeword); ignore rather than letting one
                    // confused peer kill the run.
                    _ => Dispatched::Nothing,
                }
            }
        }
    }

    /// Assigns a slot to a pending connection, adopting it into the
    /// reactor (which sends `Assign` and arms the heartbeat deadline).
    fn register(&mut self, token: Token, preferred: Option<u64>) {
        let n = self.n();
        let id = match preferred {
            Some(p) if (p as usize) < n => p as usize,
            Some(_) => {
                // Claims a slot outside the cluster: reject.
                self.reactor.reject(token);
                return;
            }
            None => match self.slots.iter().position(|s| !s.registered) {
                Some(free) => free,
                None => {
                    // Cluster is full; a worker that lost its id and
                    // reconnected fresh would land here. Adopt the first
                    // dead slot if any, else drop the connection.
                    match self.slots.iter().position(|s| !s.alive) {
                        Some(dead) => dead,
                        None => {
                            self.reactor.reject(token);
                            return;
                        }
                    }
                }
            },
        };
        let assign: Arc<[u8]> = self
            .assign_message(id)
            .encode_for_job(self.config.job)
            .into();
        if !self
            .reactor
            .adopt(token, assign, Some(self.config.heartbeat_timeout))
        {
            return; // connection died under the Assign write
        }
        // The replaced connection (if any) is closed; its token can never
        // be adopted again, so late events from it fall through slot_of.
        if let Some(old) = self.slots[id].conn.take() {
            self.owner.remove(&old);
            self.reactor.reject(old);
        }
        let slot = &mut self.slots[id];
        slot.conn = Some(token);
        slot.registered = true;
        slot.alive = true;
        self.owner.insert(token, id);
    }

    /// Builds the `Assign` frame for worker `id` from its *current*
    /// assignment (which placement repair may have changed).
    fn assign_message(&self, id: usize) -> Message {
        Message::Assign {
            worker: id as u64,
            n: self.n() as u64,
            c: self.config.placement.c() as u64,
            batch_size: self.config.batch_size as u64,
            seed: self.config.seed,
            partitions: self.assignments[id].iter().map(|&j| j as u64).collect(),
        }
    }

    fn alive_count(&self) -> usize {
        self.slots.iter().filter(|s| s.alive).count()
    }

    /// Sends one pre-encoded frame to every alive worker. The bytes are
    /// shared (`Arc` clones, not copies) across every peer's write queue;
    /// a peer that fails mid-write surfaces as a queued `Gone` event and is
    /// demoted when it is dispatched.
    fn broadcast_frame(&mut self, frame: &Arc<[u8]>) {
        let targets: Vec<Token> = self
            .slots
            .iter()
            .filter(|s| s.alive)
            .filter_map(|s| s.conn)
            .collect();
        self.reactor.broadcast(frame, &targets);
    }

    /// Blocks until all `n` workers registered (or the deadline passes).
    pub(crate) fn await_registration(&mut self) -> Result<(), NetError> {
        let deadline = Instant::now() + self.config.register_timeout;
        loop {
            let registered = self.slots.iter().filter(|s| s.registered).count();
            if registered == self.n() {
                return Ok(());
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(NetError::Protocol(format!(
                    "registration timed out with {registered} of {} workers",
                    self.n()
                )));
            };
            if let Some(event) = self.reactor.next_event(remaining.min(POLL))? {
                let _ = self.dispatch(event);
            }
        }
    }

    /// Waits up to `rejoin_grace` for every previously-registered but
    /// disconnected worker (not yet declared dead by repair) to re-register,
    /// so a flapping worker's step membership is decided by what it *sends*
    /// (codeword or decline), never by whether its reconnect handshake beat
    /// the broadcast. Returns the number of codewords swallowed while
    /// waiting — necessarily stale, since this step has not been broadcast
    /// yet — so the caller can fold them into the step's stale count.
    fn await_rejoins(&mut self) -> usize {
        let grace = self.config.rejoin_grace;
        let mut stale = 0usize;
        if grace.is_zero() {
            return stale;
        }
        let waiting = |slots: &[Slot], assignments: &[Vec<usize>]| {
            slots
                .iter()
                .zip(assignments)
                .any(|(s, a)| s.registered && !s.alive && !a.is_empty())
        };
        let deadline = Instant::now() + grace;
        while waiting(&self.slots, &self.assignments) {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match self.reactor.next_event(remaining.min(POLL)) {
                Ok(Some(event)) => {
                    if let Dispatched::Codeword(..) = self.dispatch(event) {
                        stale += 1;
                    }
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
        stale
    }

    /// Restores checkpointed state if a checkpoint exists; returns the step
    /// to resume at and the degradation-ladder counter entering it, and
    /// overwrites the parameters to resume with. The restored assignment
    /// table is handed to the engine via [`StepEngine::resume_from`], which
    /// re-enters the repaired decode path when the table diverged from the
    /// placement; the ladder counter goes to [`StepEngine::resume_ladder`]
    /// so escalation decisions replay bit-for-bit.
    fn try_resume(&mut self, params: &mut Vector) -> Result<(u64, u64), NetError> {
        let Some(ck_config) = self.config.checkpoint.clone() else {
            return Ok((0, 0));
        };
        let Some(ck) = MasterCheckpoint::load(&ck_config.path)? else {
            return Ok((0, 0));
        };
        let (n, c) = (self.config.placement.n(), self.config.placement.c());
        ck.verify_fingerprint(self.config.seed, n, c)?;
        *params = Vector::from_slice(&ck.params);
        self.assignments = ck
            .assignments
            .iter()
            .map(|list| list.iter().map(|&j| j as usize).collect())
            .collect();
        Ok((ck.step, ck.consecutive_degraded))
    }

    /// Persists a checkpoint for `next_step` if the cadence says so.
    fn maybe_checkpoint(
        &self,
        next_step: u64,
        params: &Vector,
        ladder: LadderState,
    ) -> Result<(), NetError> {
        let Some(ck_config) = &self.config.checkpoint else {
            return Ok(());
        };
        if !next_step.is_multiple_of(ck_config.every.max(1)) {
            return Ok(());
        }
        let ck = MasterCheckpoint {
            seed: self.config.seed,
            n: self.config.placement.n() as u64,
            c: self.config.placement.c() as u64,
            step: next_step,
            consecutive_degraded: ladder.consecutive_degraded,
            params: params.as_slice().to_vec(),
            assignments: self
                .assignments
                .iter()
                .map(|list| list.iter().map(|&j| j as u64).collect())
                .collect(),
        };
        ck.save(&ck_config.path)
    }

    /// Collects one step's codewords under the configured wait policy.
    fn collect_step(&mut self, step: u64) -> Result<CollectedStep, NetError> {
        let step_start = Instant::now();
        let cutoff = match self.config.wait {
            WaitPolicy::FirstW(_) => None,
            WaitPolicy::Deadline(d) => Some(step_start + d),
        };
        let n = self.n();
        // A worker is eligible for this step only through the connection
        // that received the Params broadcast; one that reconnects mid-step
        // cannot produce this step's codeword, so it must not be waited on.
        let eligible: Vec<Option<Token>> = self
            .slots
            .iter()
            .map(|s| if s.alive { s.conn } else { None })
            .collect();
        let mut codewords: Vec<Option<Vector>> = vec![None; n];
        let mut arrivals: Vec<usize> = Vec::new();
        let mut declined: Vec<bool> = vec![false; n];
        let mut stale = 0usize;

        loop {
            // Heartbeat silence arrives as HeartbeatTimeout events off the
            // reactor's timer wheel (dispatched below); no wall-clock sweep.
            let alive_pending = (0..n)
                .filter(|&w| {
                    self.slots[w].alive
                        && eligible[w].is_some()
                        && eligible[w] == self.slots[w].conn
                        && !declined[w]
                        && codewords[w].is_none()
                })
                .count();
            let done = match self.config.wait {
                WaitPolicy::FirstW(w) => arrivals.len() >= w || alive_pending == 0,
                WaitPolicy::Deadline(_) => {
                    let expired = cutoff.is_some_and(|c| Instant::now() >= c);
                    (expired && !arrivals.is_empty()) || alive_pending == 0
                }
            };
            if done {
                if arrivals.is_empty() && self.alive_count() == 0 {
                    return Err(NetError::AllWorkersLost);
                }
                // A step that closes with zero arrivals but alive workers
                // (FirstW with everyone freshly dead-marked or declining)
                // is reported upstream as Degraded by the engine.
                return Ok(CollectedStep {
                    arrivals,
                    codewords,
                    waited: step_start.elapsed(),
                    stale,
                    declined: (0..n).filter(|&w| declined[w]).collect(),
                });
            }

            let Some(event) = self.reactor.next_event(POLL)? else {
                continue;
            };
            match self.dispatch(event) {
                Dispatched::Codeword(worker, tagged_step, values) => {
                    // `mc-mutation` deliberately breaks the stale guard —
                    // the codeword from the *previous* round is accepted as
                    // this step's — so the model checker's seeded-bug path
                    // (and its chaos replay) has a real violation to find.
                    // Never enabled in production builds.
                    #[cfg(feature = "mc-mutation")]
                    let fresh = (tagged_step == step || tagged_step + 1 == step)
                        && codewords[worker].is_none();
                    #[cfg(not(feature = "mc-mutation"))]
                    let fresh = tagged_step == step && codewords[worker].is_none();
                    if fresh {
                        codewords[worker] = Some(values);
                        arrivals.push(worker);
                        declined[worker] = false;
                    } else {
                        // Stale: a straggler finishing an earlier round (or
                        // a duplicate); count it, never mix it into this
                        // step.
                        stale += 1;
                    }
                }
                Dispatched::Decline(worker, tagged_step) => {
                    if tagged_step == step && codewords[worker].is_none() {
                        declined[worker] = true;
                    }
                }
                Dispatched::Nothing => {}
            }
        }
    }
}

/// Poll granularity of the master loop: how often liveness and deadlines are
/// re-checked while waiting for codewords.
const POLL: Duration = Duration::from_millis(20);

/// What one step's collection phase produced.
struct CollectedStep {
    arrivals: Vec<usize>,
    codewords: Vec<Option<Vector>>,
    waited: Duration,
    stale: usize,
    declined: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use isgc_ml::model::LinearRegression;

    fn test_config(n: usize, c: usize, w: usize) -> NetConfig {
        let mut config = NetConfig::new(
            Placement::cyclic(n, c).expect("valid CR"),
            WaitPolicy::FirstW(w),
        );
        config.max_steps = 3;
        config
    }

    #[test]
    fn config_validation_catches_bad_w() {
        let config = test_config(4, 2, 5);
        assert!(matches!(config.validate(), Err(NetError::InvalidConfig(_))));
        assert!(test_config(4, 2, 4).validate().is_ok());
    }

    #[test]
    fn config_validation_catches_zero_batch_steps_and_repair() {
        let mut config = test_config(4, 2, 2);
        config.batch_size = 0;
        assert!(config.validate().is_err());
        let mut config = test_config(4, 2, 2);
        config.max_steps = 0;
        assert!(config.validate().is_err());
        let mut config = test_config(4, 2, 2);
        config.repair_after_steps = Some(0);
        assert!(config.validate().is_err());
    }

    #[test]
    fn registration_times_out_without_workers() {
        let master = Master::bind("127.0.0.1:0").unwrap();
        let mut config = test_config(2, 1, 1);
        config.register_timeout = Duration::from_millis(100);
        let model = LinearRegression::new(2);
        let dataset = Dataset::synthetic_regression(16, 2, 0.1, 1);
        let err = master.run(&model, &dataset, &config).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn bind_reports_local_addr() {
        let master = Master::bind("127.0.0.1:0").unwrap();
        let addr = master.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
    }

    #[test]
    fn engine_errors_map_back_to_typed_net_errors() {
        let degraded = engine_to_net(EngineError::Degraded {
            step: 3,
            recovered: 0,
            bound: 2,
        });
        assert!(matches!(
            degraded,
            NetError::Degraded {
                step: 3,
                recovered: 0,
                bound: 2
            }
        ));
        let roundtrip = engine_to_net(backend(NetError::AllWorkersLost));
        assert!(matches!(roundtrip, NetError::AllWorkersLost));
        let invalid = engine_to_net(EngineError::InvalidConfig("nope".into()));
        assert!(matches!(invalid, NetError::InvalidConfig(_)));
    }
}
