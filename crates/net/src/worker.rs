//! The IS-GC worker client: connects to a master, computes per-partition
//! gradient sums, straggles per an injected delay, and reconnects under a
//! shared [`RetryPolicy`] when the connection drops.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver};
use isgc_linalg::Vector;
use isgc_ml::dataset::{Dataset, Partitioned};
use isgc_ml::model::Model;

use crate::retry::RetryPolicy;
use crate::wire::{read_message_tagged, write_message_for_job, Message, WireError};
use crate::{DelayFn, NetError};

/// Tunables of the worker loop.
#[derive(Clone)]
pub struct WorkerOptions {
    /// Injected straggler delay applied after each step's computation.
    pub delay: DelayFn,
    /// How often the worker proves liveness to the master.
    pub heartbeat_interval: Duration,
    /// Backoff schedule shared by the initial connect, reconnects after a
    /// dropped connection, and heartbeat write retries. Jitter is salted by
    /// the worker id, so a cluster reconnecting at once still fans out
    /// deterministically instead of thundering back in lockstep.
    pub retry: RetryPolicy,
    /// Tenant id stamped on every outbound frame; inbound frames tagged
    /// with a different job are ignored. Job 0 is the single-tenant
    /// default.
    pub job: u64,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            delay: crate::no_delay(),
            heartbeat_interval: Duration::from_millis(200),
            retry: RetryPolicy::default(),
            job: 0,
        }
    }
}

impl WorkerOptions {
    /// Default options with the given delay function.
    pub fn with_delay(delay: DelayFn) -> Self {
        WorkerOptions {
            delay,
            ..WorkerOptions::default()
        }
    }
}

/// What the master assigned this worker during registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// This worker's slot id in `0..n`.
    pub worker: usize,
    /// Cluster size (also the number of data partitions).
    pub n: usize,
    /// Partitions per worker *in the configured placement* (placement
    /// repair may later grow this worker's actual list past `c`).
    pub c: usize,
    /// Mini-batch size per partition per step.
    pub batch_size: usize,
    /// Shared seed for deterministic mini-batch sampling.
    pub seed: u64,
    /// The partitions this worker computes each step; updated in place
    /// when the master re-issues `Assign` after placement repair.
    pub partitions: Vec<usize>,
}

/// Why a worker's main loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownCause {
    /// The master sent `Shutdown`: the run completed.
    MasterShutdown,
    /// The connection dropped and every reconnect attempt failed.
    MasterUnreachable,
}

/// What a worker did over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The slot id this worker served as.
    pub worker: usize,
    /// Codewords computed and sent.
    pub steps_served: usize,
    /// Successful reconnections after a dropped connection.
    pub reconnects: usize,
    /// Why the loop ended.
    pub cause: ShutdownCause,
}

/// How one connection session ended.
enum SessionEnd {
    Shutdown,
    Lost,
}

/// Runs a worker until the master shuts the run down (or becomes
/// unreachable).
///
/// `build` receives the master's [`Assignment`] and returns the model and
/// the **full** dataset; the worker partitions it into `n` parts itself so
/// every peer slices identically. Each `Params` message triggers one
/// codeword: per assigned partition, a deterministic mini-batch is drawn
/// (`partition`, `batch_size`, `step`, `seed` — identical on any peer that
/// would recompute it), gradient sums are accumulated, the injected delay
/// runs, and the codeword is sent back tagged with the step.
///
/// A mid-session `Assign` (issued by placement repair when a peer is
/// declared permanently dead) replaces this worker's partition list on the
/// fly; subsequent steps compute the adopted partitions too.
///
/// # Errors
///
/// [`NetError::Io`] when the initial connection cannot be established at
/// all; after a successful registration, connection loss is handled by
/// reconnecting and ultimately reported via
/// [`ShutdownCause::MasterUnreachable`] instead of an error.
pub fn run_worker<M, F>(
    addr: impl ToSocketAddrs,
    options: &WorkerOptions,
    build: F,
) -> Result<WorkerSummary, NetError>
where
    M: Model,
    F: FnOnce(&Assignment) -> (M, Dataset),
{
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| NetError::InvalidConfig("address resolved to nothing".into()))?;

    let (stream, mut assignment) = connect(addr, None, options)?;
    let (model, dataset) = build(&assignment);
    let partitioned = dataset.partition(assignment.n);

    let mut summary = WorkerSummary {
        worker: assignment.worker,
        steps_served: 0,
        reconnects: 0,
        cause: ShutdownCause::MasterShutdown,
    };
    let mut stream = stream;
    loop {
        let end = session(
            stream,
            &mut assignment,
            &model,
            &dataset,
            &partitioned,
            options,
            &mut summary.steps_served,
        );
        match end {
            SessionEnd::Shutdown => {
                summary.cause = ShutdownCause::MasterShutdown;
                return Ok(summary);
            }
            SessionEnd::Lost => match connect(addr, Some(assignment.worker as u64), options) {
                Ok((fresh, reassign)) => {
                    summary.reconnects += 1;
                    // The master's Assign reflects any placement repair run
                    // while we were away; adopt it rather than computing a
                    // stale partition set.
                    assignment.partitions = reassign.partitions;
                    stream = fresh;
                }
                Err(_) => {
                    summary.cause = ShutdownCause::MasterUnreachable;
                    return Ok(summary);
                }
            },
        }
    }
}

/// Dials the master under the shared [`RetryPolicy`] and completes the
/// `Hello`/`Assign` handshake. Also the swarm client's per-member
/// handshake (see [`crate::swarm`]), which then hands the stream to its
/// reactor instead of spawning threads.
pub(crate) fn connect(
    addr: std::net::SocketAddr,
    preferred: Option<u64>,
    options: &WorkerOptions,
) -> Result<(TcpStream, Assignment), NetError> {
    let salt = preferred.map_or(u64::MAX, |p| p);
    let mut last_err: Option<NetError> = None;
    for attempt in 0..options.retry.max_attempts.max(1) {
        thread::sleep(options.retry.delay(attempt, salt));
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                last_err = Some(NetError::Io(e));
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        if let Err(e) =
            write_message_for_job(&mut stream, options.job, &Message::Hello { preferred })
        {
            last_err = Some(NetError::Wire(e));
            continue;
        }
        match read_message_tagged(&mut stream) {
            Ok((frame_job, _, _)) if frame_job != options.job => {
                last_err = Some(NetError::Protocol(format!(
                    "master answered for job {frame_job}, expected {}",
                    options.job
                )));
            }
            Ok((
                _,
                Message::Assign {
                    worker,
                    n,
                    c,
                    batch_size,
                    seed,
                    partitions,
                },
                _,
            )) => {
                let assignment = Assignment {
                    worker: worker as usize,
                    n: n as usize,
                    c: c as usize,
                    batch_size: batch_size as usize,
                    seed,
                    partitions: partitions.into_iter().map(|j| j as usize).collect(),
                };
                return Ok((stream, assignment));
            }
            Ok((_, other, _)) => {
                last_err = Some(NetError::Protocol(format!(
                    "expected Assign after Hello, got {other:?}"
                )));
            }
            Err(e) => last_err = Some(NetError::Wire(e)),
        }
    }
    Err(last_err.unwrap_or_else(|| NetError::Protocol("no connect attempts made".into())))
}

/// Serves one connection until shutdown or loss.
///
/// A reader thread feeds inbound messages into a channel so the main loop
/// can *drain to the newest* `Params` — a worker that straggled through
/// several rounds jumps straight to the current step instead of burning
/// time on parameters the master already gave up waiting for.
fn session<M: Model>(
    stream: TcpStream,
    assignment: &mut Assignment,
    model: &M,
    dataset: &Dataset,
    partitioned: &Partitioned,
    options: &WorkerOptions,
    steps_served: &mut usize,
) -> SessionEnd {
    let writer = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return SessionEnd::Lost,
    }));

    let (inbound_tx, inbound_rx) = unbounded::<Message>();
    let reader = {
        let mut read_half = stream;
        let job = options.job;
        thread::Builder::new()
            .name(format!("isgc-net-worker-{}-reader", assignment.worker))
            .spawn(move || loop {
                match read_message_tagged(&mut read_half) {
                    Ok((frame_job, _, _)) if frame_job != job => continue,
                    Ok((_, message, _)) => {
                        let shutdown = matches!(message, Message::Shutdown);
                        if inbound_tx.send(message).is_err() || shutdown {
                            return;
                        }
                    }
                    Err(_) => return, // dropping inbound_tx signals loss
                }
            })
    };
    if reader.is_err() {
        return SessionEnd::Lost;
    }

    let hb_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = spawn_heartbeat(
        Arc::clone(&writer),
        assignment.worker as u64,
        options.heartbeat_interval,
        options.retry.clone(),
        Arc::clone(&hb_stop),
        options.job,
    );

    let end = serve_messages(
        &inbound_rx,
        &writer,
        assignment,
        model,
        dataset,
        partitioned,
        options,
        steps_served,
    );

    hb_stop.store(true, Ordering::Release);
    let _ = heartbeat.join();
    end
}

/// The worker's message loop proper (split out so `session` owns cleanup).
#[allow(clippy::too_many_arguments)]
fn serve_messages<M: Model>(
    inbound_rx: &Receiver<Message>,
    writer: &Arc<Mutex<TcpStream>>,
    assignment: &mut Assignment,
    model: &M,
    dataset: &Dataset,
    partitioned: &Partitioned,
    options: &WorkerOptions,
    steps_served: &mut usize,
) -> SessionEnd {
    // Per-partition gradient scratch, reused across partitions and steps so
    // the hot loop never allocates a gradient vector.
    let mut scratch = model.zero_params();
    loop {
        let Ok(first) = inbound_rx.recv() else {
            return SessionEnd::Lost;
        };
        // Drain the backlog, applying every message in order: Shutdown wins
        // outright, Assigns update the partition list immediately (they must
        // not be skipped by the drain), and only the newest Params survives —
        // a worker that straggled through several rounds jumps straight to
        // the current step.
        let mut backlog = vec![first];
        while let Ok(next) = inbound_rx.try_recv() {
            backlog.push(next);
        }
        let mut latest_params: Option<(u64, Vec<f64>)> = None;
        for message in backlog {
            match message {
                Message::Shutdown => return SessionEnd::Shutdown,
                Message::Assign { partitions, .. } => {
                    assignment.partitions = partitions.into_iter().map(|j| j as usize).collect();
                }
                Message::Params { step, values } => latest_params = Some((step, values)),
                // The master never sends anything else mid-session.
                _ => {}
            }
        }
        let Some((step, values)) = latest_params else {
            continue;
        };
        let params = Vector::from_slice(&values);
        let mut codeword = model.zero_params();
        for &p in &assignment.partitions {
            let batch = partitioned.minibatch(p, assignment.batch_size, step, assignment.seed);
            scratch.fill_zero();
            model.gradient_sum_into(&params, dataset, &batch, &mut scratch);
            codeword.axpy(1.0, &scratch);
        }
        let pause = (options.delay)(assignment.worker, step);
        if !pause.is_zero() {
            thread::sleep(pause);
        }
        let reply = Message::Codeword {
            worker: assignment.worker as u64,
            step,
            values: codeword.into_vec(),
        };
        let sent = {
            let mut guard = writer.lock().expect("writer mutex poisoned");
            write_message_for_job(&mut *guard, options.job, &reply)
        };
        match sent {
            Ok(_) => *steps_served += 1,
            Err(WireError::Io(_)) | Err(WireError::Closed) => return SessionEnd::Lost,
            Err(_) => return SessionEnd::Lost,
        }
    }
}

/// Periodically proves liveness; a failed write is retried under the shared
/// [`RetryPolicy`] before the thread gives up (the session loop notices the
/// dead socket through its own writes and reconnects).
fn spawn_heartbeat(
    writer: Arc<Mutex<TcpStream>>,
    worker: u64,
    interval: Duration,
    retry: RetryPolicy,
    stop: Arc<AtomicBool>,
    job: u64,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("isgc-net-heartbeat".into())
        .spawn(move || {
            // Tick in short slices so a stop request never waits a full
            // interval.
            let slice = Duration::from_millis(25).min(interval);
            let mut elapsed = Duration::ZERO;
            let mut failures = 0u32;
            loop {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    let ok = {
                        let mut guard = writer.lock().expect("writer mutex poisoned");
                        write_message_for_job(&mut *guard, job, &Message::Heartbeat { worker })
                            .is_ok()
                    };
                    if ok {
                        failures = 0;
                    } else {
                        failures += 1;
                        if failures >= retry.max_attempts.max(1) {
                            return;
                        }
                        thread::sleep(retry.delay(failures, worker));
                    }
                }
                thread::sleep(slice);
                elapsed += slice;
            }
        })
        .expect("failed to spawn heartbeat thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let opts = WorkerOptions::default();
        assert!(opts.retry.max_attempts >= 1);
        assert!(opts.heartbeat_interval > Duration::ZERO);
        assert_eq!((opts.delay)(3, 9), Duration::ZERO);
    }

    #[test]
    fn connect_fails_fast_against_closed_port() {
        // Bind-then-drop gives a port nothing listens on.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let options = WorkerOptions {
            retry: RetryPolicy {
                base: Duration::from_millis(1),
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            ..WorkerOptions::default()
        };
        let addr: std::net::SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        assert!(connect(addr, None, &options).is_err());
    }

    #[test]
    fn assignment_roundtrips_through_wire_types() {
        let a = Assignment {
            worker: 3,
            n: 8,
            c: 2,
            batch_size: 4,
            seed: 99,
            partitions: vec![3, 4],
        };
        assert_eq!(a.partitions.len(), a.c);
        assert!(a.worker < a.n);
    }
}
