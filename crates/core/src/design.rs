//! Placement selection guidance (the practical upshot of §V-C and §VI).
//!
//! The paper's analysis implies a simple decision procedure for choosing a
//! placement given `n` workers and a storage budget `c`:
//!
//! - if `c | n`, **FR** maximizes recovery (Theorem 4's edge-subset chain);
//! - otherwise, if some group size `n₀` satisfies Theorem 6's
//!   `c ≤ n₀ ≤ 2c − 1` with `g = n/n₀` groups, an **HR** placement with the
//!   largest feasible `c₁` recovers more than CR while honoring the budget;
//! - otherwise **CR** always works (`any c ≤ n`).
//!
//! [`recommend`] encodes exactly that procedure.

use crate::{Error, HrParams, Placement};

/// Why [`recommend`] chose the placement it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rationale {
    /// `c | n`: FR dominates every alternative at this budget (Theorem 4).
    FrDivides,
    /// `c ∤ n` but an HR group size in Theorem 6's range exists; the chosen
    /// parameters maximize the within-group rows `c₁`.
    HrFeasible {
        /// Chosen group count.
        g: usize,
        /// Chosen within-group rows.
        c1: usize,
        /// Chosen global cyclic rows.
        c2: usize,
    },
    /// No FR or HR structure fits; CR is the universal fallback.
    CrFallback,
}

/// A recommended placement plus the reasoning behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The placement to deploy.
    pub placement: Placement,
    /// Why it was chosen.
    pub rationale: Rationale,
}

/// Recommends a placement for `n` workers with storage budget `c`
/// partitions per worker, preferring recovery per Theorem 4's ordering
/// `FR ⊆ HR ⊆ CR` (fewer conflict edges = more recovery).
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] when `n == 0`, `c == 0`, or
/// `c > n`.
///
/// # Examples
///
/// ```
/// use isgc_core::design::{recommend, Rationale};
/// use isgc_core::Scheme;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// // 8 workers, budget 2: FR fits exactly.
/// let r = recommend(8, 2)?;
/// assert_eq!(r.placement.scheme(), Scheme::Fractional);
///
/// // 10 workers, budget 4: 4 ∤ 10, but groups of n0 = 5 ∈ [4, 7] work.
/// let r = recommend(10, 4)?;
/// assert_eq!(r.placement.scheme(), Scheme::Hybrid);
///
/// // 7 workers (prime), budget 3: only CR fits.
/// let r = recommend(7, 3)?;
/// assert_eq!(r.placement.scheme(), Scheme::Cyclic);
/// assert_eq!(r.rationale, Rationale::CrFallback);
/// # Ok(())
/// # }
/// ```
pub fn recommend(n: usize, c: usize) -> Result<Recommendation, Error> {
    if n == 0 || c == 0 || c > n {
        return Err(Error::invalid(format!("need 1 ≤ c ≤ n, got n={n}, c={c}")));
    }
    // Best case: FR.
    if n.is_multiple_of(c) {
        return Ok(Recommendation {
            placement: Placement::fractional(n, c)?,
            rationale: Rationale::FrDivides,
        });
    }
    // Middle case: HR with the largest feasible c1. Prefer the smallest
    // valid group size n0 (Theorem 6: c ≤ n0 ≤ 2c − 1, n0 | n), since
    // smaller groups mean more groups and larger independent sets.
    for n0 in c..=(2 * c - 1).min(n) {
        if !n.is_multiple_of(n0) {
            continue;
        }
        let g = n / n0;
        // Largest c1 with n0 ≤ c + c1 and c1 ≤ min(c, n0): c1 = c keeps
        // c2 = 0 (pure grouped placement) whenever allowed.
        for c1 in (1..=c.min(n0)).rev() {
            let params = HrParams::new(n, g, c1, c - c1);
            if params.validate().is_ok() {
                return Ok(Recommendation {
                    placement: Placement::hybrid(params)?,
                    rationale: Rationale::HrFeasible { g, c1, c2: c - c1 },
                });
            }
        }
    }
    // Fallback: CR.
    Ok(Recommendation {
        placement: Placement::cyclic(n, c)?,
        rationale: Rationale::CrFallback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConflictGraph, Scheme};

    #[test]
    fn divisible_budget_yields_fr() {
        for (n, c) in [(8usize, 2usize), (12, 3), (24, 6), (5, 5)] {
            let r = recommend(n, c).unwrap();
            assert_eq!(r.placement.scheme(), Scheme::Fractional, "n={n}, c={c}");
            assert_eq!(r.rationale, Rationale::FrDivides);
            assert_eq!(r.placement.c(), c);
        }
    }

    #[test]
    fn non_divisible_with_valid_group_yields_hr() {
        // n = 10, c = 4: n0 = 5 ∈ [4, 7], g = 2.
        let r = recommend(10, 4).unwrap();
        assert_eq!(r.placement.scheme(), Scheme::Hybrid);
        match r.rationale {
            Rationale::HrFeasible { g, c1, c2 } => {
                assert_eq!(g, 2);
                assert_eq!(c1 + c2, 4);
                assert!(c1 >= 1);
            }
            other => panic!("expected HR, got {other:?}"),
        }
    }

    #[test]
    fn prime_n_falls_back_to_cr() {
        for (n, c) in [(7usize, 3usize), (11, 4), (13, 2)] {
            let r = recommend(n, c).unwrap();
            assert_eq!(r.placement.scheme(), Scheme::Cyclic, "n={n}, c={c}");
            assert_eq!(r.rationale, Rationale::CrFallback);
        }
    }

    #[test]
    fn recommendation_never_has_more_edges_than_cr() {
        // The whole point: the recommended placement's conflict graph is a
        // subgraph of CR's at the same (n, c).
        for n in 2..=20usize {
            for c in 1..=n {
                let rec = recommend(n, c).unwrap();
                let rec_graph = ConflictGraph::from_placement(&rec.placement);
                let cr_graph = ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap());
                assert!(
                    rec_graph.edge_count() <= cr_graph.edge_count(),
                    "n={n}, c={c}: {} > {}",
                    rec_graph.edge_count(),
                    cr_graph.edge_count()
                );
            }
        }
    }

    #[test]
    fn budget_is_always_respected() {
        for n in 1..=20usize {
            for c in 1..=n {
                let rec = recommend(n, c).unwrap();
                assert_eq!(rec.placement.c(), c, "n={n}, c={c}");
                assert_eq!(rec.placement.n(), n);
            }
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(recommend(0, 1).is_err());
        assert!(recommend(4, 0).is_err());
        assert!(recommend(4, 5).is_err());
    }
}
