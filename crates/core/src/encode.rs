//! Sum-encoding of gradients and assembly of `ĝ` (paper §IV).
//!
//! IS-GC's encoder is deliberately trivial: each worker uploads the *plain
//! sum* of the gradients it computed on its `c` partitions. The paper shows
//! any non-unit coefficients would force joint decoding across specific
//! workers and destroy the freedom to ignore an arbitrary straggler set.

use isgc_linalg::{Matrix, Vector};

use crate::decode::DecodeResult;
use crate::{Placement, WorkerId};

/// The IS-GC encoder: sums per-partition gradients on each worker.
///
/// # Examples
///
/// ```
/// use isgc_core::encode::SumEncoder;
/// use isgc_core::Placement;
/// use isgc_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let placement = Placement::cyclic(4, 2)?;
/// let encoder = SumEncoder::new(&placement);
/// // Worker 0 stores partitions {0, 1}; its codeword is g0 + g1.
/// let g0 = Vector::from_slice(&[1.0, 0.0]);
/// let g1 = Vector::from_slice(&[0.0, 2.0]);
/// let coded = encoder.encode(0, &[g0, g1]);
/// assert_eq!(coded.as_slice(), &[1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SumEncoder {
    placement: Placement,
}

impl SumEncoder {
    /// Creates an encoder for `placement`.
    pub fn new(placement: &Placement) -> Self {
        Self {
            placement: placement.clone(),
        }
    }

    /// The placement this encoder serves.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The coding matrix `B ∈ {0,1}^{n×n}` of this encoder: row `i` is the
    /// indicator of worker `i`'s partitions, so `codeword_i = B_i · g` where
    /// `g` stacks the per-partition gradients. This casts IS-GC in the same
    /// formalism as classic GC's coefficient matrix — except IS-GC's `B`
    /// needs no coefficient design at all.
    pub fn coefficient_matrix(&self) -> Matrix {
        let n = self.placement.n();
        let mut b = Matrix::zeros(n, n);
        for w in 0..n {
            for &j in self.placement.partitions_of(w) {
                b[(w, j)] = 1.0;
            }
        }
        b
    }

    /// Encodes worker `worker`'s codeword: the sum of its per-partition
    /// gradients, given in the same order as
    /// [`Placement::partitions_of`]`(worker)`.
    ///
    /// # Panics
    ///
    /// Panics if `gradients.len() != c`, the gradients have inconsistent
    /// dimensions, or `worker >= n`.
    pub fn encode(&self, worker: WorkerId, gradients: &[Vector]) -> Vector {
        assert_eq!(
            gradients.len(),
            self.placement.c(),
            "worker {worker} must provide c={} gradients",
            self.placement.c()
        );
        let mut sum = gradients[0].clone();
        for g in &gradients[1..] {
            sum.axpy(1.0, g);
        }
        sum
    }

    /// Assembles `ĝ = Σ_{i∈I} codeword_i` from a decode outcome.
    ///
    /// `codewords(i)` must return the codeword uploaded by worker `i`; it is
    /// only called for the selected workers. Returns the zero vector of
    /// dimension `dim` when nothing was selected.
    ///
    /// # Panics
    ///
    /// Panics if any codeword's dimension differs from `dim`.
    pub fn assemble(
        &self,
        result: &DecodeResult,
        dim: usize,
        mut codewords: impl FnMut(WorkerId) -> Vector,
    ) -> Vector {
        let mut g_hat = Vector::zeros(dim);
        for &w in result.selected() {
            let cw = codewords(w);
            assert_eq!(cw.len(), dim, "codeword of worker {w} has wrong dimension");
            g_hat.axpy(1.0, &cw);
        }
        g_hat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{CrDecoder, Decoder, ExactDecoder};
    use crate::{HrParams, WorkerSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthesizes distinguishable per-partition gradients: partition j has
    /// gradient [j+1, (j+1)^2].
    fn partition_gradient(j: usize) -> Vector {
        let v = (j + 1) as f64;
        Vector::from_slice(&[v, v * v])
    }

    fn worker_codeword(placement: &Placement, encoder: &SumEncoder, w: usize) -> Vector {
        let grads: Vec<Vector> = placement
            .partitions_of(w)
            .iter()
            .map(|&j| partition_gradient(j))
            .collect();
        encoder.encode(w, &grads)
    }

    #[test]
    fn encode_sums_gradients() {
        let p = Placement::cyclic(4, 2).unwrap();
        let e = SumEncoder::new(&p);
        let coded = e.encode(1, &[partition_gradient(1), partition_gradient(2)]);
        assert_eq!(coded.as_slice(), &[5.0, 13.0]); // [2+3, 4+9]
    }

    #[test]
    #[should_panic(expected = "must provide c=")]
    fn encode_wrong_arity_panics() {
        let p = Placement::cyclic(4, 2).unwrap();
        SumEncoder::new(&p).encode(0, &[partition_gradient(0)]);
    }

    #[test]
    fn assembled_g_hat_equals_sum_of_recovered_partitions() {
        // The central IS-GC identity: ĝ from selected codewords equals the
        // direct sum of the recovered partitions' gradients, exactly.
        let mut rng = StdRng::seed_from_u64(77);
        let placements = vec![
            Placement::fractional(8, 2).unwrap(),
            Placement::cyclic(8, 3).unwrap(),
            Placement::hybrid(HrParams::new(8, 2, 2, 2)).unwrap(),
        ];
        for placement in &placements {
            let n = placement.n();
            let encoder = SumEncoder::new(placement);
            let decoder = ExactDecoder::new(placement);
            for _ in 0..50 {
                let w = rng.random_range(0..=n);
                let avail = WorkerSet::random_subset(n, w, &mut rng);
                let result = decoder.decode(&avail, &mut rng);
                let g_hat =
                    encoder.assemble(&result, 2, |wid| worker_codeword(placement, &encoder, wid));
                let mut expected = Vector::zeros(2);
                for &j in result.partitions() {
                    expected.axpy(1.0, &partition_gradient(j));
                }
                assert_eq!(g_hat.as_slice(), expected.as_slice());
            }
        }
    }

    #[test]
    fn full_availability_recovers_full_gradient() {
        let placement = Placement::cyclic(6, 2).unwrap();
        let encoder = SumEncoder::new(&placement);
        let decoder = CrDecoder::new(&placement).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let result = decoder.decode(&WorkerSet::full(6), &mut rng);
        assert_eq!(result.recovered_count(), 6);
        let g_hat = encoder.assemble(&result, 2, |w| worker_codeword(&placement, &encoder, w));
        let mut full: Vector = Vector::zeros(2);
        for j in 0..6 {
            full.axpy(1.0, &partition_gradient(j));
        }
        assert_eq!(g_hat.as_slice(), full.as_slice());
    }

    #[test]
    fn coefficient_matrix_reproduces_codewords() {
        use isgc_linalg::Matrix;
        let placement = Placement::cyclic(5, 2).unwrap();
        let encoder = SumEncoder::new(&placement);
        let b = encoder.coefficient_matrix();
        // Scalar gradients g_j = j + 1: codeword_i must equal (B g)_i.
        let g = isgc_linalg::Vector::from_fn(5, |j| j as f64 + 1.0);
        let coded = b.matvec(&g);
        for w in 0..5 {
            let direct = encoder.encode(
                w,
                &placement
                    .partitions_of(w)
                    .iter()
                    .map(|&j| isgc_linalg::Vector::from_slice(&[g[j]]))
                    .collect::<Vec<_>>(),
            );
            assert_eq!(direct[0], coded[w], "worker {w}");
        }
        // Row sums are c; column sums are c (balanced replication).
        for i in 0..5 {
            let row_sum: f64 = b.row(i).iter().sum();
            assert_eq!(row_sum, 2.0);
            let col_sum: f64 = (0..5).map(|r| b[(r, i)]).sum();
            assert_eq!(col_sum, 2.0);
        }
        let _ = Matrix::zeros(1, 1); // silence unused-import lint paths
    }

    #[test]
    fn coding_matrix_ranks_match_theory() {
        use isgc_linalg::Matrix;
        // Classic GC's B has full row span of null(H): rank n − c + 1.
        use crate::classic::ClassicGc;
        let mut rng = StdRng::seed_from_u64(12);
        for (n, c) in [(5usize, 2usize), (6, 3), (8, 2)] {
            let gc = ClassicGc::cyclic(n, c, &mut rng).unwrap();
            assert_eq!(
                gc.coefficients().rank(1e-9),
                n - c + 1,
                "classic GC rank at n={n}, c={c}"
            );
        }
        // IS-GC's 0/1 matrix for CR is circulant with c ones per row; it is
        // full rank unless the all-ones filter has a zero eigenvalue — in
        // particular FR's B has rank n/c (one distinct row per group).
        let fr = SumEncoder::new(&Placement::fractional(8, 2).unwrap());
        assert_eq!(fr.coefficient_matrix().rank(1e-9), 4);
        let _ = Matrix::zeros(1, 1);
    }

    #[test]
    fn empty_decode_assembles_zero() {
        let placement = Placement::cyclic(4, 2).unwrap();
        let encoder = SumEncoder::new(&placement);
        let g_hat = encoder.assemble(&DecodeResult::empty(), 3, |_| unreachable!());
        assert_eq!(g_hat.as_slice(), &[0.0, 0.0, 0.0]);
    }
}
