//! Conflict graphs (paper §V-A).
//!
//! Two workers *conflict* when they store a common partition: their summed
//! codewords both contain that partition's gradient, so adding them would
//! double-count it. The master can therefore only combine codewords from an
//! *independent set* of the conflict graph, and maximizing the recovered
//! gradients means finding a **maximum independent set** of the subgraph
//! induced by the available workers `W'`.

use std::time::Instant;

use crate::{Placement, WorkerId, WorkerSet};

/// The conflict graph `G = (W, E)` of a placement: vertices are workers,
/// `(a, b) ∈ E` iff workers `a` and `b` share a partition.
///
/// Stores dense bitset adjacency, so edge queries are `O(1)` and neighbor
/// masking during decoding is word-parallel.
///
/// # Examples
///
/// ```
/// use isgc_core::{ConflictGraph, Placement};
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let g = ConflictGraph::from_placement(&Placement::cyclic(4, 2)?);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2)); // opposite sides of the ring don't conflict
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    n: usize,
    adjacency: Vec<WorkerSet>,
}

impl ConflictGraph {
    /// Builds the conflict graph of `placement` from the ground-truth
    /// "shares a partition" relation.
    pub fn from_placement(placement: &Placement) -> Self {
        let n = placement.n();
        let mut adjacency = vec![WorkerSet::empty(n); n];
        // Workers conflict iff they co-store some partition, so it suffices
        // to link all co-storers of each partition: O(n * c^2).
        for j in 0..n {
            let workers = placement.workers_of(j);
            for (idx, &a) in workers.iter().enumerate() {
                for &b in &workers[idx + 1..] {
                    adjacency[a].insert(b);
                    adjacency[b].insert(a);
                }
            }
        }
        Self { n, adjacency }
    }

    /// Builds a graph directly from an edge list (used in tests and for
    /// synthetic graphs).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n` or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(WorkerId, WorkerId)]) -> Self {
        let mut adjacency = vec![WorkerSet::empty(n); n];
        for &(a, b) in edges {
            assert!(a != b, "self-loop ({a},{a}) not allowed");
            adjacency[a].insert(b);
            adjacency[b].insert(a);
        }
        Self { n, adjacency }
    }

    /// Number of vertices (workers).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns `true` when workers `a` and `b` conflict.
    ///
    /// # Panics
    ///
    /// Panics if either index is `>= n`.
    pub fn has_edge(&self, a: WorkerId, b: WorkerId) -> bool {
        self.adjacency[a].contains(b)
    }

    /// The neighbor set of worker `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n`.
    pub fn neighbors(&self, a: WorkerId) -> &WorkerSet {
        &self.adjacency[a]
    }

    /// Degree of worker `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n`.
    pub fn degree(&self, a: WorkerId) -> usize {
        self.adjacency[a].len()
    }

    /// Total number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(WorkerSet::len).sum::<usize>() / 2
    }

    /// All edges as `(a, b)` pairs with `a < b`, sorted.
    pub fn edges(&self) -> Vec<(WorkerId, WorkerId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for a in 0..self.n {
            for b in self.adjacency[a].iter() {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Returns `true` when every edge of `self` is also an edge of `other`
    /// (the `E ⊆ E'` relation of Theorems 4 and 7).
    ///
    /// # Panics
    ///
    /// Panics if the vertex counts differ.
    pub fn is_subgraph_of(&self, other: &ConflictGraph) -> bool {
        assert_eq!(self.n, other.n, "vertex count mismatch");
        (0..self.n).all(|a| self.adjacency[a].difference(&other.adjacency[a]).is_empty())
    }

    /// Returns `true` when `set` is an independent set: no two members
    /// adjacent.
    pub fn is_independent(&self, set: &[WorkerId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if a == b || self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Checks Theorem 1: is this graph the circulant `C_n^{1..c−1}`, i.e.
    /// `(a, b) ∈ E ⇔ ring-distance(a, b) < c`?
    pub fn is_circulant_with_span(&self, c: usize) -> bool {
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                let d = ring_distance(self.n, a, b);
                if self.has_edge(a, b) != (d < c) {
                    return false;
                }
            }
        }
        true
    }

    /// Computes a **maximum** independent set of the subgraph induced by
    /// `available`, by branch-and-bound.
    ///
    /// This is the exact oracle the paper's linear-time decoders are tested
    /// against; exponential in the worst case but fast at experiment scale
    /// (`n ≤ 64`).
    ///
    /// # Panics
    ///
    /// Panics if `available.universe() != self.n()`.
    pub fn max_independent_set(&self, available: &WorkerSet) -> Vec<WorkerId> {
        self.max_independent_set_within(available, None)
            .expect("unbudgeted search always completes")
    }

    /// [`ConflictGraph::max_independent_set`] under an optional wall-clock
    /// deadline: `None` means the search ran to completion and the result
    /// is the exact maximum; `Some(deadline)` aborts the branch-and-bound
    /// once the deadline passes (checked every 256 search nodes, so the
    /// overshoot is bounded) and returns `None` instead of a possibly
    /// non-maximum set.
    ///
    /// # Panics
    ///
    /// Panics if `available.universe() != self.n()`.
    pub fn max_independent_set_within(
        &self,
        available: &WorkerSet,
        deadline: Option<Instant>,
    ) -> Option<Vec<WorkerId>> {
        assert_eq!(
            available.universe(),
            self.n,
            "available-set universe mismatch"
        );
        let mut best: Vec<WorkerId> = Vec::new();
        let mut current: Vec<WorkerId> = Vec::new();
        let mut budget = MisBudget { nodes: 0, deadline };
        if !self.mis_recurse(available.clone(), &mut current, &mut best, &mut budget) {
            return None;
        }
        best.sort_unstable();
        Some(best)
    }

    /// The independence number `α(G[W'])` of the induced subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `available.universe() != self.n()`.
    pub fn alpha(&self, available: &WorkerSet) -> usize {
        self.max_independent_set(available).len()
    }

    /// One branch-and-bound node. Returns `false` when the budget expired
    /// mid-search (the partial `best` must then be discarded — it may not
    /// be maximum).
    fn mis_recurse(
        &self,
        mut remaining: WorkerSet,
        current: &mut Vec<WorkerId>,
        best: &mut Vec<WorkerId>,
        budget: &mut MisBudget,
    ) -> bool {
        if !budget.charge() {
            return false;
        }
        // Bound: even taking every remaining vertex cannot beat `best`.
        if current.len() + remaining.len() <= best.len() {
            return true;
        }
        // Pick the remaining vertex of maximum induced degree; vertices of
        // induced degree zero are always optimal to take immediately.
        let mut pick: Option<WorkerId> = None;
        let mut pick_deg = 0usize;
        let mut isolated: Vec<WorkerId> = Vec::new();
        for v in remaining.iter() {
            let deg = self.adjacency[v].intersection(&remaining).len();
            if deg == 0 {
                isolated.push(v);
            } else if pick.is_none() || deg > pick_deg {
                pick = Some(v);
                pick_deg = deg;
            }
        }
        let taken_isolated = isolated.len();
        for &v in &isolated {
            current.push(v);
            remaining.remove(v);
        }
        let mut completed = true;
        match pick {
            None => {
                if current.len() > best.len() {
                    *best = current.clone();
                }
            }
            Some(v) => {
                // Branch 1: include v (dropping its neighbors).
                let mut without_nbrs = remaining.difference(&self.adjacency[v]);
                without_nbrs.remove(v);
                current.push(v);
                completed = self.mis_recurse(without_nbrs, current, best, budget);
                current.pop();
                // Branch 2: exclude v.
                if completed {
                    let mut without_v = remaining.clone();
                    without_v.remove(v);
                    completed = self.mis_recurse(without_v, current, best, budget);
                }
            }
        }
        for _ in 0..taken_isolated {
            current.pop();
        }
        completed
    }
}

/// Budget state threaded through [`ConflictGraph::mis_recurse`]: the
/// deadline is consulted only every 256 nodes, so the clock read never
/// dominates the search and the overshoot past the deadline stays bounded.
struct MisBudget {
    nodes: u64,
    deadline: Option<Instant>,
}

impl MisBudget {
    /// Accounts one search node; `false` means the deadline has passed.
    fn charge(&mut self) -> bool {
        self.nodes += 1;
        match self.deadline {
            None => true,
            Some(deadline) => !self.nodes.is_multiple_of(256) || Instant::now() < deadline,
        }
    }
}

/// The ring distance `d(a, b) = min(|a−b|, n−|a−b|)` of paper Theorem 1.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use isgc_core::conflict::ring_distance;
///
/// assert_eq!(ring_distance(10, 1, 9), 2);
/// assert_eq!(ring_distance(10, 2, 6), 4);
/// ```
pub fn ring_distance(n: usize, a: WorkerId, b: WorkerId) -> usize {
    assert!(n > 0, "ring of size zero");
    let diff = a.abs_diff(b) % n;
    diff.min(n - diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HrParams, Placement};

    #[test]
    fn ring_distance_basic() {
        assert_eq!(ring_distance(4, 0, 0), 0);
        assert_eq!(ring_distance(4, 0, 1), 1);
        assert_eq!(ring_distance(4, 0, 2), 2);
        assert_eq!(ring_distance(4, 0, 3), 1);
        assert_eq!(ring_distance(5, 1, 4), 2);
    }

    #[test]
    fn fig4a_fr_conflict_graph() {
        // FR(4,2): two disjoint edges {0,1} and {2,3}.
        let g = ConflictGraph::from_placement(&Placement::fractional(4, 2).unwrap());
        assert_eq!(g.edges(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn fig4b_cr_conflict_graph() {
        // CR(4,2): the 4-cycle.
        let g = ConflictGraph::from_placement(&Placement::cyclic(4, 2).unwrap());
        assert_eq!(g.edges(), vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn theorem1_cr_is_circulant() {
        // The CR conflict graph is the circulant C_n^{1..c-1} for all n, c.
        for n in 2..=14 {
            for c in 1..=n {
                let g = ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap());
                assert!(g.is_circulant_with_span(c), "n={n}, c={c}");
            }
        }
    }

    #[test]
    fn theorem1_circulant_span_caps_at_half_ring() {
        // When 2(c-1) >= n the graph is complete; span check with cap
        // ceil(n/2) must still hold (d < ceil(n/2) always true off-diagonal
        // except antipodal points... verify via explicit completeness).
        let g = ConflictGraph::from_placement(&Placement::cyclic(4, 4).unwrap());
        assert_eq!(g.edge_count(), 6); // K4
    }

    #[test]
    fn theorem4_fr_subset_of_cr_subset_of_larger_cr() {
        for (n, c) in [(4usize, 2usize), (6, 2), (6, 3), (8, 4), (12, 3)] {
            let fr = ConflictGraph::from_placement(&Placement::fractional(n, c).unwrap());
            let cr = ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap());
            assert!(fr.is_subgraph_of(&cr), "FR({n},{c}) ⊆ CR({n},{c})");
            for c_next in c..=n {
                let cr_next = ConflictGraph::from_placement(&Placement::cyclic(n, c_next).unwrap());
                assert!(
                    cr.is_subgraph_of(&cr_next),
                    "CR({n},{c}) ⊆ CR({n},{c_next})"
                );
            }
        }
    }

    #[test]
    fn theorem5_hr_full_c1_conflict_graph_equals_fr() {
        // HR(8, 4, 0) with g=2 has the same conflict graph as FR(8, 4).
        let hr =
            ConflictGraph::from_placement(&Placement::hybrid(HrParams::new(8, 2, 4, 0)).unwrap());
        let fr = ConflictGraph::from_placement(&Placement::fractional(8, 4).unwrap());
        assert_eq!(hr.edges(), fr.edges());
    }

    #[test]
    fn theorem7_hr_edge_chain_is_monotone_in_c2() {
        // E_HR(n,c,0) ⊆ E_HR(n,c-1,1) ⊆ ... ⊆ E_HR(n,0,c) for the Fig. 13
        // family (n=8, g=2, c=4).
        let graphs: Vec<ConflictGraph> = (0..=4usize)
            .rev() // c1 = 4, 3, 2, 1, 0
            .map(|c1| {
                ConflictGraph::from_placement(
                    &Placement::hybrid(HrParams::new(8, 2, c1, 4 - c1)).unwrap(),
                )
            })
            .collect();
        for pair in graphs.windows(2) {
            assert!(pair[0].is_subgraph_of(&pair[1]));
        }
        // Endpoints are FR and CR.
        let fr = ConflictGraph::from_placement(&Placement::fractional(8, 4).unwrap());
        let cr = ConflictGraph::from_placement(&Placement::cyclic(8, 4).unwrap());
        assert_eq!(graphs[0].edges(), fr.edges());
        assert_eq!(graphs[4].edges(), cr.edges());
    }

    #[test]
    fn independence_checks() {
        let g = ConflictGraph::from_placement(&Placement::cyclic(4, 2).unwrap());
        assert!(g.is_independent(&[0, 2]));
        assert!(g.is_independent(&[1, 3]));
        assert!(!g.is_independent(&[0, 1]));
        assert!(!g.is_independent(&[0, 0])); // repeats are not independent
        assert!(g.is_independent(&[]));
        assert!(g.is_independent(&[2]));
    }

    #[test]
    fn exact_mis_on_known_graphs() {
        // 4-cycle: alpha = 2.
        let g = ConflictGraph::from_placement(&Placement::cyclic(4, 2).unwrap());
        let full = WorkerSet::full(4);
        assert_eq!(g.alpha(&full), 2);
        let mis = g.max_independent_set(&full);
        assert!(g.is_independent(&mis));
        assert_eq!(mis.len(), 2);

        // Complete graph: alpha = 1.
        let k4 = ConflictGraph::from_placement(&Placement::cyclic(4, 4).unwrap());
        assert_eq!(k4.alpha(&full), 1);

        // Edgeless graph: alpha = n.
        let e = ConflictGraph::from_edges(5, &[]);
        assert_eq!(e.alpha(&WorkerSet::full(5)), 5);
    }

    #[test]
    fn exact_mis_respects_available_mask() {
        let g = ConflictGraph::from_placement(&Placement::cyclic(6, 2).unwrap());
        // Only consecutive workers 0,1,2 available: alpha of induced path = 2.
        let avail = WorkerSet::from_indices(6, [0, 1, 2]);
        assert_eq!(g.alpha(&avail), 2);
        let mis = g.max_independent_set(&avail);
        assert!(mis.iter().all(|&v| avail.contains(v)));
        // Empty availability.
        assert_eq!(g.alpha(&WorkerSet::empty(6)), 0);
    }

    #[test]
    fn exact_mis_matches_brute_force_enumeration() {
        // Exhaustive cross-check on all subsets for small CR and HR graphs.
        let cases: Vec<ConflictGraph> = vec![
            ConflictGraph::from_placement(&Placement::cyclic(7, 3).unwrap()),
            ConflictGraph::from_placement(&Placement::fractional(6, 2).unwrap()),
            ConflictGraph::from_placement(&Placement::hybrid(HrParams::new(8, 2, 2, 2)).unwrap()),
        ];
        for g in &cases {
            let n = g.n();
            for mask in 0u32..(1 << n) {
                let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                let exact = g.alpha(&avail);
                // Brute force over subsets of avail.
                let members = avail.to_vec();
                let mut best = 0usize;
                for sub in 0u32..(1 << members.len()) {
                    let set: Vec<usize> = members
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| sub & (1 << k) != 0)
                        .map(|(_, &v)| v)
                        .collect();
                    if g.is_independent(&set) {
                        best = best.max(set.len());
                    }
                }
                assert_eq!(exact, best, "graph n={n}, mask={mask:b}");
            }
        }
    }

    #[test]
    fn from_edges_and_queries() {
        let g = ConflictGraph::from_edges(4, &[(0, 1), (1, 2)]);
        assert!(g.has_edge(1, 0));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(1).to_vec(), vec![0, 2]);
        assert_eq!(g.n(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_edges_rejects_self_loop() {
        ConflictGraph::from_edges(3, &[(1, 1)]);
    }
}
