//! # isgc-core — Ignore-Straggler Gradient Coding
//!
//! A faithful implementation of **IS-GC** from *"On Arbitrary Ignorance of
//! Stragglers with Gradient Coding"* (Su, Sukhnandan, Li — ICDCS 2023),
//! together with the classic gradient-coding baseline it compares against.
//!
//! ## The problem
//!
//! In distributed synchronous SGD a dataset is split into `n` partitions,
//! one per worker; the master must sum the per-partition gradients
//! `g = g_1 + … + g_n` each step, so a single slow worker (*straggler*)
//! stalls the whole step. Classic gradient coding (GC) stores `c` partitions
//! per worker and encodes gradients with carefully chosen coefficients so any
//! `n − c + 1` workers suffice — but with more than `c − 1` stragglers it
//! recovers *nothing*, and with fewer it wastes the redundancy.
//!
//! **IS-GC** instead has every worker upload the *plain sum* of its `c`
//! per-partition gradients. Summed codewords from any non-*conflicting* set
//! of workers (workers sharing no partition) combine into a partial gradient
//! `ĝ = Σ_{i∈I} g_i`, so the master may stop waiting after *any* number of
//! arrivals. Maximizing `|I|` is a maximum-independent-set problem on the
//! *conflict graph*, which the paper solves in linear time for the three
//! placement families:
//!
//! - [`Placement::fractional`] (FR) — groups of identical workers,
//!   decoded by [`decode::FrDecoder`] (paper Alg. 1);
//! - [`Placement::cyclic`] (CR) — round-robin placement whose conflict graph
//!   is the circulant `C_n^{1..c−1}` (Theorem 1), decoded by
//!   [`decode::CrDecoder`] (paper Alg. 2);
//! - [`Placement::hybrid`] (HR) — a family `HR(n, c₁, c₂)` interpolating
//!   between FR and CR (Theorems 5–7), decoded by [`decode::HrDecoder`]
//!   (paper Algs. 3–4).
//!
//! ## Quick example
//!
//! ```
//! use isgc_core::decode::{CrDecoder, Decoder};
//! use isgc_core::{Placement, WorkerSet};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), isgc_core::Error> {
//! // 4 workers, 2 partitions each, cyclic placement (Fig. 1(d) of the paper).
//! let placement = Placement::cyclic(4, 2)?;
//! let decoder = CrDecoder::new(&placement)?;
//!
//! // Workers 1 and 3 straggle; only 0 and 2 arrived.
//! let available = WorkerSet::from_indices(4, [0, 2]);
//! let mut rng = StdRng::seed_from_u64(1);
//! let result = decoder.decode(&available, &mut rng);
//!
//! // Workers 0 and 2 do not conflict, so all 4 partitions are recovered
//! // from just 2 workers — IS-SGD would recover only 2.
//! assert_eq!(result.selected().len(), 2);
//! assert_eq!(result.partitions(), &[0, 1, 2, 3]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`placement`] | §III, §IV, §VI | FR / CR / HR placement construction |
//! | [`conflict`] | §V-A | conflict graph, circulant checks, exact MIS oracle |
//! | [`decode`] | §IV–§VI | Algorithms 1–4 + exact & arrival-order baselines |
//! | [`bounds`] | §VII-A | Theorems 10–11 recovery bounds |
//! | [`expectation`] | §VII-A, Fig. 13(a) | expected recovery `E[α(G[W'])]` |
//! | [`design`] | §V-C, §VI | placement recommendation for a given `(n, c)` |
//! | [`encode`] | §IV | sum-encoding and `ĝ` assembly |
//! | [`classic`] | §III | classic GC baseline (Tandon et al.) |
//! | [`fairness`] | §IV, §V-B | Monte-Carlo partition-inclusion fairness |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod classic;
pub mod conflict;
pub mod decode;
pub mod design;
pub mod encode;
mod error;
pub mod expectation;
pub mod fairness;
pub mod placement;
mod worker_set;

pub use conflict::ConflictGraph;
pub use error::Error;
pub use placement::{HrParams, Placement, Scheme};
pub use worker_set::WorkerSet;

/// Identifier of a worker, in `0..n`.
pub type WorkerId = usize;

/// Identifier of a dataset partition, in `0..n` (the paper always uses as
/// many partitions as workers).
pub type PartitionId = usize;
