//! A compact bitset over worker identifiers.

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

/// A set of workers out of a fixed universe `0..n`, stored as a bitset.
///
/// This is the `W'` of the paper: the subset of workers whose coded gradients
/// reached the master before it stopped waiting. All decoder entry points take
/// a `WorkerSet`.
///
/// # Examples
///
/// ```
/// use isgc_core::WorkerSet;
///
/// let mut w = WorkerSet::empty(6);
/// w.insert(0);
/// w.insert(4);
/// assert_eq!(w.len(), 2);
/// assert!(w.contains(4));
/// assert_eq!(w.iter().collect::<Vec<_>>(), vec![0, 4]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WorkerSet {
    /// Universe size `n`; members are `< n`.
    n: usize,
    /// Bit `i` of word `i / 64` set ⇔ worker `i` present.
    words: Vec<u64>,
}

impl WorkerSet {
    /// Creates an empty set over the universe `0..n`.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Creates the full set `{0, …, n−1}`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Creates a set over `0..n` from an iterator of indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_indices(n: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::empty(n);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Samples a uniformly random subset of exactly `k` workers.
    ///
    /// This models `k` arrivals when worker speeds are i.i.d. — the setting of
    /// the paper's fairness claim.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn random_subset<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k <= n, "cannot sample {k} workers out of {n}");
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        Self::from_indices(n, ids.into_iter().take(k))
    }

    /// Universe size `n` this set ranges over (not the member count).
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of workers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when no workers are present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.n, "worker {i} outside universe 0..{}", self.n);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes worker `i` if present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.n, "worker {i} outside universe 0..{}", self.n);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns `true` when worker `i` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.n, "worker {i} outside universe 0..{}", self.n);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &WorkerSet) -> WorkerSet {
        assert_eq!(self.n, other.n, "universe mismatch");
        WorkerSet {
            n: self.n,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &WorkerSet) -> WorkerSet {
        assert_eq!(self.n, other.n, "universe mismatch");
        WorkerSet {
            n: self.n,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference(&self, other: &WorkerSet) -> WorkerSet {
        assert_eq!(self.n, other.n, "universe mismatch");
        WorkerSet {
            n: self.n,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// Complement within the universe.
    pub fn complement(&self) -> WorkerSet {
        let mut out = WorkerSet {
            n: self.n,
            words: self.words.iter().map(|w| !w).collect(),
        };
        // Clear phantom bits beyond `n`.
        let tail = self.n % 64;
        if tail != 0 {
            if let Some(last) = out.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        out
    }

    /// Returns `true` when `self` and `other` share no worker.
    pub fn is_disjoint(&self, other: &WorkerSet) -> bool {
        self.intersection(other).is_empty()
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, next: 0 }
    }

    /// Collects the members into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Picks a uniformly random member, or `None` if empty.
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let k = self.len();
        if k == 0 {
            return None;
        }
        let target = rng.random_range(0..k);
        self.iter().nth(target)
    }
}

/// Iterator over the members of a [`WorkerSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a WorkerSet,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.next < self.set.n {
            let i = self.next;
            self.next += 1;
            if self.set.contains(i) {
                return Some(i);
            }
        }
        None
    }
}

impl<'a> IntoIterator for &'a WorkerSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Debug for WorkerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WorkerSet(n={}, {{", self.n)?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn insert_remove_contains() {
        let mut s = WorkerSet::empty(100);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
        // Removing an absent member is a no-op.
        s.remove(63);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        WorkerSet::empty(4).insert(4);
    }

    #[test]
    fn full_and_complement() {
        let f = WorkerSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.complement().is_empty());
        let e = WorkerSet::empty(70);
        assert_eq!(e.complement(), f);
        let s = WorkerSet::from_indices(70, [1, 65]);
        let c = s.complement();
        assert_eq!(c.len(), 68);
        assert!(!c.contains(65));
        assert!(c.contains(0));
    }

    #[test]
    fn set_algebra() {
        let a = WorkerSet::from_indices(10, [1, 2, 3]);
        let b = WorkerSet::from_indices(10, [3, 4]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&WorkerSet::from_indices(10, [0, 9])));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn algebra_universe_mismatch_panics() {
        WorkerSet::empty(4).union(&WorkerSet::empty(5));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = WorkerSet::from_indices(128, [127, 0, 64, 63]);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 127]);
        let via_intoiter: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(via_intoiter, s.to_vec());
    }

    #[test]
    fn random_subset_has_exact_size() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in 0..=8 {
            let s = WorkerSet::random_subset(8, k, &mut rng);
            assert_eq!(s.len(), k);
            assert_eq!(s.universe(), 8);
        }
    }

    #[test]
    fn random_subset_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 4000;
        let mut counts = [0usize; 6];
        for _ in 0..trials {
            for i in WorkerSet::random_subset(6, 3, &mut rng).iter() {
                counts[i] += 1;
            }
        }
        // Each worker should appear in about half the subsets.
        for (i, &cnt) in counts.iter().enumerate() {
            let freq = cnt as f64 / trials as f64;
            assert!((freq - 0.5).abs() < 0.05, "worker {i}: freq={freq}");
        }
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = WorkerSet::from_indices(32, [5, 17, 31]);
        for _ in 0..50 {
            let m = s.choose(&mut rng).unwrap();
            assert!(s.contains(m));
        }
        assert_eq!(WorkerSet::empty(3).choose(&mut rng), None);
    }

    #[test]
    fn choose_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = WorkerSet::from_indices(8, [1, 4, 6]);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..3000 {
            *counts.entry(s.choose(&mut rng).unwrap()).or_insert(0usize) += 1;
        }
        for &c in counts.values() {
            assert!((c as f64 / 3000.0 - 1.0 / 3.0).abs() < 0.05);
        }
    }

    #[test]
    fn debug_format_lists_members() {
        let s = WorkerSet::from_indices(5, [0, 3]);
        assert_eq!(format!("{s:?}"), "WorkerSet(n=5, {0, 3})");
        assert_eq!(format!("{:?}", WorkerSet::empty(2)), "WorkerSet(n=2, {})");
    }

    #[test]
    fn zero_universe_edge_case() {
        let s = WorkerSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.complement().len(), 0);
        assert_eq!(s.iter().count(), 0);
    }
}
