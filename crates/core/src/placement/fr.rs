//! Fractional-repetition placement construction.

use crate::PartitionId;

/// Builds the per-worker partition lists for `FR(n, c)`.
///
/// Workers `ic..ic+c` form group `i` and all store partitions `ic..ic+c`.
/// Caller guarantees `c | n` (validated in [`crate::Placement::fractional`]).
pub(super) fn partition_lists(n: usize, c: usize) -> Vec<Vec<PartitionId>> {
    (0..n)
        .map(|w| {
            let group = w / c;
            (group * c..(group + 1) * c).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_share_identical_partitions() {
        let lists = partition_lists(6, 3);
        assert_eq!(lists[0], lists[1]);
        assert_eq!(lists[1], lists[2]);
        assert_eq!(lists[3], lists[4]);
        assert_eq!(lists[0], vec![0, 1, 2]);
        assert_eq!(lists[5], vec![3, 4, 5]);
    }

    #[test]
    fn partitions_are_disjoint_across_groups() {
        let lists = partition_lists(8, 2);
        for g1 in 0..4 {
            for g2 in (g1 + 1)..4 {
                let a = &lists[g1 * 2];
                let b = &lists[g2 * 2];
                assert!(a.iter().all(|p| !b.contains(p)));
            }
        }
    }
}
