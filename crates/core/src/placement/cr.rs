//! Cyclic-repetition placement construction.

use crate::PartitionId;

/// Builds the per-worker partition lists for `CR(n, c)`: worker `i` stores
/// partitions `(i + s) mod n` for `s = 0..c`.
pub(super) fn partition_lists(n: usize, c: usize) -> Vec<Vec<PartitionId>> {
    (0..n)
        .map(|w| (0..c).map(|s| (w + s) % n).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_around_the_ring() {
        let lists = partition_lists(5, 3);
        assert_eq!(lists[0], vec![0, 1, 2]);
        assert_eq!(lists[3], vec![3, 4, 0]);
        assert_eq!(lists[4], vec![4, 0, 1]);
    }

    #[test]
    fn consecutive_workers_overlap_in_c_minus_1() {
        let lists = partition_lists(7, 4);
        for w in 0..7 {
            let next = (w + 1) % 7;
            let shared = lists[w].iter().filter(|p| lists[next].contains(p)).count();
            assert_eq!(shared, 3);
        }
    }
}
