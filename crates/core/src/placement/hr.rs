//! Hybrid-repetition placement construction (paper §VI).

use crate::{Error, PartitionId};

/// Parameters of the hybrid-repetition placement `HR(n, c₁, c₂)` with `g`
/// groups (paper §VI-B, Fig. 7).
///
/// The `n` workers and `n` partitions are split into `g` groups of
/// `n₀ = n/g` each. Every worker stores `c = c₁ + c₂` partitions:
///
/// - `c₁` *within-group* cyclic rows: worker with local index `x` in group
///   `b` stores group-local partitions `(x + s) mod n₀` for
///   `s ∈ [n₀−c₁, n₀−1]` (the bottom `c₁` rows of `HR(n, n₀, 0)` in Fig. 7);
/// - `c₂` *global* cyclic rows: worker `i` stores global partitions
///   `(i + s) mod n` for `s ∈ [0, c₂−1]` (the top `c₂` rows of `CR(n, c)`).
///
/// `HR(n, 0, c)` is exactly `CR(n, c)`; `HR(n, c, 0)` with `n₀ = c` is
/// exactly `FR(n, c)`; intermediate `c₁` trade recovery against flexibility
/// (Theorem 7).
///
/// # Examples
///
/// ```
/// use isgc_core::{HrParams, Placement};
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// // The paper's Fig. 13 family: n = 8, g = 2, c = 4.
/// let p = Placement::hybrid(HrParams::new(8, 2, 2, 2))?;
/// assert_eq!(p.c(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HrParams {
    n: usize,
    g: usize,
    c1: usize,
    c2: usize,
}

impl HrParams {
    /// Creates the parameter bundle `HR(n, c₁, c₂)` with `g` groups.
    ///
    /// Validation happens in [`HrParams::validate`] (called by
    /// [`crate::Placement::hybrid`]), so invalid combinations can still be
    /// constructed and inspected.
    pub fn new(n: usize, g: usize, c1: usize, c2: usize) -> Self {
        Self { n, g, c1, c2 }
    }

    /// Number of workers / partitions.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of groups.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Number of within-group cyclic rows.
    pub fn c1(&self) -> usize {
        self.c1
    }

    /// Number of global cyclic rows.
    pub fn c2(&self) -> usize {
        self.c2
    }

    /// Total partitions per worker, `c = c₁ + c₂`.
    pub fn c(&self) -> usize {
        self.c1 + self.c2
    }

    /// Group size `n₀ = n / g`.
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`; call [`HrParams::validate`] first.
    pub fn n0(&self) -> usize {
        self.n / self.g
    }

    /// Checks the validity constraints of §VI.
    ///
    /// - basics: `n, g ≥ 1`, `g | n`, `1 ≤ c ≤ n`, `c₁ ≤ n₀`;
    /// - when `c₁ > 0` (a genuine hybrid), Theorem 6 requires
    ///   `c ≤ n₀ ≤ 2c − 1` and `n₀ ≤ c + c₁` so that workers within a group
    ///   pairwise conflict;
    /// - `c₁ = 0` degenerates to `CR(n, c)` and only the basics apply.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), Error> {
        let Self { n, g, c1, c2 } = *self;
        let c = c1 + c2;
        if n == 0 || g == 0 {
            return Err(Error::invalid("HR requires n ≥ 1 and g ≥ 1"));
        }
        if n % g != 0 {
            return Err(Error::invalid(format!(
                "HR requires g | n, got n={n}, g={g}"
            )));
        }
        if c == 0 {
            return Err(Error::invalid("HR requires c = c1 + c2 ≥ 1"));
        }
        if c > n {
            return Err(Error::invalid(format!(
                "HR requires c ≤ n, got c={c}, n={n}"
            )));
        }
        let n0 = n / g;
        if c1 > n0 {
            return Err(Error::invalid(format!(
                "HR requires c1 ≤ n0, got c1={c1}, n0={n0}"
            )));
        }
        if c1 > 0 {
            if !(c <= n0 && n0 < 2 * c) {
                return Err(Error::invalid(format!(
                    "HR (Theorem 6) requires c ≤ n0 ≤ 2c−1, got c={c}, n0={n0}"
                )));
            }
            if n0 > c + c1 {
                return Err(Error::invalid(format!(
                    "HR requires n0 ≤ c + c1 for in-group conflicts, got n0={n0}, c={c}, c1={c1}"
                )));
            }
        }
        Ok(())
    }
}

/// Builds the per-worker partition lists for a validated `HR` parameter set.
pub(super) fn partition_lists(params: &HrParams) -> Vec<Vec<PartitionId>> {
    let n = params.n();
    let n0 = params.n0();
    let (c1, c2) = (params.c1(), params.c2());
    (0..n)
        .map(|i| {
            let group_base = (i / n0) * n0;
            let x = i % n0;
            let mut parts: Vec<PartitionId> = Vec::with_capacity(c1 + c2);
            // Within-group cyclic rows (bottom c1 rows of the upper part).
            for s in (n0 - c1)..n0 {
                parts.push(group_base + (x + s) % n0);
            }
            // Global cyclic rows (top c2 rows of the CR part).
            for s in 0..c2 {
                parts.push((i + s) % n);
            }
            parts
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Placement;

    #[test]
    fn c1_zero_equals_cr() {
        let hr = Placement::hybrid(HrParams::new(8, 2, 0, 4)).unwrap();
        let cr = Placement::cyclic(8, 4).unwrap();
        for w in 0..8 {
            assert_eq!(hr.partitions_of(w), cr.partitions_of(w), "worker {w}");
        }
    }

    #[test]
    fn full_c1_with_n0_eq_c_equals_fr() {
        // HR(8, 4, 0) with g = 2: each worker stores its whole group,
        // exactly FR(8, 4).
        let hr = Placement::hybrid(HrParams::new(8, 2, 4, 0)).unwrap();
        let fr = Placement::fractional(8, 4).unwrap();
        for w in 0..8 {
            assert_eq!(hr.partitions_of(w), fr.partitions_of(w), "worker {w}");
        }
    }

    #[test]
    fn paper_equivalence_hr_c_0_equals_hr_cminus1_1() {
        // §VI-B: when n0 = c, HR(n, c, 0) ≡ HR(n, c−1, 1).
        let a = Placement::hybrid(HrParams::new(8, 2, 4, 0)).unwrap();
        let b = Placement::hybrid(HrParams::new(8, 2, 3, 1)).unwrap();
        for w in 0..8 {
            assert_eq!(a.partitions_of(w), b.partitions_of(w), "worker {w}");
        }
    }

    #[test]
    fn fig13_family_is_valid_and_balanced() {
        for c1 in 0..=4usize {
            let params = HrParams::new(8, 2, c1, 4 - c1);
            let p = Placement::hybrid(params).unwrap();
            for w in 0..8 {
                assert_eq!(p.partitions_of(w).len(), 4, "c1={c1}, worker {w}");
            }
            for j in 0..8 {
                assert_eq!(p.workers_of(j).len(), 4, "c1={c1}, partition {j}");
            }
        }
    }

    #[test]
    fn upper_part_stays_within_group() {
        let p = Placement::hybrid(HrParams::new(12, 3, 2, 2)).unwrap();
        // Worker 5 is in group 1 (workers 4..8, partitions 4..8); its two
        // upper-part partitions must be within 4..8.
        let parts = p.partitions_of(5);
        let in_group = parts.iter().filter(|&&j| (4..8).contains(&j)).count();
        assert!(in_group >= 2, "parts={parts:?}");
    }

    #[test]
    fn validation_rejects_bad_params() {
        // g does not divide n.
        assert!(HrParams::new(8, 3, 2, 2).validate().is_err());
        // c = 0.
        assert!(HrParams::new(8, 2, 0, 0).validate().is_err());
        // n0 = 4 > 2c−1 = 3 with c1 > 0.
        assert!(HrParams::new(8, 2, 1, 1).validate().is_err());
        // c1 > n0.
        assert!(HrParams::new(8, 4, 3, 1).validate().is_err());
        // g = 0.
        assert!(HrParams::new(8, 0, 1, 1).validate().is_err());
        // c > n.
        assert!(HrParams::new(4, 1, 2, 3).validate().is_err());
    }

    #[test]
    fn validation_accepts_paper_range() {
        // Fig. 13 family.
        for c1 in 0..=4usize {
            assert!(
                HrParams::new(8, 2, c1, 4 - c1).validate().is_ok(),
                "c1={c1}"
            );
        }
        // n0 strictly between c and 2c−1.
        assert!(HrParams::new(10, 2, 3, 1).validate().is_ok()); // c=4, n0=5 ≤ 7, n0 ≤ c+c1=7
        assert!(HrParams::new(12, 2, 4, 0).validate().is_ok()); // c=4, n0=6 ≤ 7 ≤ 8
    }

    #[test]
    fn accessors() {
        let p = HrParams::new(8, 2, 3, 1);
        assert_eq!(p.n(), 8);
        assert_eq!(p.g(), 2);
        assert_eq!(p.c1(), 3);
        assert_eq!(p.c2(), 1);
        assert_eq!(p.c(), 4);
        assert_eq!(p.n0(), 4);
    }

    #[test]
    fn hr_params_recorded_on_placement() {
        let params = HrParams::new(8, 2, 2, 2);
        let p = Placement::hybrid(params).unwrap();
        assert_eq!(p.hr_params(), Some(&params));
        assert_eq!(Placement::cyclic(4, 2).unwrap().hr_params(), None);
    }
}
