//! Dataset-partition placement schemes (paper §III, §IV, §VI).
//!
//! A *placement* assigns `c` of the `n` dataset partitions to each of the
//! `n` workers. IS-GC supports three families:
//!
//! - **FR** (fractional repetition): workers are split into `n/c` groups and
//!   every worker of group `i` stores the same `c` partitions — see
//!   [`Placement::fractional`];
//! - **CR** (cyclic repetition): worker `i` stores partitions
//!   `i, i+1, …, i+c−1 (mod n)` — see [`Placement::cyclic`];
//! - **HR** (hybrid repetition): `HR(n, c₁, c₂)` combines `c₁` within-group
//!   cyclic rows with `c₂` global cyclic rows, interpolating between FR and
//!   CR — see [`Placement::hybrid`] and [`HrParams`].

mod cr;
mod fr;
mod hr;

pub use hr::HrParams;

use crate::{Error, PartitionId, WorkerId};

/// Which placement family a [`Placement`] was constructed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Fractional repetition `FR(n, c)`.
    Fractional,
    /// Cyclic repetition `CR(n, c)`.
    Cyclic,
    /// Hybrid repetition `HR(n, c₁, c₂)` with `g` groups.
    Hybrid,
    /// A user-supplied placement (see [`Placement::custom`]); decoded by the
    /// exact branch-and-bound decoder.
    Custom,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Fractional => write!(f, "FR"),
            Scheme::Cyclic => write!(f, "CR"),
            Scheme::Hybrid => write!(f, "HR"),
            Scheme::Custom => write!(f, "custom"),
        }
    }
}

/// A concrete assignment of `c` dataset partitions to each of `n` workers.
///
/// Construct via [`Placement::fractional`], [`Placement::cyclic`], or
/// [`Placement::hybrid`]. The struct stores both directions of the relation
/// (worker → partitions and partition → workers) so conflict-graph
/// construction and encoding are index lookups.
///
/// # Examples
///
/// ```
/// use isgc_core::Placement;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(4, 2)?;
/// assert_eq!(p.partitions_of(3), &[0, 3]); // wraps: {3, 0}
/// assert_eq!(p.workers_of(0), &[0, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    n: usize,
    c: usize,
    scheme: Scheme,
    hr: Option<HrParams>,
    /// `partitions[i]` = sorted partitions stored by worker `i`.
    partitions: Vec<Vec<PartitionId>>,
    /// `workers[j]` = sorted workers storing partition `j`.
    workers: Vec<Vec<WorkerId>>,
}

impl Placement {
    /// Builds a fractional-repetition placement `FR(n, c)` (paper §III).
    ///
    /// The `n` workers split into `n/c` groups; group `i` stores partitions
    /// `{ic, …, ic+c−1}` on each of its `c` workers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when `n == 0`, `c == 0`,
    /// `c > n`, or `c ∤ n` (FR requires `c | n`).
    pub fn fractional(n: usize, c: usize) -> Result<Self, Error> {
        validate_common(n, c)?;
        if !n.is_multiple_of(c) {
            return Err(Error::invalid(format!(
                "FR requires c | n, got n={n}, c={c}"
            )));
        }
        Ok(Self::from_partition_lists(
            n,
            c,
            Scheme::Fractional,
            None,
            fr::partition_lists(n, c),
        ))
    }

    /// Builds a cyclic-repetition placement `CR(n, c)` (paper §III).
    ///
    /// Worker `i` stores partitions `i, i+1, …, i+c−1 (mod n)`; no
    /// divisibility constraint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when `n == 0`, `c == 0`, or
    /// `c > n`.
    pub fn cyclic(n: usize, c: usize) -> Result<Self, Error> {
        validate_common(n, c)?;
        Ok(Self::from_partition_lists(
            n,
            c,
            Scheme::Cyclic,
            None,
            cr::partition_lists(n, c),
        ))
    }

    /// Builds a hybrid-repetition placement `HR(n, c₁, c₂)` (paper §VI).
    ///
    /// See [`HrParams`] for the construction and its validity constraints
    /// (Theorem 6). `HR(n, c, 0)` coincides with `FR(n, n₀)` group structure
    /// and `HR(n, 0, c)` with `CR(n, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when `params` violates the HR
    /// validity range.
    pub fn hybrid(params: HrParams) -> Result<Self, Error> {
        params.validate()?;
        let lists = hr::partition_lists(&params);
        Ok(Self::from_partition_lists(
            params.n(),
            params.c(),
            Scheme::Hybrid,
            Some(params),
            lists,
        ))
    }

    /// Builds a placement from explicit per-worker partition lists.
    ///
    /// This is the escape hatch for placements outside the paper's three
    /// families (e.g. expander-graph or randomized placements from the
    /// wider gradient-coding literature). The balanced-replication invariant
    /// is enforced so that decoding and the fairness analysis stay valid:
    /// `lists.len()` workers, partitions numbered `0..n`, every worker
    /// storing the same number `c` of distinct partitions, and every
    /// partition stored by exactly `c` workers.
    ///
    /// Custom placements decode via [`crate::decode::ExactDecoder`]
    /// (exponential worst case) — the linear-time algorithms are specific to
    /// FR/CR/HR structure.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] when the lists are empty,
    /// ragged, reference partitions outside `0..n`, contain duplicates, or
    /// are not balanced.
    ///
    /// # Examples
    ///
    /// ```
    /// use isgc_core::Placement;
    ///
    /// # fn main() -> Result<(), isgc_core::Error> {
    /// // A hand-rolled pairing placement on 4 workers.
    /// let p = Placement::custom(vec![
    ///     vec![0, 2],
    ///     vec![1, 3],
    ///     vec![0, 3],
    ///     vec![1, 2],
    /// ])?;
    /// assert_eq!(p.c(), 2);
    /// assert_eq!(p.workers_of(3), &[1, 2]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn custom(lists: Vec<Vec<PartitionId>>) -> Result<Self, Error> {
        let n = lists.len();
        if n == 0 {
            return Err(Error::invalid("custom placement needs at least one worker"));
        }
        let c = lists[0].len();
        if c == 0 {
            return Err(Error::invalid("workers must store at least one partition"));
        }
        let mut replication = vec![0usize; n];
        for (w, parts) in lists.iter().enumerate() {
            if parts.len() != c {
                return Err(Error::invalid(format!(
                    "worker {w} stores {} partitions, expected c={c}",
                    parts.len()
                )));
            }
            let mut sorted = parts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != c {
                return Err(Error::invalid(format!(
                    "worker {w} stores duplicate partitions"
                )));
            }
            for &j in parts {
                if j >= n {
                    return Err(Error::invalid(format!(
                        "worker {w} references partition {j} outside 0..{n}"
                    )));
                }
                replication[j] += 1;
            }
        }
        if let Some(j) = replication.iter().position(|&r| r != c) {
            return Err(Error::invalid(format!(
                "partition {j} is stored by {} workers, expected c={c}",
                replication[j]
            )));
        }
        Ok(Self::from_partition_lists(
            n,
            c,
            Scheme::Custom,
            None,
            lists,
        ))
    }

    fn from_partition_lists(
        n: usize,
        c: usize,
        scheme: Scheme,
        hr: Option<HrParams>,
        mut partitions: Vec<Vec<PartitionId>>,
    ) -> Self {
        debug_assert_eq!(partitions.len(), n);
        let mut workers: Vec<Vec<WorkerId>> = vec![Vec::new(); n];
        for (w, parts) in partitions.iter_mut().enumerate() {
            parts.sort_unstable();
            parts.dedup();
            debug_assert_eq!(parts.len(), c, "worker {w} must store exactly c partitions");
            for &p in parts.iter() {
                workers[p].push(w);
            }
        }
        for list in &mut workers {
            list.sort_unstable();
        }
        Self {
            n,
            c,
            scheme,
            hr,
            partitions,
            workers,
        }
    }

    /// Number of workers (equal to the number of partitions).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of partitions stored per worker (the storage overhead factor).
    pub fn c(&self) -> usize {
        self.c
    }

    /// The placement family this instance belongs to.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// HR parameters, when the placement was built with [`Placement::hybrid`].
    pub fn hr_params(&self) -> Option<&HrParams> {
        self.hr.as_ref()
    }

    /// Sorted partitions stored on worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn partitions_of(&self, i: WorkerId) -> &[PartitionId] {
        &self.partitions[i]
    }

    /// Sorted workers storing partition `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n`.
    pub fn workers_of(&self, j: PartitionId) -> &[WorkerId] {
        &self.workers[j]
    }

    /// Returns `true` when workers `a` and `b` *conflict*, i.e. share at
    /// least one partition so their summed codewords cannot be added (§V-A).
    ///
    /// This is the ground-truth definition; the closed-form predicates
    /// (circulant distance for CR, Alg. 4 for HR) are validated against it.
    ///
    /// # Panics
    ///
    /// Panics if either index is `>= n`.
    pub fn conflicts(&self, a: WorkerId, b: WorkerId) -> bool {
        if a == b {
            return true;
        }
        // Merge-scan of two sorted partition lists.
        let (pa, pb) = (&self.partitions[a], &self.partitions[b]);
        let (mut i, mut j) = (0, 0);
        while i < pa.len() && j < pb.len() {
            match pa[i].cmp(&pb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

fn validate_common(n: usize, c: usize) -> Result<(), Error> {
    if n == 0 {
        return Err(Error::invalid("n must be positive"));
    }
    if c == 0 {
        return Err(Error::invalid("c must be positive"));
    }
    if c > n {
        return Err(Error::invalid(format!(
            "c must not exceed n, got n={n}, c={c}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Invariant shared by all schemes: `n` partitions, each stored on
    /// exactly `c` workers, each worker storing exactly `c` partitions.
    fn assert_balanced(p: &Placement) {
        for w in 0..p.n() {
            assert_eq!(p.partitions_of(w).len(), p.c(), "worker {w}");
        }
        for j in 0..p.n() {
            assert_eq!(p.workers_of(j).len(), p.c(), "partition {j}");
        }
        // Bidirectional consistency.
        for w in 0..p.n() {
            for &j in p.partitions_of(w) {
                assert!(p.workers_of(j).contains(&w));
            }
        }
    }

    #[test]
    fn fr_matches_paper_fig2a() {
        // n = 4, c = 2: W1,W2 hold {D1,D2}; W3,W4 hold {D3,D4} (0-indexed).
        let p = Placement::fractional(4, 2).unwrap();
        assert_eq!(p.partitions_of(0), &[0, 1]);
        assert_eq!(p.partitions_of(1), &[0, 1]);
        assert_eq!(p.partitions_of(2), &[2, 3]);
        assert_eq!(p.partitions_of(3), &[2, 3]);
        assert_balanced(&p);
        assert_eq!(p.scheme(), Scheme::Fractional);
    }

    #[test]
    fn cr_matches_paper_fig2b() {
        // n = 4, c = 2: worker i holds {i, i+1 mod 4}.
        let p = Placement::cyclic(4, 2).unwrap();
        assert_eq!(p.partitions_of(0), &[0, 1]);
        assert_eq!(p.partitions_of(1), &[1, 2]);
        assert_eq!(p.partitions_of(2), &[2, 3]);
        assert_eq!(p.partitions_of(3), &[0, 3]);
        assert_balanced(&p);
        assert_eq!(p.scheme(), Scheme::Cyclic);
    }

    #[test]
    fn balanced_for_many_parameters() {
        for n in 1..=12 {
            for c in 1..=n {
                let cr = Placement::cyclic(n, c).unwrap();
                assert_balanced(&cr);
                if n % c == 0 {
                    let fr = Placement::fractional(n, c).unwrap();
                    assert_balanced(&fr);
                }
            }
        }
    }

    #[test]
    fn fr_rejects_non_divisor() {
        assert!(matches!(
            Placement::fractional(4, 3),
            Err(Error::InvalidParameters { .. })
        ));
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Placement::cyclic(0, 1).is_err());
        assert!(Placement::cyclic(4, 0).is_err());
        assert!(Placement::cyclic(4, 5).is_err());
        assert!(Placement::fractional(0, 1).is_err());
    }

    #[test]
    fn c_equals_one_is_plain_partitioning() {
        // Paper: "When c = 1, the three placement schemes become the same."
        let fr = Placement::fractional(5, 1).unwrap();
        let cr = Placement::cyclic(5, 1).unwrap();
        for w in 0..5 {
            assert_eq!(fr.partitions_of(w), &[w]);
            assert_eq!(cr.partitions_of(w), &[w]);
        }
    }

    #[test]
    fn c_equals_n_stores_everything() {
        let p = Placement::cyclic(4, 4).unwrap();
        for w in 0..4 {
            assert_eq!(p.partitions_of(w), &[0, 1, 2, 3]);
        }
        assert_balanced(&p);
    }

    #[test]
    fn conflicts_is_symmetric_and_reflexive() {
        let p = Placement::cyclic(6, 3).unwrap();
        for a in 0..6 {
            assert!(p.conflicts(a, a));
            for b in 0..6 {
                assert_eq!(p.conflicts(a, b), p.conflicts(b, a));
            }
        }
    }

    #[test]
    fn conflicts_matches_fig3_example() {
        // Fig. 3: with CR(4, 2), W1 (holding D1,D2) conflicts with W2 and W4
        // but not W3.
        let p = Placement::cyclic(4, 2).unwrap();
        assert!(p.conflicts(0, 1));
        assert!(!p.conflicts(0, 2));
        assert!(p.conflicts(0, 3));
    }

    #[test]
    fn custom_placement_accepts_balanced_lists() {
        let p = Placement::custom(vec![vec![0, 2], vec![1, 3], vec![0, 3], vec![1, 2]]).unwrap();
        assert_eq!(p.scheme(), Scheme::Custom);
        assert_eq!(p.c(), 2);
        assert_eq!(p.partitions_of(2), &[0, 3]);
        assert_eq!(p.workers_of(0), &[0, 2]);
        assert!(p.conflicts(0, 2));
        assert!(!p.conflicts(0, 1));
    }

    #[test]
    fn custom_placement_can_replicate_cr() {
        let cr = Placement::cyclic(5, 2).unwrap();
        let lists: Vec<Vec<usize>> = (0..5).map(|w| cr.partitions_of(w).to_vec()).collect();
        let custom = Placement::custom(lists).unwrap();
        for w in 0..5 {
            assert_eq!(custom.partitions_of(w), cr.partitions_of(w));
        }
    }

    #[test]
    fn custom_placement_rejects_invalid_lists() {
        // Empty.
        assert!(Placement::custom(vec![]).is_err());
        // Worker with no partitions.
        assert!(Placement::custom(vec![vec![]]).is_err());
        // Ragged c.
        assert!(Placement::custom(vec![vec![0, 1], vec![0]]).is_err());
        // Duplicate partition on a worker.
        assert!(Placement::custom(vec![vec![0, 0], vec![1, 1]]).is_err());
        // Out-of-range partition id.
        assert!(Placement::custom(vec![vec![0, 5], vec![0, 1]]).is_err());
        // Unbalanced replication: partition 0 on both, partition 1 nowhere...
        assert!(Placement::custom(vec![vec![0, 1], vec![0, 1], vec![0, 1]]).is_err());
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::Fractional.to_string(), "FR");
        assert_eq!(Scheme::Cyclic.to_string(), "CR");
        assert_eq!(Scheme::Hybrid.to_string(), "HR");
        assert_eq!(Scheme::Custom.to_string(), "custom");
    }
}
