//! Classic gradient coding (paper §III; Tandon et al., ICML 2017).
//!
//! The baseline IS-GC is measured against: workers upload *coefficient-coded*
//! combinations of their partition gradients, chosen so that the exact full
//! gradient `g` is recoverable from **any** `n − c + 1` workers — and
//! nothing is recoverable from fewer. Two constructions are provided,
//! matching the paper's FR and CR placements.

use isgc_linalg::{solve_consistent, Matrix, Vector};
use rand::Rng;

use crate::{Error, Placement, WorkerId, WorkerSet};

/// Residual tolerance for accepting a decoding vector.
const DECODE_TOL: f64 = 1e-6;

/// A classic gradient code: a coefficient matrix `B ∈ R^{n×n}` whose row `i`
/// is supported on worker `i`'s partitions, built so the all-ones vector
/// lies in the row span of any `n − c + 1` rows.
///
/// # Examples
///
/// ```
/// use isgc_core::classic::ClassicGc;
/// use isgc_core::WorkerSet;
/// use isgc_linalg::Vector;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let gc = ClassicGc::cyclic(4, 2, &mut rng)?;
/// // Per-partition gradients (dimension 1 for brevity): g_j = j + 1.
/// let grads: Vec<Vector> = (0..4).map(|j| Vector::from_slice(&[j as f64 + 1.0])).collect();
/// let codewords: Vec<Vector> = (0..4).map(|w| gc.encode(w, &grads)).collect();
/// // Any 3 workers suffice to recover g = 1 + 2 + 3 + 4 = 10.
/// let avail = WorkerSet::from_indices(4, [0, 2, 3]);
/// let g = gc.recover(&avail, |w| codewords[w].clone(), 1)?;
/// assert!((g[0] - 10.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClassicGc {
    placement: Placement,
    b: Matrix,
}

impl ClassicGc {
    /// Builds the FR construction: each worker's codeword is the plain sum
    /// of its group's partition gradients (all coefficients 1), so any
    /// group representative contributes its group's slice of `g`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] under the same conditions as
    /// [`Placement::fractional`].
    pub fn fractional(n: usize, c: usize) -> Result<Self, Error> {
        let placement = Placement::fractional(n, c)?;
        let mut b = Matrix::zeros(n, n);
        for w in 0..n {
            for &j in placement.partitions_of(w) {
                b[(w, j)] = 1.0;
            }
        }
        Ok(Self { placement, b })
    }

    /// Builds the CR construction of Tandon et al. (their Algorithm 2):
    /// random coefficients on cyclic supports, chosen in the null space of a
    /// random `(c−1)×n` matrix `H` with zero row sums, which guarantees
    /// (with probability 1) that any `n − c + 1` rows span the all-ones
    /// vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] under the same conditions as
    /// [`Placement::cyclic`], or if the random `H` produced a singular
    /// sub-system (probability zero; retry with another seed).
    pub fn cyclic<R: Rng + ?Sized>(n: usize, c: usize, rng: &mut R) -> Result<Self, Error> {
        let placement = Placement::cyclic(n, c)?;
        let s = c - 1;
        let mut b = Matrix::zeros(n, n);
        if s == 0 {
            // No redundancy: B = I, plain synchronous SGD.
            for i in 0..n {
                b[(i, i)] = 1.0;
            }
            return Ok(Self { placement, b });
        }
        // H ∈ R^{s×n}: random, with the last column fixed so each row sums
        // to zero — this puts the all-ones vector in null(H).
        let mut h = Matrix::random_normal(s, n, 0.0, 1.0, rng);
        for r in 0..s {
            let sum: f64 = (0..n - 1).map(|j| h[(r, j)]).sum();
            h[(r, n - 1)] = -sum;
        }
        // Row i of B: support {i, …, i+s} (mod n), leading coefficient 1,
        // remaining s coefficients solve H · bᵢ = 0.
        for i in 0..n {
            let support: Vec<usize> = (0..c).map(|t| (i + t) % n).collect();
            let rhs = Vector::from_fn(s, |r| -h[(r, support[0])]);
            let sub = Matrix::from_fn(s, s, |r, k| h[(r, support[k + 1])]);
            let coeffs = isgc_linalg::lu_solve(&sub, &rhs).map_err(|e| {
                Error::invalid(format!("degenerate random H in Tandon construction: {e}"))
            })?;
            b[(i, support[0])] = 1.0;
            for k in 0..s {
                b[(i, support[k + 1])] = coeffs[k];
            }
        }
        Ok(Self { placement, b })
    }

    /// The placement underlying this code.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The coefficient matrix `B` (row `i` = worker `i`).
    pub fn coefficients(&self) -> &Matrix {
        &self.b
    }

    /// Minimum number of workers classic GC needs: `n − c + 1` (it tolerates
    /// at most `c − 1` stragglers).
    pub fn min_workers(&self) -> usize {
        self.placement.n() - self.placement.c() + 1
    }

    /// Encodes worker `worker`'s codeword `Σ_j B[w][j] · g_j` from the full
    /// list of per-partition gradients (only the worker's own partitions are
    /// read).
    ///
    /// # Panics
    ///
    /// Panics if `gradients.len() != n`, dimensions are inconsistent, or
    /// `worker >= n`.
    pub fn encode(&self, worker: WorkerId, gradients: &[Vector]) -> Vector {
        let n = self.placement.n();
        assert_eq!(gradients.len(), n, "need all {n} partition gradients");
        let dim = gradients[0].len();
        let mut out = Vector::zeros(dim);
        for &j in self.placement.partitions_of(worker) {
            out.axpy(self.b[(worker, j)], &gradients[j]);
        }
        out
    }

    /// Computes the decoding vector `a` with `aᵀ B_{W'} = 1ᵀ`, i.e. the
    /// combination of available codewords that reconstructs the exact full
    /// gradient.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyStragglers`] when the all-ones vector is not
    /// in the span of the available rows — by construction, exactly when
    /// fewer than `n − c + 1` workers are available.
    pub fn decoding_vector(&self, available: &WorkerSet) -> Result<Vec<(WorkerId, f64)>, Error> {
        let n = self.placement.n();
        assert_eq!(available.universe(), n, "worker set universe mismatch");
        let workers = available.to_vec();
        if workers.is_empty() {
            return Err(Error::TooManyStragglers {
                available: 0,
                required: self.min_workers(),
            });
        }
        // Solve the consistent system Bᵀ_{W'} a = 1 exactly; inconsistency
        // means the all-ones vector is outside the span, i.e. too many
        // stragglers.
        let bt = self.b.select_rows(&workers).transposed(); // n × |W'|
        let ones = Vector::filled(n, 1.0);
        let a = solve_consistent(&bt, &ones).map_err(|_| Error::TooManyStragglers {
            available: workers.len(),
            required: self.min_workers(),
        })?;
        let residual = (&bt.matvec(&a) - &ones).norm_inf();
        if residual > DECODE_TOL {
            return Err(Error::TooManyStragglers {
                available: workers.len(),
                required: self.min_workers(),
            });
        }
        Ok(workers.into_iter().zip(a.into_vec()).collect())
    }

    /// Recovers the exact full gradient `g = Σ_j g_j` from the available
    /// codewords.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyStragglers`] when decoding is impossible (see
    /// [`ClassicGc::decoding_vector`]).
    ///
    /// # Panics
    ///
    /// Panics if a codeword's dimension differs from `dim`.
    pub fn recover(
        &self,
        available: &WorkerSet,
        mut codewords: impl FnMut(WorkerId) -> Vector,
        dim: usize,
    ) -> Result<Vector, Error> {
        let decoding = self.decoding_vector(available)?;
        let mut g = Vector::zeros(dim);
        for (w, coeff) in decoding {
            let cw = codewords(w);
            assert_eq!(cw.len(), dim, "codeword of worker {w} has wrong dimension");
            g.axpy(coeff, &cw);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn partition_gradients(n: usize, dim: usize) -> Vec<Vector> {
        (0..n)
            .map(|j| Vector::from_fn(dim, |d| (j * dim + d) as f64 + 1.0))
            .collect()
    }

    fn full_gradient(grads: &[Vector]) -> Vector {
        let mut g = Vector::zeros(grads[0].len());
        for gj in grads {
            g.axpy(1.0, gj);
        }
        g
    }

    #[test]
    fn b_rows_have_cyclic_support() {
        let mut rng = StdRng::seed_from_u64(0);
        let gc = ClassicGc::cyclic(6, 3, &mut rng).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let on_support = (0..3).any(|t| (i + t) % 6 == j);
                if !on_support {
                    assert_eq!(gc.coefficients()[(i, j)], 0.0, "B[{i}][{j}]");
                }
            }
        }
    }

    #[test]
    fn cyclic_recovers_from_any_minimal_subset() {
        let mut rng = StdRng::seed_from_u64(42);
        for (n, c) in [(4usize, 2usize), (5, 2), (6, 3), (7, 3), (8, 4)] {
            let gc = ClassicGc::cyclic(n, c, &mut rng).unwrap();
            let grads = partition_gradients(n, 2);
            let codewords: Vec<Vector> = (0..n).map(|w| gc.encode(w, &grads)).collect();
            let expected = full_gradient(&grads);
            let k = n - c + 1;
            assert_eq!(gc.min_workers(), k);
            // All subsets of size exactly k.
            for mask in 0u32..(1 << n) {
                if (mask.count_ones() as usize) != k {
                    continue;
                }
                let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                let g = gc
                    .recover(&avail, |w| codewords[w].clone(), 2)
                    .unwrap_or_else(|e| panic!("n={n}, c={c}, mask={mask:b}: {e}"));
                assert!(
                    (&g - &expected).norm_inf() < 1e-6,
                    "n={n}, c={c}, mask={mask:b}"
                );
            }
        }
    }

    #[test]
    fn cyclic_fails_with_too_many_stragglers() {
        let mut rng = StdRng::seed_from_u64(7);
        let gc = ClassicGc::cyclic(6, 2, &mut rng).unwrap();
        // Only 4 < n - c + 1 = 5 workers: must fail for every such subset.
        for mask in 0u32..(1 << 6) {
            if (mask.count_ones() as usize) != 4 {
                continue;
            }
            let avail = WorkerSet::from_indices(6, (0..6).filter(|&i| mask & (1 << i) != 0));
            assert!(matches!(
                gc.decoding_vector(&avail),
                Err(Error::TooManyStragglers { .. })
            ));
        }
    }

    #[test]
    fn fractional_recovers_with_group_coverage() {
        let gc = ClassicGc::fractional(6, 2).unwrap();
        let grads = partition_gradients(6, 3);
        let codewords: Vec<Vector> = (0..6).map(|w| gc.encode(w, &grads)).collect();
        let expected = full_gradient(&grads);
        // One worker from each group {0,1}, {2,3}, {4,5}.
        let avail = WorkerSet::from_indices(6, [1, 2, 5]);
        let g = gc.recover(&avail, |w| codewords[w].clone(), 3).unwrap();
        assert!((&g - &expected).norm_inf() < 1e-6);
        // All subsets of size n - c + 1 = 5 cover every group (pigeonhole).
        for mask in 0u32..(1 << 6) {
            if (mask.count_ones() as usize) != 5 {
                continue;
            }
            let avail = WorkerSet::from_indices(6, (0..6).filter(|&i| mask & (1 << i) != 0));
            let g = gc.recover(&avail, |w| codewords[w].clone(), 3).unwrap();
            assert!((&g - &expected).norm_inf() < 1e-6, "mask={mask:b}");
        }
    }

    #[test]
    fn fractional_fails_when_a_group_is_dark() {
        let gc = ClassicGc::fractional(4, 2).unwrap();
        // Both available workers in group 0; group 1's partitions are lost.
        let avail = WorkerSet::from_indices(4, [0, 1]);
        assert!(matches!(
            gc.decoding_vector(&avail),
            Err(Error::TooManyStragglers { .. })
        ));
    }

    #[test]
    fn c_equals_one_is_synchronous_sgd() {
        let mut rng = StdRng::seed_from_u64(3);
        let gc = ClassicGc::cyclic(4, 1, &mut rng).unwrap();
        assert_eq!(gc.min_workers(), 4);
        let grads = partition_gradients(4, 1);
        let codewords: Vec<Vector> = (0..4).map(|w| gc.encode(w, &grads)).collect();
        // All workers needed.
        let g = gc
            .recover(&WorkerSet::full(4), |w| codewords[w].clone(), 1)
            .unwrap();
        assert!((&g - &full_gradient(&grads)).norm_inf() < 1e-9);
        assert!(gc
            .decoding_vector(&WorkerSet::from_indices(4, [0, 1, 2]))
            .is_err());
    }

    #[test]
    fn empty_availability_fails_cleanly() {
        let gc = ClassicGc::fractional(4, 2).unwrap();
        assert!(matches!(
            gc.decoding_vector(&WorkerSet::empty(4)),
            Err(Error::TooManyStragglers {
                available: 0,
                required: 3
            })
        ));
    }

    #[test]
    fn extra_workers_beyond_minimum_still_decode() {
        let mut rng = StdRng::seed_from_u64(11);
        let gc = ClassicGc::cyclic(6, 3, &mut rng).unwrap();
        let grads = partition_gradients(6, 2);
        let codewords: Vec<Vector> = (0..6).map(|w| gc.encode(w, &grads)).collect();
        let g = gc
            .recover(&WorkerSet::full(6), |w| codewords[w].clone(), 2)
            .unwrap();
        assert!((&g - &full_gradient(&grads)).norm_inf() < 1e-6);
    }

    #[test]
    fn paper_fig1b_style_identity() {
        // Fig. 1(b): with n=4, c=2, any 3 codewords combine to g.
        let mut rng = StdRng::seed_from_u64(1);
        let gc = ClassicGc::cyclic(4, 2, &mut rng).unwrap();
        let grads = partition_gradients(4, 1);
        let codewords: Vec<Vector> = (0..4).map(|w| gc.encode(w, &grads)).collect();
        let avail = WorkerSet::from_indices(4, [0, 2, 3]); // W2 straggles
        let g = gc.recover(&avail, |w| codewords[w].clone(), 1).unwrap();
        assert!((g[0] - full_gradient(&grads)[0]).abs() < 1e-6);
    }
}
