//! Approximate decoding below the Theorem 10 floor.
//!
//! The paper's decoders are exact: they select a maximum independent set of
//! the conflict graph and recover each covered partition's gradient once.
//! When the arrival set is so thin that even the optimal selection recovers
//! fewer partitions than a caller's coverage floor — or nothing at all — the
//! approximate-GC literature (Bitar et al., "Stochastic Gradient Coding for
//! Straggler Mitigation", 1905.05383; Glasgow–Wootters, 2006.09638) shows a
//! *bias-corrected partial estimate* of the full gradient is enough to keep
//! SGD converging.
//!
//! [`ApproxDecoder`] wraps the placement's exact decoder: it selects the
//! same maximal conflict-free sub-collection the exact path would, and
//! additionally produces an [`ApproxReport`] describing the partial
//! estimate — which partitions are covered, how many replicas of each
//! arrived, and the normalization weights that make the partial sum an
//! unbiased estimate of the full-gradient sum under uniform coverage:
//! with `S` the covered partitions out of `k`, the corrected estimate is
//! `(k/|S|) · Σ_{p∈S} ḡ_p`, whose expectation over a uniformly random
//! covered set equals the exact sum `Σ_{p∈[k]} ḡ_p`.

use rand::RngCore;

use super::{decoder_for, Decoder};
use crate::{Error, PartitionId, Placement, WorkerId, WorkerSet};

/// The partial-estimate description produced by [`ApproxDecoder`]: what a
/// degraded step can still recover, and how to weight it.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxReport {
    /// The conflict-free sub-collection of arrived workers whose codewords
    /// are summed (sorted; the same selection the exact decoder makes).
    pub selected: Vec<WorkerId>,
    /// Partitions covered by `selected`, sorted; each appears exactly once
    /// in the partial sum because the selection is conflict-free.
    pub covered: Vec<PartitionId>,
    /// `multiplicity[i]` = how many *arrived* workers hold `covered[i]`,
    /// counting replicas the conflict-free selection had to ignore. A
    /// multiplicity above 1 means redundancy arrived but could not raise
    /// coverage.
    pub multiplicity: Vec<usize>,
    /// Per-covered-partition bias-correction weight, `k / |covered|`:
    /// scaling each covered partition's mean gradient by this makes the
    /// partial sum an unbiased estimate of the full `k`-partition sum
    /// under uniform coverage (all weights are equal because the selection
    /// is conflict-free — each covered partition contributes exactly once).
    pub weights: Vec<f64>,
    /// Fraction of partitions covered, `|covered| / k` in `[0, 1]`.
    pub coverage: f64,
    /// The scalar applied to the summed partial gradient: `k / |covered|`,
    /// or `0.0` when nothing was covered (no estimate exists).
    pub bias_weight: f64,
}

impl ApproxReport {
    /// An empty report: nothing arrived, nothing covered, no estimate.
    pub fn empty() -> Self {
        ApproxReport {
            selected: Vec::new(),
            covered: Vec::new(),
            multiplicity: Vec::new(),
            weights: Vec::new(),
            coverage: 0.0,
            bias_weight: 0.0,
        }
    }

    /// Number of partitions covered by the partial estimate.
    pub fn covered_count(&self) -> usize {
        self.covered.len()
    }

    /// Whether any estimate exists at all.
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }
}

/// Wraps a placement's exact decoder with partial-estimate accounting for
/// steps below the coverage floor (see the module docs).
pub struct ApproxDecoder {
    placement: Placement,
    inner: Box<dyn Decoder>,
}

impl ApproxDecoder {
    /// Builds the approximate decoder on top of the placement's scheme
    /// decoder (Alg. 1/2/3–4, or the exact MIS oracle for custom layouts).
    ///
    /// # Errors
    ///
    /// Propagates the scheme decoder's construction errors.
    pub fn new(placement: &Placement) -> Result<Self, Error> {
        Ok(ApproxDecoder {
            placement: placement.clone(),
            inner: decoder_for(placement)?,
        })
    }

    /// The number of workers (and partitions) this decoder was built for.
    pub fn n(&self) -> usize {
        self.placement.n()
    }

    /// Decodes one degraded step: the exact decoder picks the maximal
    /// conflict-free sub-collection, and the report adds the coverage,
    /// multiplicity, and bias-correction accounting.
    ///
    /// Randomness only affects *which* maximum independent set is selected,
    /// exactly as in the underlying decoder — coverage and weights are
    /// invariant across equally-sized selections of an FR placement, and
    /// deterministic given the RNG stream for CR/HR.
    pub fn decode(&self, available: &WorkerSet, rng: &mut dyn RngCore) -> ApproxReport {
        let selected = self.inner.decode(available, rng).selected().to_vec();
        self.report_for(available, &selected)
    }

    /// Builds the [`ApproxReport`] for an already-chosen conflict-free
    /// selection — the path the step engine uses, since it has already run
    /// its own decode with the canonical per-step RNG. Deterministic: no
    /// randomness is consumed.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `selected` covers a partition twice
    /// (the selection must be conflict-free, as all in-tree decoders
    /// guarantee).
    pub fn report_for(&self, available: &WorkerSet, selected: &[WorkerId]) -> ApproxReport {
        let k = self.placement.n();
        let mut selected: Vec<WorkerId> = selected.to_vec();
        selected.sort_unstable();
        let mut covered: Vec<PartitionId> = selected
            .iter()
            .flat_map(|&w| self.placement.partitions_of(w).iter().copied())
            .collect();
        covered.sort_unstable();
        debug_assert!(
            covered.windows(2).all(|p| p[0] != p[1]),
            "approx selection must be conflict-free, got {selected:?}"
        );
        if covered.is_empty() {
            return ApproxReport::empty();
        }
        // Replica accounting over the *whole* arrival set: how many copies
        // of each covered partition reached the master, selected or not.
        let multiplicity = covered
            .iter()
            .map(|&p| {
                available
                    .iter()
                    .filter(|&w| self.placement.partitions_of(w).contains(&p))
                    .count()
            })
            .collect();
        let bias_weight = k as f64 / covered.len() as f64;
        ApproxReport {
            weights: vec![bias_weight; covered.len()],
            coverage: covered.len() as f64 / k as f64,
            bias_weight,
            selected,
            covered,
            multiplicity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn full_arrival_covers_everything_with_unit_bias() {
        let p = Placement::fractional(6, 2).unwrap();
        let d = ApproxDecoder::new(&p).unwrap();
        let r = d.decode(&WorkerSet::full(6), &mut rng());
        assert_eq!(r.covered, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.coverage, 1.0);
        assert_eq!(r.bias_weight, 1.0);
        assert_eq!(r.weights, vec![1.0; 6]);
        // Every partition has both FR replicas in the arrival set.
        assert_eq!(r.multiplicity, vec![2; 6]);
        assert!(!r.is_empty());
    }

    #[test]
    fn single_arrival_yields_partial_estimate_with_corrected_bias() {
        // FR(6,2): worker 0 holds partitions {0,1}; alone it covers 2 of 6.
        let p = Placement::fractional(6, 2).unwrap();
        let d = ApproxDecoder::new(&p).unwrap();
        let r = d.decode(&WorkerSet::from_indices(6, [0]), &mut rng());
        assert_eq!(r.selected, vec![0]);
        assert_eq!(r.covered, p.partitions_of(0).to_vec());
        assert_eq!(r.covered_count(), 2);
        assert!((r.coverage - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(r.bias_weight, 3.0);
        assert_eq!(r.weights, vec![3.0, 3.0]);
        assert_eq!(r.multiplicity, vec![1, 1]);
    }

    #[test]
    fn multiplicity_counts_unselected_replicas() {
        // FR(6,2): workers 0 and 1 mirror partitions {0,1}. Only one can be
        // selected (they conflict), but both replicas arrived.
        let p = Placement::fractional(6, 2).unwrap();
        let d = ApproxDecoder::new(&p).unwrap();
        let r = d.decode(&WorkerSet::from_indices(6, [0, 1]), &mut rng());
        assert_eq!(r.selected.len(), 1);
        assert_eq!(r.covered_count(), 2);
        assert_eq!(r.multiplicity, vec![2, 2]);
        assert_eq!(r.bias_weight, 3.0);
    }

    #[test]
    fn empty_arrival_yields_empty_report() {
        let p = Placement::fractional(4, 2).unwrap();
        let d = ApproxDecoder::new(&p).unwrap();
        let r = d.decode(&WorkerSet::empty(4), &mut rng());
        assert_eq!(r, ApproxReport::empty());
        assert!(r.is_empty());
        assert_eq!(r.bias_weight, 0.0);
        assert_eq!(r.coverage, 0.0);
    }

    #[test]
    fn report_for_matches_decode_and_is_deterministic() {
        let p = Placement::cyclic(7, 3).unwrap();
        let d = ApproxDecoder::new(&p).unwrap();
        let avail = WorkerSet::from_indices(7, [0, 1, 4, 5]);
        let via_decode = d.decode(&avail, &mut rng());
        let via_report = d.report_for(&avail, &via_decode.selected);
        assert_eq!(via_decode, via_report);
        assert_eq!(via_report, d.report_for(&avail, &via_decode.selected));
    }

    #[test]
    fn bias_weight_times_coverage_is_one() {
        // The correction exactly cancels the coverage deficit, whatever the
        // placement family.
        for p in [
            Placement::fractional(8, 2).unwrap(),
            Placement::cyclic(9, 3).unwrap(),
        ] {
            let d = ApproxDecoder::new(&p).unwrap();
            for upto in 1..p.n() {
                let r = d.decode(&WorkerSet::from_indices(p.n(), 0..upto), &mut rng());
                if !r.is_empty() {
                    assert!((r.bias_weight * r.coverage - 1.0).abs() < 1e-12);
                }
            }
        }
    }
}
