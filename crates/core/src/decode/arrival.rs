//! Arrival-order greedy decoder (the strawman of paper Fig. 3).

use rand::seq::SliceRandom;
use rand::RngCore;

use crate::decode::{assert_universe, DecodeResult, Decoder};
use crate::{ConflictGraph, Placement, WorkerId, WorkerSet};

/// The naive decoder the paper argues against (Fig. 3): accept each coded
/// gradient *in arrival order* if it does not conflict with those already
/// accepted.
///
/// This yields a *maximal* independent set but not necessarily a *maximum*
/// one — e.g. in `CR(4, 2)` accepting worker 1 first forfeits the pair
/// `{0, 2}`. Kept as an ablation baseline to quantify the value of the
/// paper's optimal decoders.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::ArrivalOrderDecoder;
/// use isgc_core::Placement;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(4, 2)?;
/// let d = ArrivalOrderDecoder::new(&p);
/// // Worker 1 arrives first and blocks both its neighbors.
/// let r = d.decode_in_order(&[1, 0, 2]);
/// assert_eq!(r.selected(), &[1]);
/// // The reverse order happens to find the maximum.
/// let r = d.decode_in_order(&[0, 2, 1]);
/// assert_eq!(r.selected(), &[0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalOrderDecoder {
    placement: Placement,
    graph: ConflictGraph,
}

impl ArrivalOrderDecoder {
    /// Creates the greedy decoder for any placement.
    pub fn new(placement: &Placement) -> Self {
        Self {
            placement: placement.clone(),
            graph: ConflictGraph::from_placement(placement),
        }
    }

    /// Decodes with an explicit arrival sequence: workers are considered in
    /// the order given and kept when conflict-free with all kept so far.
    ///
    /// Duplicate entries are ignored after their first occurrence.
    ///
    /// # Panics
    ///
    /// Panics if any worker index is `>= n`.
    pub fn decode_in_order(&self, order: &[WorkerId]) -> DecodeResult {
        let n = self.placement.n();
        let mut blocked = WorkerSet::empty(n);
        let mut taken = WorkerSet::empty(n);
        let mut selected = Vec::new();
        for &w in order {
            assert!(w < n, "worker {w} out of range");
            if !blocked.contains(w) && !taken.contains(w) {
                taken.insert(w);
                blocked = blocked.union(self.graph.neighbors(w));
                selected.push(w);
            }
        }
        DecodeResult::from_selected(&self.placement, selected)
    }
}

impl Decoder for ArrivalOrderDecoder {
    fn n(&self) -> usize {
        self.placement.n()
    }

    /// Decodes the available set in a uniformly random arrival order —
    /// modelling i.i.d. worker speeds when only the set (not the sequence)
    /// is known.
    fn decode(&self, available: &WorkerSet, rng: &mut dyn RngCore) -> DecodeResult {
        assert_universe(self.n(), available);
        let mut order = available.to_vec();
        order.shuffle(rng);
        self.decode_in_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig3_suboptimality_reproduced() {
        // Fig. 3(a): receiving W1 first (0-indexed worker 0) blocks adding
        // the later arrivals 3 and 2... paper's exact scenario: g1+g2 from
        // W1 conflicts with both g4+g1 (W4) and g2+g3 (W2).
        let p = Placement::cyclic(4, 2).unwrap();
        let d = ArrivalOrderDecoder::new(&p);
        let r = d.decode_in_order(&[0, 1, 3]);
        assert_eq!(r.selected(), &[0]); // 1 and 3 both conflict with 0
                                        // The optimal choice from {0,1,3} ignores 0 and takes {1, 3}.
        let r = d.decode_in_order(&[1, 3, 0]);
        assert_eq!(r.selected(), &[1, 3]);
    }

    #[test]
    fn result_is_always_maximal() {
        // No available worker can be added to the returned set.
        let p = Placement::cyclic(7, 3).unwrap();
        let d = ArrivalOrderDecoder::new(&p);
        let g = ConflictGraph::from_placement(&p);
        let mut rng = StdRng::seed_from_u64(4);
        for mask in 0u32..(1 << 7) {
            let avail = WorkerSet::from_indices(7, (0..7).filter(|&i| mask & (1 << i) != 0));
            let r = d.decode(&avail, &mut rng);
            assert!(g.is_independent(r.selected()));
            for v in avail.iter() {
                if !r.selected().contains(&v) {
                    let mut extended = r.selected().to_vec();
                    extended.push(v);
                    assert!(
                        !g.is_independent(&extended),
                        "mask={mask:b}: {v} could extend {:?}",
                        r.selected()
                    );
                }
            }
        }
    }

    #[test]
    fn duplicates_in_order_are_ignored() {
        let p = Placement::cyclic(6, 2).unwrap();
        let d = ArrivalOrderDecoder::new(&p);
        let r = d.decode_in_order(&[0, 0, 2, 2, 4]);
        assert_eq!(r.selected(), &[0, 2, 4]);
    }

    #[test]
    fn never_better_than_exact() {
        use crate::decode::ExactDecoder;
        let p = Placement::cyclic(8, 3).unwrap();
        let greedy = ArrivalOrderDecoder::new(&p);
        let exact = ExactDecoder::new(&p);
        let mut rng = StdRng::seed_from_u64(8);
        for mask in 0u32..(1 << 8) {
            let avail = WorkerSet::from_indices(8, (0..8).filter(|&i| mask & (1 << i) != 0));
            let g = greedy.decode(&avail, &mut rng);
            let e = exact.decode(&avail, &mut rng);
            assert!(g.selected().len() <= e.selected().len());
        }
    }
}
