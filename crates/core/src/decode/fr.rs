//! The FR decoder (paper Algorithm 1).

use rand::RngCore;

use crate::decode::{assert_universe, DecodeResult, Decoder};
use crate::{Error, Placement, Scheme, WorkerSet};

/// `Decode()` for fractional repetition (paper Alg. 1).
///
/// Workers of the same group store identical partitions, so exactly one
/// worker per *surviving* group (a group with ≥ 1 available worker) can join
/// `I`; the representative is chosen uniformly at random so every worker —
/// hence every partition — has an equal chance of contributing to `ĝ`.
///
/// Complexity: `O(|W'|)`.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::{Decoder, FrDecoder};
/// use isgc_core::{Placement, WorkerSet};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::fractional(6, 2)?;
/// let d = FrDecoder::new(&p)?;
/// // Groups {0,1}, {2,3}, {4,5}; workers 1, 2, 3 available.
/// let r = d.decode(
///     &WorkerSet::from_indices(6, [1, 2, 3]),
///     &mut StdRng::seed_from_u64(0),
/// );
/// // One of {2,3} plus worker 1: two groups survive, 4 partitions recovered.
/// assert_eq!(r.selected().len(), 2);
/// assert_eq!(r.recovered_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FrDecoder {
    placement: Placement,
}

impl FrDecoder {
    /// Creates a decoder for a fractional-repetition placement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] if `placement` is not FR.
    pub fn new(placement: &Placement) -> Result<Self, Error> {
        if placement.scheme() != Scheme::Fractional {
            return Err(Error::invalid(format!(
                "FrDecoder requires an FR placement, got {}",
                placement.scheme()
            )));
        }
        Ok(Self {
            placement: placement.clone(),
        })
    }
}

impl Decoder for FrDecoder {
    fn n(&self) -> usize {
        self.placement.n()
    }

    fn decode(&self, available: &WorkerSet, rng: &mut dyn RngCore) -> DecodeResult {
        assert_universe(self.n(), available);
        let (n, c) = (self.placement.n(), self.placement.c());
        // One RNG draw per decode, then a per-group hash: group `g`'s
        // representative depends only on `(base, g)` and the group's own
        // survivors, never on the other groups. A sub-master decoding just
        // its shard of groups (with the same seed-derived RNG) therefore
        // picks exactly the representatives the flat decoder would — the
        // decomposability that 2-level hierarchical aggregation relies on.
        // A streamed `choose(rng)` per group would break this: the RNG
        // position at group `g` would depend on how many earlier groups
        // survived.
        let base = rng.next_u64();
        let mut selected = Vec::with_capacity(n / c);
        for group in 0..n / c {
            let members = WorkerSet::from_indices(n, group * c..(group + 1) * c);
            let survivors = available.intersection(&members).to_vec();
            if !survivors.is_empty() {
                let pick = splitmix64(base ^ group as u64) as usize % survivors.len();
                selected.push(survivors[pick]);
            }
        }
        DecodeResult::from_selected(&self.placement, selected)
    }
}

/// SplitMix64 finalizer: decorrelates the per-group pick from the group
/// index so neighbouring groups don't share low-bit patterns.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_fr_placement() {
        let cr = Placement::cyclic(4, 2).unwrap();
        assert!(FrDecoder::new(&cr).is_err());
    }

    #[test]
    fn one_representative_per_surviving_group() {
        let p = Placement::fractional(8, 2).unwrap();
        let d = FrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Groups: {0,1}, {2,3}, {4,5}, {6,7}. Available: 0, 1, 4.
        let r = d.decode(&WorkerSet::from_indices(8, [0, 1, 4]), &mut rng);
        assert_eq!(r.selected().len(), 2);
        assert!(r.selected().contains(&4));
        assert!(r.selected().contains(&0) ^ r.selected().contains(&1));
        assert_eq!(r.recovered_count(), 4);
    }

    #[test]
    fn empty_availability_recovers_nothing() {
        let p = Placement::fractional(4, 2).unwrap();
        let d = FrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r = d.decode(&WorkerSet::empty(4), &mut rng);
        assert!(r.is_empty());
    }

    #[test]
    fn full_availability_recovers_everything() {
        let p = Placement::fractional(6, 3).unwrap();
        let d = FrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r = d.decode(&WorkerSet::full(6), &mut rng);
        assert_eq!(r.selected().len(), 2);
        assert_eq!(r.partitions(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn always_optimal_exhaustively() {
        // Alg. 1 must return a *maximum* independent set for every subset.
        for (n, c) in [(4usize, 2usize), (6, 2), (6, 3), (8, 4)] {
            let p = Placement::fractional(n, c).unwrap();
            let d = FrDecoder::new(&p).unwrap();
            let g = ConflictGraph::from_placement(&p);
            let mut rng = StdRng::seed_from_u64(7);
            for mask in 0u32..(1 << n) {
                let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                let r = d.decode(&avail, &mut rng);
                assert!(g.is_independent(r.selected()));
                assert_eq!(
                    r.selected().len(),
                    g.alpha(&avail),
                    "n={n}, c={c}, mask={mask:b}"
                );
            }
        }
    }

    #[test]
    fn representative_choice_is_uniform() {
        let p = Placement::fractional(4, 2).unwrap();
        let d = FrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let avail = WorkerSet::full(4);
        let trials = 4000;
        let mut count0 = 0usize;
        for _ in 0..trials {
            let r = d.decode(&avail, &mut rng);
            if r.selected().contains(&0) {
                count0 += 1;
            }
        }
        let freq = count0 as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.05, "freq={freq}");
    }

    #[test]
    fn decode_decomposes_over_group_aligned_shards() {
        // Sub-masters decode only their shard's groups; with the same RNG
        // seed, the union of shard decodes must equal the flat decode.
        let (n, c) = (16usize, 2usize);
        let p = Placement::fractional(n, c).unwrap();
        let d = FrDecoder::new(&p).unwrap();
        for seed in 0..20u64 {
            for mask in [0xFFFFu32, 0xA5C3, 0x0F0F, 0x1234, 0xFFFE, 0x8001] {
                let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                let flat = d
                    .decode(&avail, &mut StdRng::seed_from_u64(seed))
                    .selected()
                    .to_vec();
                let mut union = Vec::new();
                for (lo, hi) in [(0usize, 8usize), (8, 16)] {
                    let shard = WorkerSet::from_indices(n, lo..hi);
                    let r = d.decode(
                        &avail.intersection(&shard),
                        &mut StdRng::seed_from_u64(seed),
                    );
                    union.extend_from_slice(r.selected());
                }
                union.sort_unstable();
                assert_eq!(union, flat, "seed={seed}, mask={mask:x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn universe_mismatch_panics() {
        let p = Placement::fractional(4, 2).unwrap();
        let d = FrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = d.decode(&WorkerSet::empty(5), &mut rng);
    }
}
