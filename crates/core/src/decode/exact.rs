//! Exact maximum-independent-set decoder (reference oracle).

use std::fmt;
use std::time::{Duration, Instant};

use rand::RngCore;

use crate::decode::{assert_universe, DecodeResult, Decoder};
use crate::{ConflictGraph, Placement, WorkerSet};

/// The exact oracle's branch-and-bound exceeded its wall-clock budget.
///
/// Returned by [`ExactDecoder::decode_within`] instead of a possibly
/// non-maximum set; callers that used to silently skip the oracle above an
/// arbitrary size cutoff can now run it with a budget and report this typed
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleTimeout {
    /// The budget the search was given before it was cut off.
    pub budget: Duration,
}

impl fmt::Display for OracleTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact-MIS oracle exceeded its {:?} budget before completing",
            self.budget
        )
    }
}

impl std::error::Error for OracleTimeout {}

/// A decoder that computes the exact maximum independent set by
/// branch-and-bound, for *any* placement.
///
/// Exponential in the worst case; used as the correctness oracle for the
/// paper's linear-time decoders and as the decoder for ad-hoc placements
/// that have no specialized algorithm. Deterministic: the `rng` argument is
/// unused.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::{Decoder, ExactDecoder};
/// use isgc_core::{Placement, WorkerSet};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(6, 2)?;
/// let d = ExactDecoder::new(&p);
/// let r = d.decode(&WorkerSet::full(6), &mut StdRng::seed_from_u64(0));
/// assert_eq!(r.selected().len(), 3); // n/c = 3 non-conflicting workers
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExactDecoder {
    placement: Placement,
    graph: ConflictGraph,
    budget: Option<Duration>,
}

impl ExactDecoder {
    /// Creates the oracle decoder for any placement.
    pub fn new(placement: &Placement) -> Self {
        Self {
            placement: placement.clone(),
            graph: ConflictGraph::from_placement(placement),
            budget: None,
        }
    }

    /// Creates the oracle with a wall-clock budget for each decode.
    ///
    /// [`ExactDecoder::decode_within`] aborts the branch-and-bound once the
    /// budget elapses and returns [`OracleTimeout`] instead of a possibly
    /// non-maximum selection. The [`Decoder::decode`] trait path ignores the
    /// budget and always runs to completion (it has no error channel).
    pub fn with_budget(placement: &Placement, budget: Duration) -> Self {
        Self {
            budget: Some(budget),
            ..Self::new(placement)
        }
    }

    /// The configured per-decode budget, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Decodes one step under the configured budget.
    ///
    /// Without a budget (constructed via [`ExactDecoder::new`]) this is
    /// identical to [`Decoder::decode`] and never fails.
    ///
    /// # Errors
    ///
    /// [`OracleTimeout`] when the branch-and-bound did not finish within the
    /// budget; no partial result is returned because an interrupted search
    /// cannot certify maximality.
    ///
    /// # Panics
    ///
    /// Panics if `available.universe() != self.n()`.
    pub fn decode_within(&self, available: &WorkerSet) -> Result<DecodeResult, OracleTimeout> {
        assert_universe(self.n(), available);
        let deadline = self.budget.map(|b| Instant::now() + b);
        match self.graph.max_independent_set_within(available, deadline) {
            Some(selected) => Ok(DecodeResult::from_selected(&self.placement, selected)),
            None => Err(OracleTimeout {
                budget: self.budget.unwrap_or(Duration::ZERO),
            }),
        }
    }

    /// The underlying conflict graph.
    pub fn graph(&self) -> &ConflictGraph {
        &self.graph
    }
}

impl Decoder for ExactDecoder {
    fn n(&self) -> usize {
        self.placement.n()
    }

    fn decode(&self, available: &WorkerSet, _rng: &mut dyn RngCore) -> DecodeResult {
        assert_universe(self.n(), available);
        let selected = self.graph.max_independent_set(available);
        DecodeResult::from_selected(&self.placement, selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HrParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_fr_equals_group_count() {
        let p = Placement::fractional(8, 2).unwrap();
        let d = ExactDecoder::new(&p);
        let mut rng = StdRng::seed_from_u64(0);
        let r = d.decode(&WorkerSet::full(8), &mut rng);
        assert_eq!(r.selected().len(), 4);
        assert_eq!(r.recovered_count(), 8);
    }

    #[test]
    fn works_on_hybrid() {
        let p = Placement::hybrid(HrParams::new(8, 2, 2, 2)).unwrap();
        let d = ExactDecoder::new(&p);
        let mut rng = StdRng::seed_from_u64(0);
        let r = d.decode(&WorkerSet::full(8), &mut rng);
        assert_eq!(r.selected().len(), 2); // floor(n/c) = 2
        assert!(d.graph().is_independent(r.selected()));
    }

    #[test]
    fn decode_within_matches_unbudgeted_decode() {
        let p = Placement::cyclic(9, 3).unwrap();
        let generous = ExactDecoder::with_budget(&p, std::time::Duration::from_secs(30));
        let avail = WorkerSet::from_indices(9, [0, 2, 4, 5, 8]);
        let budgeted = generous.decode_within(&avail).unwrap();
        let exact = ExactDecoder::new(&p).decode(&avail, &mut StdRng::seed_from_u64(0));
        assert_eq!(budgeted, exact);
        // An unbudgeted decoder's decode_within also never times out.
        assert!(ExactDecoder::new(&p).decode_within(&avail).is_ok());
    }

    #[test]
    fn zero_budget_times_out_on_a_hard_graph() {
        // A scrambled balanced placement (three affine permutations of the
        // partitions, so each partition is stored by exactly c = 3 workers)
        // whose conflict graph is unstructured enough that the search needs
        // well over the 256 nodes between deadline checks.
        let n = 36;
        let data: Vec<Vec<usize>> = (0..n)
            .map(|w| vec![w, (17 * w + 5) % n, (25 * w + 11) % n])
            .collect();
        let p = Placement::custom(data).unwrap();
        let d = ExactDecoder::with_budget(&p, std::time::Duration::ZERO);
        match d.decode_within(&WorkerSet::full(n)) {
            Err(OracleTimeout { budget }) => assert_eq!(budget, std::time::Duration::ZERO),
            Ok(r) => panic!("zero-budget search completed: {r:?}"),
        }
    }

    #[test]
    fn deterministic_across_rng_seeds() {
        let p = Placement::cyclic(9, 3).unwrap();
        let d = ExactDecoder::new(&p);
        let avail = WorkerSet::from_indices(9, [0, 2, 4, 5, 8]);
        let r1 = d.decode(&avail, &mut StdRng::seed_from_u64(1));
        let r2 = d.decode(&avail, &mut StdRng::seed_from_u64(999));
        assert_eq!(r1, r2);
    }
}
