//! Exact maximum-independent-set decoder (reference oracle).

use rand::RngCore;

use crate::decode::{assert_universe, DecodeResult, Decoder};
use crate::{ConflictGraph, Placement, WorkerSet};

/// A decoder that computes the exact maximum independent set by
/// branch-and-bound, for *any* placement.
///
/// Exponential in the worst case; used as the correctness oracle for the
/// paper's linear-time decoders and as the decoder for ad-hoc placements
/// that have no specialized algorithm. Deterministic: the `rng` argument is
/// unused.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::{Decoder, ExactDecoder};
/// use isgc_core::{Placement, WorkerSet};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(6, 2)?;
/// let d = ExactDecoder::new(&p);
/// let r = d.decode(&WorkerSet::full(6), &mut StdRng::seed_from_u64(0));
/// assert_eq!(r.selected().len(), 3); // n/c = 3 non-conflicting workers
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExactDecoder {
    placement: Placement,
    graph: ConflictGraph,
}

impl ExactDecoder {
    /// Creates the oracle decoder for any placement.
    pub fn new(placement: &Placement) -> Self {
        Self {
            placement: placement.clone(),
            graph: ConflictGraph::from_placement(placement),
        }
    }

    /// The underlying conflict graph.
    pub fn graph(&self) -> &ConflictGraph {
        &self.graph
    }
}

impl Decoder for ExactDecoder {
    fn n(&self) -> usize {
        self.placement.n()
    }

    fn decode(&self, available: &WorkerSet, _rng: &mut dyn RngCore) -> DecodeResult {
        assert_universe(self.n(), available);
        let selected = self.graph.max_independent_set(available);
        DecodeResult::from_selected(&self.placement, selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HrParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_fr_equals_group_count() {
        let p = Placement::fractional(8, 2).unwrap();
        let d = ExactDecoder::new(&p);
        let mut rng = StdRng::seed_from_u64(0);
        let r = d.decode(&WorkerSet::full(8), &mut rng);
        assert_eq!(r.selected().len(), 4);
        assert_eq!(r.recovered_count(), 8);
    }

    #[test]
    fn works_on_hybrid() {
        let p = Placement::hybrid(HrParams::new(8, 2, 2, 2)).unwrap();
        let d = ExactDecoder::new(&p);
        let mut rng = StdRng::seed_from_u64(0);
        let r = d.decode(&WorkerSet::full(8), &mut rng);
        assert_eq!(r.selected().len(), 2); // floor(n/c) = 2
        assert!(d.graph().is_independent(r.selected()));
    }

    #[test]
    fn deterministic_across_rng_seeds() {
        let p = Placement::cyclic(9, 3).unwrap();
        let d = ExactDecoder::new(&p);
        let avail = WorkerSet::from_indices(9, [0, 2, 4, 5, 8]);
        let r1 = d.decode(&avail, &mut StdRng::seed_from_u64(1));
        let r2 = d.decode(&avail, &mut StdRng::seed_from_u64(999));
        assert_eq!(r1, r2);
    }
}
