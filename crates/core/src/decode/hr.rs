//! The HR decoder (paper Algorithms 3–4).

use rand::RngCore;

use crate::conflict::ring_distance;
use crate::decode::{assert_universe, greedy_ring_walk, DecodeResult, Decoder};
use crate::{ConflictGraph, Error, HrParams, Placement, Scheme, WorkerId, WorkerSet};

/// `Decode()` for hybrid repetition (paper Alg. 3).
///
/// The greedy clockwise walk of the CR decoder carries over, with two
/// changes (paper §VI-C):
///
/// 1. the starting vertices are all available workers of one random *group*
///    (Theorem 8 shows some maximum independent set touches any given
///    group's available workers);
/// 2. the conflict test is the HR `CONFLICT` predicate (Alg. 4) instead of
///    plain ring distance — implemented here via the precomputed
///    ground-truth conflict graph, with the closed form exposed as
///    [`hr_conflict`] and tested equivalent.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::{Decoder, HrDecoder};
/// use isgc_core::{HrParams, Placement, WorkerSet};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// // Fig. 13 midpoint: HR(8, 2, 2) with two groups.
/// let p = Placement::hybrid(HrParams::new(8, 2, 2, 2))?;
/// let d = HrDecoder::new(&p)?;
/// let r = d.decode(
///     &WorkerSet::from_indices(8, [0, 1, 4, 5]),
///     &mut StdRng::seed_from_u64(0),
/// );
/// // One worker per group can join I (in-group workers conflict).
/// assert!(!r.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HrDecoder {
    placement: Placement,
    params: HrParams,
    graph: ConflictGraph,
}

impl HrDecoder {
    /// Creates a decoder for a hybrid-repetition placement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] if `placement` is not HR.
    pub fn new(placement: &Placement) -> Result<Self, Error> {
        if placement.scheme() != Scheme::Hybrid {
            return Err(Error::invalid(format!(
                "HrDecoder requires an HR placement, got {}",
                placement.scheme()
            )));
        }
        let params = *placement
            .hr_params()
            .expect("hybrid placement always records its parameters");
        Ok(Self {
            placement: placement.clone(),
            params,
            graph: ConflictGraph::from_placement(placement),
        })
    }
}

impl Decoder for HrDecoder {
    fn n(&self) -> usize {
        self.placement.n()
    }

    fn decode(&self, available: &WorkerSet, rng: &mut dyn RngCore) -> DecodeResult {
        assert_universe(self.n(), available);
        let n = self.params.n();
        let n0 = self.params.n0();
        if available.is_empty() {
            return DecodeResult::empty();
        }
        // Alg. 3 line 2: a random group with at least one available worker.
        // Picking a random available worker and taking its whole group is
        // equivalent up to group weighting and keeps fairness per worker.
        let u = available
            .choose(rng)
            .expect("non-empty availability checked above");
        let starts: Vec<WorkerId> = if self.params.c1() == 0 {
            // Degenerate CR placement: fall back to Alg. 2's start rule of
            // c consecutive positions (groups are meaningless here).
            let c = self.params.c();
            (0..c)
                .map(|v| (u + v) % n)
                .filter(|&s| available.contains(s))
                .collect()
        } else {
            let group = u / n0;
            (group * n0..(group + 1) * n0)
                .filter(|&s| available.contains(s))
                .collect()
        };
        let mut best: Vec<WorkerId> = Vec::new();
        for start in starts {
            let walk = greedy_ring_walk(n, start, available, |w| self.graph.neighbors(w).clone());
            if walk.len() > best.len() {
                best = walk;
            }
        }
        DecodeResult::from_selected(&self.placement, best)
    }
}

/// The closed-form `CONFLICT` predicate of paper Alg. 4, symmetrized.
///
/// Returns `true` iff workers `i1` and `i2` of the placement `HR(n, c₁, c₂)`
/// store a common partition:
///
/// - `c₁ = 0` degenerates to CR, where conflict is ring distance `< c`;
/// - otherwise workers of the same group always conflict (Theorem 6), and
///   workers of clockwise-adjacent groups conflict iff the earlier worker's
///   global cyclic rows reach the later worker's partitions — the paper's
///   condition `j₁ ≥ n₀ − c₂ + 1 ∧ (i₂ − i₁) mod n < c` (1-indexed).
///
/// This is `O(1)` and is property-tested equivalent to the ground-truth
/// "shares a partition" relation for every valid parameter set.
///
/// # Panics
///
/// Panics if either worker index is `>= params.n()`.
pub fn hr_conflict(params: &HrParams, i1: WorkerId, i2: WorkerId) -> bool {
    let n = params.n();
    assert!(i1 < n && i2 < n, "worker index out of range");
    if i1 == i2 {
        return true;
    }
    if params.c1() == 0 {
        return ring_distance(n, i1, i2) < params.c();
    }
    conflict_one_way(params, i1, i2) || conflict_one_way(params, i2, i1)
}

/// Alg. 4 proper: detects whether `i1`'s placement reaches `i2`'s, where
/// `i2` is in the same or the clockwise-next group of `i1`.
fn conflict_one_way(params: &HrParams, i1: WorkerId, i2: WorkerId) -> bool {
    let n = params.n();
    let n0 = params.n0();
    let g = params.g();
    let (c1, c2) = (params.c1(), params.c2());
    let c = c1 + c2;
    let (g1, g2) = (i1 / n0, i2 / n0);
    if g1 == g2 {
        // Theorem 6: all workers of a group pairwise conflict when c1 > 0.
        return true;
    }
    if (g2 + g - g1) % g == 1 {
        // i1's global cyclic rows cover partitions i1..i1+c2−1; they enter
        // the next group iff j1 + c2 − 1 ≥ n0, i.e. i1 is one of the
        // rightmost c2 − 1 workers of its group (matching the paper's prose
        // "only the c2 − 1 workers on the right can conflict with workers in
        // the next group"). Given that, the covered prefix of the next group
        // meets i2's partitions iff (i2 − i1) mod n < c (paper Alg. 4).
        let j1 = i1 % n0;
        if c2 > 0 && j1 + c2 > n0 && (i2 + n - i1) % n < c {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Every HR parameter set that is valid with n ≤ 12 (plus the paper's
    /// Fig. 13 family), for exhaustive testing.
    fn small_valid_params() -> Vec<HrParams> {
        let mut out = Vec::new();
        for n in 2..=12usize {
            for g in 1..=n {
                if n % g != 0 {
                    continue;
                }
                for c1 in 0..=n {
                    for c2 in 0..=n {
                        let p = HrParams::new(n, g, c1, c2);
                        if p.validate().is_ok() {
                            out.push(p);
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn rejects_non_hr_placement() {
        let cr = Placement::cyclic(4, 2).unwrap();
        assert!(HrDecoder::new(&cr).is_err());
    }

    #[test]
    fn alg4_closed_form_matches_ground_truth_for_all_small_params() {
        for params in small_valid_params() {
            let placement = Placement::hybrid(params).unwrap();
            for i1 in 0..params.n() {
                for i2 in 0..params.n() {
                    assert_eq!(
                        hr_conflict(&params, i1, i2),
                        placement.conflicts(i1, i2),
                        "params={params:?}, i1={i1}, i2={i2}"
                    );
                }
            }
        }
    }

    #[test]
    fn decoder_always_independent_exhaustively() {
        for params in small_valid_params() {
            let n = params.n();
            if n > 10 {
                continue; // keep the 2^n loop cheap
            }
            let placement = Placement::hybrid(params).unwrap();
            let decoder = HrDecoder::new(&placement).unwrap();
            let graph = ConflictGraph::from_placement(&placement);
            let mut rng = StdRng::seed_from_u64(3);
            for mask in 0u32..(1 << n) {
                let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                let r = decoder.decode(&avail, &mut rng);
                assert!(
                    graph.is_independent(r.selected()),
                    "params={params:?}, mask={mask:b}"
                );
                assert!(r.selected().iter().all(|&v| avail.contains(v)));
            }
        }
    }

    #[test]
    fn decoder_always_optimal_exhaustively() {
        // Theorems 8-9: the grouped greedy search reaches a *maximum*
        // independent set for every availability pattern.
        for params in small_valid_params() {
            let n = params.n();
            if n > 10 {
                continue;
            }
            let placement = Placement::hybrid(params).unwrap();
            let decoder = HrDecoder::new(&placement).unwrap();
            let graph = ConflictGraph::from_placement(&placement);
            let mut rng = StdRng::seed_from_u64(17);
            for mask in 0u32..(1 << n) {
                let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                let r = decoder.decode(&avail, &mut rng);
                assert_eq!(
                    r.selected().len(),
                    graph.alpha(&avail),
                    "params={params:?}, mask={mask:b}, selected={:?}",
                    r.selected()
                );
            }
        }
    }

    #[test]
    fn fig13_family_decodes_optimally() {
        let mut rng = StdRng::seed_from_u64(23);
        for c1 in 0..=4usize {
            let params = HrParams::new(8, 2, c1, 4 - c1);
            let placement = Placement::hybrid(params).unwrap();
            let decoder = HrDecoder::new(&placement).unwrap();
            let graph = ConflictGraph::from_placement(&placement);
            for mask in 0u32..(1 << 8) {
                let avail = WorkerSet::from_indices(8, (0..8).filter(|&i| mask & (1 << i) != 0));
                let r = decoder.decode(&avail, &mut rng);
                assert_eq!(
                    r.selected().len(),
                    graph.alpha(&avail),
                    "c1={c1}, mask={mask:b}"
                );
            }
        }
    }

    #[test]
    fn empty_availability() {
        let p = Placement::hybrid(HrParams::new(8, 2, 2, 2)).unwrap();
        let d = HrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(d.decode(&WorkerSet::empty(8), &mut rng).is_empty());
    }

    #[test]
    fn hr_conflict_symmetry() {
        for params in small_valid_params() {
            for a in 0..params.n() {
                for b in 0..params.n() {
                    assert_eq!(
                        hr_conflict(&params, a, b),
                        hr_conflict(&params, b, a),
                        "params={params:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn hr_conflict_c1_zero_is_cr_distance() {
        let params = HrParams::new(8, 2, 0, 3);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(
                    hr_conflict(&params, a, b),
                    a == b || ring_distance(8, a, b) < 3
                );
            }
        }
    }
}
