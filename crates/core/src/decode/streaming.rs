//! Anytime decoding: maintain the best recoverable set as codewords arrive.
//!
//! A master running a deadline policy (paper §IV) wants the current-best
//! decode at *every* instant, not only after the deadline. This wrapper
//! feeds arrivals one at a time to an underlying decoder and exposes the
//! monotone "best so far" view — recovery never decreases as more codewords
//! land, because a larger available set can only have a larger maximum
//! independent set.

use rand::RngCore;

use crate::decode::{DecodeResult, Decoder};
use crate::{WorkerId, WorkerSet};

/// An anytime wrapper over any [`Decoder`]: push arrivals, read the current
/// best decode.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::{CrDecoder, StreamingDecoder};
/// use isgc_core::Placement;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let placement = Placement::cyclic(4, 2)?;
/// let decoder = CrDecoder::new(&placement)?;
/// let mut stream = StreamingDecoder::new(Box::new(decoder));
/// let mut rng = StdRng::seed_from_u64(0);
///
/// stream.arrive(1, &mut rng);
/// assert_eq!(stream.best().recovered_count(), 2); // worker 1 alone
/// stream.arrive(3, &mut rng);
/// assert_eq!(stream.best().recovered_count(), 4); // 1 and 3 don't conflict
/// # Ok(())
/// # }
/// ```
pub struct StreamingDecoder {
    decoder: Box<dyn Decoder>,
    arrived: WorkerSet,
    best: DecodeResult,
}

impl std::fmt::Debug for StreamingDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingDecoder")
            .field("arrived", &self.arrived)
            .field("best", &self.best)
            .finish()
    }
}

impl StreamingDecoder {
    /// Wraps a decoder; no codewords have arrived yet.
    pub fn new(decoder: Box<dyn Decoder>) -> Self {
        let arrived = WorkerSet::empty(decoder.n());
        Self {
            decoder,
            arrived,
            best: DecodeResult::empty(),
        }
    }

    /// Records the arrival of `worker`'s codeword and refreshes the best
    /// decode. Duplicate arrivals are no-ops. Returns the number of
    /// partitions now recoverable.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= n`.
    pub fn arrive(&mut self, worker: WorkerId, rng: &mut dyn RngCore) -> usize {
        if !self.arrived.contains(worker) {
            self.arrived.insert(worker);
            let fresh = self.decoder.decode(&self.arrived, rng);
            // Monotonicity holds mathematically (α is monotone in the
            // vertex set); keep the old result defensively if a decoder
            // ever regressed, so `best()` is monotone by construction.
            if fresh.recovered_count() >= self.best.recovered_count() {
                self.best = fresh;
            }
        }
        self.best.recovered_count()
    }

    /// Workers whose codewords have arrived.
    pub fn arrived(&self) -> &WorkerSet {
        &self.arrived
    }

    /// The current best decode.
    pub fn best(&self) -> &DecodeResult {
        &self.best
    }

    /// True when every partition is recoverable — the master can stop
    /// waiting early regardless of its deadline.
    pub fn is_complete(&self) -> bool {
        self.best.recovered_count() == self.decoder.n()
    }

    /// Clears arrivals for the next training step.
    pub fn reset(&mut self) {
        self.arrived = WorkerSet::empty(self.decoder.n());
        self.best = DecodeResult::empty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{CrDecoder, ExactDecoder, FrDecoder};
    use crate::Placement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovery_is_monotone_in_arrivals() {
        // c | n so that full arrival implies full recovery.
        let placement = Placement::cyclic(8, 2).unwrap();
        let decoder = CrDecoder::new(&placement).unwrap();
        let mut stream = StreamingDecoder::new(Box::new(decoder));
        let mut rng = StdRng::seed_from_u64(1);
        let order = [3usize, 4, 0, 7, 1, 6, 2, 5];
        let mut last = 0;
        for &w in &order {
            let now = stream.arrive(w, &mut rng);
            assert!(now >= last, "recovery regressed: {last} -> {now}");
            last = now;
        }
        assert!(stream.is_complete());
        assert_eq!(stream.arrived().len(), 8);
    }

    #[test]
    fn early_completion_detected() {
        // CR(4,2): workers 0 and 2 suffice for everything.
        let placement = Placement::cyclic(4, 2).unwrap();
        let decoder = CrDecoder::new(&placement).unwrap();
        let mut stream = StreamingDecoder::new(Box::new(decoder));
        let mut rng = StdRng::seed_from_u64(2);
        stream.arrive(0, &mut rng);
        assert!(!stream.is_complete());
        stream.arrive(2, &mut rng);
        assert!(stream.is_complete());
    }

    #[test]
    fn duplicates_are_no_ops() {
        let placement = Placement::fractional(4, 2).unwrap();
        let decoder = FrDecoder::new(&placement).unwrap();
        let mut stream = StreamingDecoder::new(Box::new(decoder));
        let mut rng = StdRng::seed_from_u64(3);
        let a = stream.arrive(1, &mut rng);
        let b = stream.arrive(1, &mut rng);
        assert_eq!(a, b);
        assert_eq!(stream.arrived().len(), 1);
    }

    #[test]
    fn matches_batch_decode_at_every_prefix() {
        let placement = Placement::cyclic(7, 2).unwrap();
        let exact = ExactDecoder::new(&placement);
        let mut stream = StreamingDecoder::new(Box::new(ExactDecoder::new(&placement)));
        let mut rng = StdRng::seed_from_u64(4);
        let order = [6usize, 2, 0, 5, 3];
        let mut arrived = WorkerSet::empty(7);
        for &w in &order {
            stream.arrive(w, &mut rng);
            arrived.insert(w);
            let batch = exact.decode(&arrived, &mut rng);
            assert_eq!(
                stream.best().recovered_count(),
                batch.recovered_count(),
                "prefix ending at {w}"
            );
        }
    }

    #[test]
    fn reset_clears_state() {
        let placement = Placement::cyclic(4, 2).unwrap();
        let decoder = CrDecoder::new(&placement).unwrap();
        let mut stream = StreamingDecoder::new(Box::new(decoder));
        let mut rng = StdRng::seed_from_u64(5);
        stream.arrive(0, &mut rng);
        stream.reset();
        assert!(stream.arrived().is_empty());
        assert_eq!(stream.best().recovered_count(), 0);
        assert!(!stream.is_complete());
    }
}
