//! The CR decoder (paper Algorithm 2).

use rand::RngCore;

use crate::conflict::ring_distance;
use crate::decode::{assert_universe, greedy_ring_walk, DecodeResult, Decoder};
use crate::{Error, Placement, Scheme, WorkerSet};

/// `Decode()` for cyclic repetition (paper Alg. 2).
///
/// The CR conflict graph is the circulant `C_n^{1..c−1}` (Theorem 1): workers
/// conflict iff their ring distance is below `c`. A single greedy clockwise
/// walk finds a *maximal* independent set (Theorem 2); running it from every
/// available vertex among `c` consecutive starting positions guarantees at
/// least one walk reaches a *maximum* independent set (Theorem 3).
///
/// Complexity: `O(c · |W'|/c) = O(|W'|)` amortized over the `≤ c` walks.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::{CrDecoder, Decoder};
/// use isgc_core::{Placement, WorkerSet};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(4, 2)?;
/// let d = CrDecoder::new(&p)?;
/// // Fig. 4(b) discussion: from {0, 1, 2}, the maximum is {0, 2}, which a
/// // walk starting at 1 alone would miss.
/// let r = d.decode(
///     &WorkerSet::from_indices(4, [0, 1, 2]),
///     &mut StdRng::seed_from_u64(3),
/// );
/// assert_eq!(r.selected(), &[0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrDecoder {
    placement: Placement,
}

impl CrDecoder {
    /// Creates a decoder for a cyclic-repetition placement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameters`] if `placement` is not CR.
    pub fn new(placement: &Placement) -> Result<Self, Error> {
        if placement.scheme() != Scheme::Cyclic {
            return Err(Error::invalid(format!(
                "CrDecoder requires a CR placement, got {}",
                placement.scheme()
            )));
        }
        Ok(Self {
            placement: placement.clone(),
        })
    }

    /// The circulant neighbor set of `v`: all vertices at ring distance
    /// `1..c` from `v`.
    fn neighbor_set(&self, v: usize) -> WorkerSet {
        let (n, c) = (self.placement.n(), self.placement.c());
        let mut s = WorkerSet::empty(n);
        for d in 1..c {
            if d >= n {
                break;
            }
            s.insert((v + d) % n);
            s.insert((v + n - d % n) % n);
        }
        s
    }
}

impl Decoder for CrDecoder {
    fn n(&self) -> usize {
        self.placement.n()
    }

    fn decode(&self, available: &WorkerSet, rng: &mut dyn RngCore) -> DecodeResult {
        assert_universe(self.n(), available);
        let (n, c) = (self.placement.n(), self.placement.c());
        let Some(u) = available.choose(rng) else {
            return DecodeResult::empty();
        };
        // Theorem 3: among the ≤ c available vertices in positions
        // u, u+1, …, u+c−1 there is a start whose greedy walk is maximum.
        let mut best: Vec<usize> = Vec::new();
        for v in 0..c {
            let start = (u + v) % n;
            if !available.contains(start) {
                continue;
            }
            let walk = greedy_ring_walk(n, start, available, |w| self.neighbor_set(w));
            if walk.len() > best.len() {
                best = walk;
            }
        }
        debug_assert!(best
            .iter()
            .enumerate()
            .all(|(i, &a)| best[i + 1..].iter().all(|&b| ring_distance(n, a, b) >= c)));
        DecodeResult::from_selected(&self.placement, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_cr_placement() {
        let fr = Placement::fractional(4, 2).unwrap();
        assert!(CrDecoder::new(&fr).is_err());
    }

    #[test]
    fn neighbor_set_is_circulant_band() {
        let p = Placement::cyclic(8, 3).unwrap();
        let d = CrDecoder::new(&p).unwrap();
        assert_eq!(d.neighbor_set(0).to_vec(), vec![1, 2, 6, 7]);
        assert_eq!(d.neighbor_set(7).to_vec(), vec![0, 1, 5, 6]);
    }

    #[test]
    fn neighbor_set_matches_conflict_graph() {
        for (n, c) in [(4usize, 2usize), (7, 3), (9, 4), (6, 6), (5, 1)] {
            let p = Placement::cyclic(n, c).unwrap();
            let d = CrDecoder::new(&p).unwrap();
            let g = ConflictGraph::from_placement(&p);
            for v in 0..n {
                assert_eq!(
                    d.neighbor_set(v).to_vec(),
                    g.neighbors(v).to_vec(),
                    "n={n}, c={c}, v={v}"
                );
            }
        }
    }

    #[test]
    fn fig1d_example_two_opposite_workers_recover_everything() {
        // Fig. 1(d): workers 0 and 2 available in CR(4, 2) recover all of g.
        let p = Placement::cyclic(4, 2).unwrap();
        let d = CrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let r = d.decode(&WorkerSet::from_indices(4, [0, 2]), &mut rng);
        assert_eq!(r.selected(), &[0, 2]);
        assert_eq!(r.partitions(), &[0, 1, 2, 3]);
    }

    #[test]
    fn empty_availability() {
        let p = Placement::cyclic(5, 2).unwrap();
        let d = CrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(d.decode(&WorkerSet::empty(5), &mut rng).is_empty());
    }

    #[test]
    fn c_equals_one_selects_all_available() {
        // With c = 1 (IS-SGD degenerate case) there are no conflicts.
        let p = Placement::cyclic(6, 1).unwrap();
        let d = CrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let avail = WorkerSet::from_indices(6, [0, 2, 3, 5]);
        let r = d.decode(&avail, &mut rng);
        assert_eq!(r.selected(), &[0, 2, 3, 5]);
    }

    #[test]
    fn always_optimal_exhaustively() {
        // Alg. 2 must return a maximum independent set for every subset W'
        // of every small CR instance, for every random seed choice.
        for n in 2..=10usize {
            for c in 1..=n {
                let p = Placement::cyclic(n, c).unwrap();
                let d = CrDecoder::new(&p).unwrap();
                let g = ConflictGraph::from_placement(&p);
                let mut rng = StdRng::seed_from_u64(5);
                for mask in 0u32..(1 << n) {
                    let avail =
                        WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                    let r = d.decode(&avail, &mut rng);
                    assert!(
                        g.is_independent(r.selected()),
                        "n={n}, c={c}, mask={mask:b}"
                    );
                    assert_eq!(
                        r.selected().len(),
                        g.alpha(&avail),
                        "n={n}, c={c}, mask={mask:b}, selected={:?}",
                        r.selected()
                    );
                }
            }
        }
    }

    #[test]
    fn optimal_on_larger_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..200 {
            let n = 11 + (trial % 14); // n in 11..25
            let c = 1 + (trial % (n / 2));
            let p = Placement::cyclic(n, c).unwrap();
            let d = CrDecoder::new(&p).unwrap();
            let g = ConflictGraph::from_placement(&p);
            let w = trial % (n + 1);
            let avail = WorkerSet::random_subset(n, w, &mut rng);
            let r = d.decode(&avail, &mut rng);
            assert!(g.is_independent(r.selected()));
            assert_eq!(r.selected().len(), g.alpha(&avail), "n={n}, c={c}, w={w}");
        }
    }
}
