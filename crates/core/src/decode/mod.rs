//! Decoding algorithms (paper §IV–§VI).
//!
//! A decoder receives the set `W'` of workers whose coded gradients arrived
//! and selects a subset `I ⊆ W'` of pairwise non-conflicting workers whose
//! codewords can be summed into `ĝ`. The paper proves linear-time decoders
//! that make `I` a **maximum** independent set of the induced conflict graph
//! for each placement family:
//!
//! | decoder | paper | placement |
//! |---|---|---|
//! | [`FrDecoder`] | Alg. 1 | fractional repetition |
//! | [`CrDecoder`] | Algs. 2 | cyclic repetition |
//! | [`HrDecoder`] | Algs. 3–4 | hybrid repetition |
//! | [`ExactDecoder`] | — | any placement (branch-and-bound oracle) |
//! | [`ArrivalOrderDecoder`] | Fig. 3 strawman | any placement (greedy, maximal only) |
//! | [`StreamingDecoder`] | §IV deadline masters | anytime wrapper over any decoder |
//! | [`ApproxDecoder`] | approximate GC (1905.05383) | bias-corrected partial estimates below the Theorem 10 floor |

mod approx;
mod arrival;
mod cr;
mod exact;
mod fr;
mod hr;
mod streaming;

pub use approx::{ApproxDecoder, ApproxReport};
pub use arrival::ArrivalOrderDecoder;
pub use cr::CrDecoder;
pub use exact::{ExactDecoder, OracleTimeout};
pub use fr::FrDecoder;
pub use hr::{hr_conflict, HrDecoder};
pub use streaming::StreamingDecoder;

use rand::RngCore;

use crate::{Error, PartitionId, Placement, Scheme, WorkerId, WorkerSet};

/// Builds the paper's decoder for a placement's scheme: Alg. 1 for FR,
/// Alg. 2 for CR, Algs. 3–4 for HR, and the exact branch-and-bound oracle
/// for custom placements.
///
/// This is the single `Scheme → Decoder` dispatch point shared by the
/// runtime, simulator, network master, and CLI.
///
/// # Errors
///
/// Propagates the decoder constructors' validation errors (e.g. a placement
/// whose scheme tag does not match its layout).
///
/// # Examples
///
/// ```
/// use isgc_core::decode::decoder_for;
/// use isgc_core::Placement;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(6, 2)?;
/// let d = decoder_for(&p)?;
/// assert_eq!(d.n(), 6);
/// # Ok(())
/// # }
/// ```
pub fn decoder_for(placement: &Placement) -> Result<Box<dyn Decoder>, Error> {
    Ok(match placement.scheme() {
        Scheme::Fractional => Box::new(FrDecoder::new(placement)?),
        Scheme::Cyclic => Box::new(CrDecoder::new(placement)?),
        Scheme::Hybrid => Box::new(HrDecoder::new(placement)?),
        Scheme::Custom => Box::new(ExactDecoder::new(placement)),
    })
}

/// The outcome of decoding one step: the selected workers `I` and the
/// partitions whose gradients `ĝ = Σ_{i∈I} g_i` contains.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::{Decoder, FrDecoder};
/// use isgc_core::{Placement, WorkerSet};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::fractional(4, 2)?;
/// let d = FrDecoder::new(&p)?;
/// let r = d.decode(&WorkerSet::from_indices(4, [0, 1]), &mut StdRng::seed_from_u64(0));
/// assert_eq!(r.selected().len(), 1); // one representative of group {0,1}
/// assert_eq!(r.partitions(), &[0, 1]);
/// assert_eq!(r.recovered_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeResult {
    selected: Vec<WorkerId>,
    partitions: Vec<PartitionId>,
}

impl DecodeResult {
    /// Builds a result from the selected workers, collecting their
    /// partitions from `placement`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the selected workers conflict (duplicate
    /// partitions) — decoders must only select independent sets.
    pub fn from_selected(placement: &Placement, mut selected: Vec<WorkerId>) -> Self {
        selected.sort_unstable();
        let mut partitions: Vec<PartitionId> = selected
            .iter()
            .flat_map(|&w| placement.partitions_of(w).iter().copied())
            .collect();
        partitions.sort_unstable();
        debug_assert!(
            partitions.windows(2).all(|p| p[0] != p[1]),
            "selected workers conflict: duplicate partitions in {selected:?}"
        );
        Self {
            selected,
            partitions,
        }
    }

    /// Like [`DecodeResult::from_selected`], but validates the selection in
    /// **all** build profiles: every worker id must be in range and no two
    /// selected workers may share a partition.
    ///
    /// Use this for selections from untrusted sources (custom decoders,
    /// deserialized state); the in-tree decoders are proven to produce
    /// independent sets, so the hot path keeps the debug-only assert.
    ///
    /// # Errors
    ///
    /// [`Error::ConflictingSelection`] when two selected workers (or a
    /// duplicated worker id) share a partition, and
    /// [`Error::WorkerSetMismatch`] when a worker id is `>= placement.n()`.
    pub fn try_from_selected(
        placement: &Placement,
        mut selected: Vec<WorkerId>,
    ) -> Result<Self, Error> {
        selected.sort_unstable();
        if let Some(&w) = selected.iter().find(|&&w| w >= placement.n()) {
            return Err(Error::WorkerSetMismatch {
                expected: placement.n(),
                got: w + 1,
            });
        }
        let mut partitions: Vec<PartitionId> = selected
            .iter()
            .flat_map(|&w| placement.partitions_of(w).iter().copied())
            .collect();
        partitions.sort_unstable();
        if let Some(pair) = partitions.windows(2).find(|p| p[0] == p[1]) {
            return Err(Error::ConflictingSelection {
                selected,
                partition: pair[0],
            });
        }
        Ok(Self {
            selected,
            partitions,
        })
    }

    /// An empty result (nothing recovered this step).
    pub fn empty() -> Self {
        Self {
            selected: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// The selected workers `I`, sorted.
    pub fn selected(&self) -> &[WorkerId] {
        &self.selected
    }

    /// The recovered partitions, sorted.
    pub fn partitions(&self) -> &[PartitionId] {
        &self.partitions
    }

    /// Number of partitions recovered, `|I| · c` for IS-GC placements.
    pub fn recovered_count(&self) -> usize {
        self.partitions.len()
    }

    /// Returns `true` when nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }
}

/// A placement-specific `Decode()` function (paper §IV).
///
/// Implementations select a maximum (for the paper's three algorithms) or
/// maximal (for the arrival-order strawman) independent set of the conflict
/// graph induced by the available workers.
pub trait Decoder {
    /// The number of workers this decoder was built for.
    fn n(&self) -> usize;

    /// Decodes one step: picks non-conflicting workers out of `available`.
    ///
    /// Randomness only affects *which* maximum independent set is returned
    /// (for fairness across partitions, §IV), never its size.
    ///
    /// # Panics
    ///
    /// Panics if `available.universe() != self.n()`.
    fn decode(&self, available: &WorkerSet, rng: &mut dyn RngCore) -> DecodeResult;
}

pub(crate) fn assert_universe(n: usize, available: &WorkerSet) {
    assert_eq!(
        available.universe(),
        n,
        "decoder built for n={n} but worker set has universe {}",
        available.universe()
    );
}

/// Walks the ring clockwise from `start`, greedily adding every available
/// vertex that conflicts with none of the already-chosen ones.
///
/// `conflicts(a, b)` must be the symmetric conflict relation. This is the
/// common core of paper Algs. 2 and 3; correctness (the returned set is
/// independent) holds for *any* conflict relation because candidates are
/// checked against the running neighbor mask, while the paper's
/// last-and-first check is equivalent for CR/HR conflict structure.
pub(crate) fn greedy_ring_walk(
    n: usize,
    start: WorkerId,
    available: &WorkerSet,
    neighbors: impl Fn(WorkerId) -> WorkerSet,
) -> Vec<WorkerId> {
    let mut chosen = vec![start];
    let mut blocked = neighbors(start);
    for j in 1..n {
        let cand = (start + j) % n;
        if available.contains(cand) && !blocked.contains(cand) && !chosen.contains(&cand) {
            blocked = blocked.union(&neighbors(cand));
            chosen.push(cand);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn decode_result_accessors() {
        let p = Placement::cyclic(4, 2).unwrap();
        let r = DecodeResult::from_selected(&p, vec![2, 0]);
        assert_eq!(r.selected(), &[0, 2]);
        assert_eq!(r.partitions(), &[0, 1, 2, 3]);
        assert_eq!(r.recovered_count(), 4);
        assert!(!r.is_empty());
        let e = DecodeResult::empty();
        assert!(e.is_empty());
        assert_eq!(e.recovered_count(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "selected workers conflict")]
    fn conflicting_selection_panics_in_debug() {
        let p = Placement::cyclic(4, 2).unwrap();
        let _ = DecodeResult::from_selected(&p, vec![0, 1]);
    }

    #[test]
    fn try_from_selected_validates_in_release_too() {
        let p = Placement::cyclic(4, 2).unwrap();
        let ok = DecodeResult::try_from_selected(&p, vec![2, 0]).unwrap();
        assert_eq!(ok.selected(), &[0, 2]);
        match DecodeResult::try_from_selected(&p, vec![0, 1]) {
            Err(Error::ConflictingSelection {
                selected,
                partition,
            }) => {
                assert_eq!(selected, vec![0, 1]);
                assert_eq!(partition, 1);
            }
            other => panic!("expected ConflictingSelection, got {other:?}"),
        }
        // A duplicated worker id is a conflict with itself.
        assert!(DecodeResult::try_from_selected(&p, vec![2, 2]).is_err());
        // Out-of-range worker ids are rejected rather than panicking.
        assert!(matches!(
            DecodeResult::try_from_selected(&p, vec![7]),
            Err(Error::WorkerSetMismatch { expected: 4, .. })
        ));
    }

    #[test]
    fn decoder_for_matches_scheme() {
        for p in [
            Placement::fractional(4, 2).unwrap(),
            Placement::cyclic(5, 2).unwrap(),
            Placement::hybrid(crate::HrParams::new(8, 2, 2, 2)).unwrap(),
            Placement::custom(vec![vec![0, 1], vec![1, 2], vec![2, 0]]).unwrap(),
        ] {
            let d = decoder_for(&p).unwrap();
            assert_eq!(d.n(), p.n());
            let r = d.decode(
                &WorkerSet::full(p.n()),
                &mut rand::rngs::StdRng::seed_from_u64(0),
            );
            assert!(!r.is_empty());
        }
    }

    #[test]
    fn greedy_ring_walk_collects_non_adjacent() {
        // Ring of 6, conflict = distance < 2 (hexagon cycle graph).
        let avail = WorkerSet::full(6);
        let neighbors = |v: usize| WorkerSet::from_indices(6, [(v + 1) % 6, (v + 5) % 6]);
        let got = greedy_ring_walk(6, 0, &avail, neighbors);
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn greedy_ring_walk_respects_availability() {
        let avail = WorkerSet::from_indices(6, [0, 1, 3]);
        let neighbors = |v: usize| WorkerSet::from_indices(6, [(v + 1) % 6, (v + 5) % 6]);
        // From 0: 1 is adjacent (skip), 2 unavailable, 3 ok, 4/5 unavailable.
        assert_eq!(greedy_ring_walk(6, 0, &avail, neighbors), vec![0, 3]);
    }
}
