//! Partition-inclusion fairness (paper §IV).
//!
//! IS-GC promises that when worker speeds are i.i.d., every partition has
//! the *same* probability of appearing in `ĝ` — otherwise training would be
//! biased toward some regions of the dataset (the failure mode of IS-SGD
//! with an enduring straggler). This module estimates those probabilities by
//! Monte-Carlo simulation.

use rand::Rng;

use crate::decode::Decoder;
use crate::WorkerSet;

/// Empirical per-partition inclusion frequencies measured over repeated
/// decoding trials.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    frequencies: Vec<f64>,
    trials: usize,
    w: usize,
}

impl FairnessReport {
    /// Per-partition frequency of appearing in `ĝ` (index = partition id).
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Number of Monte-Carlo trials behind the estimate.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Number of available workers per trial.
    pub fn available_workers(&self) -> usize {
        self.w
    }

    /// Mean inclusion frequency across partitions.
    pub fn mean(&self) -> f64 {
        if self.frequencies.is_empty() {
            return 0.0;
        }
        self.frequencies.iter().sum::<f64>() / self.frequencies.len() as f64
    }

    /// Largest absolute deviation of any partition's frequency from the
    /// mean — the paper's fairness claim says this tends to 0.
    pub fn max_deviation(&self) -> f64 {
        let mean = self.mean();
        self.frequencies
            .iter()
            .fold(0.0, |m: f64, &f| m.max((f - mean).abs()))
    }
}

/// Estimates per-partition inclusion frequencies for `decoder` when exactly
/// `w` uniformly random workers are available each step.
///
/// # Panics
///
/// Panics if `w > decoder.n()` or `trials == 0`.
///
/// # Examples
///
/// ```
/// use isgc_core::decode::CrDecoder;
/// use isgc_core::fairness::measure_inclusion;
/// use isgc_core::Placement;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(6, 2)?;
/// let d = CrDecoder::new(&p)?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let report = measure_inclusion(&d, 3, 2000, &mut rng);
/// assert!(report.max_deviation() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn measure_inclusion<R: Rng>(
    decoder: &dyn Decoder,
    w: usize,
    trials: usize,
    rng: &mut R,
) -> FairnessReport {
    let n = decoder.n();
    assert!(w <= n, "w={w} exceeds n={n}");
    assert!(trials > 0, "trials must be positive");
    let mut counts = vec![0usize; n];
    for _ in 0..trials {
        let available = WorkerSet::random_subset(n, w, rng);
        let result = decoder.decode(&available, rng);
        for &j in result.partitions() {
            counts[j] += 1;
        }
    }
    FairnessReport {
        frequencies: counts
            .into_iter()
            .map(|c| c as f64 / trials as f64)
            .collect(),
        trials,
        w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{CrDecoder, FrDecoder, HrDecoder};
    use crate::{HrParams, Placement};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_schemes_are_fair_under_iid_speeds() {
        let mut rng = StdRng::seed_from_u64(1);
        let fr = Placement::fractional(8, 2).unwrap();
        let cr = Placement::cyclic(8, 2).unwrap();
        let hr = Placement::hybrid(HrParams::new(8, 2, 2, 2)).unwrap();
        let decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(FrDecoder::new(&fr).unwrap()),
            Box::new(CrDecoder::new(&cr).unwrap()),
            Box::new(HrDecoder::new(&hr).unwrap()),
        ];
        for d in &decoders {
            for w in [2usize, 4, 6] {
                let report = measure_inclusion(d.as_ref(), w, 3000, &mut rng);
                assert!(
                    report.max_deviation() < 0.05,
                    "w={w}: dev={} freqs={:?}",
                    report.max_deviation(),
                    report.frequencies()
                );
            }
        }
    }

    #[test]
    fn full_availability_always_includes_everything_for_fr() {
        let fr = Placement::fractional(4, 2).unwrap();
        let d = FrDecoder::new(&fr).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let report = measure_inclusion(&d, 4, 100, &mut rng);
        assert!(report.frequencies().iter().all(|&f| f == 1.0));
        assert_eq!(report.max_deviation(), 0.0);
        assert_eq!(report.trials(), 100);
        assert_eq!(report.available_workers(), 4);
    }

    #[test]
    fn frequency_grows_with_w() {
        let cr = Placement::cyclic(8, 2).unwrap();
        let d = CrDecoder::new(&cr).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let f2 = measure_inclusion(&d, 2, 2000, &mut rng).mean();
        let f6 = measure_inclusion(&d, 6, 2000, &mut rng).mean();
        assert!(f2 < f6, "f2={f2}, f6={f6}");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_w_panics() {
        let cr = Placement::cyclic(4, 2).unwrap();
        let d = CrDecoder::new(&cr).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = measure_inclusion(&d, 5, 10, &mut rng);
    }
}
