//! Recovery bounds (paper §VII-A, Theorems 10–11).
//!
//! With `w = |W'|` available workers out of `n`, storage factor `c`, the
//! independence number of the induced conflict graph — and hence the number
//! of selectable workers — satisfies
//!
//! ```text
//! min(⌈w/c⌉, ⌊n/c⌋)  ≤  α(G[W'])  ≤  min(w, ⌊n/c⌋)
//! ```
//!
//! for FR, CR, and HR alike. Multiplying by `c` turns worker counts into
//! recovered-partition counts.

/// Theorem 10: the worst-case number of selectable workers,
/// `min(⌈w/c⌉, ⌊n/c⌋)`.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
///
/// # Examples
///
/// ```
/// // 3 of 4 workers arrive with c = 2: at least 2 workers always combine.
/// assert_eq!(isgc_core::bounds::alpha_lower_bound(4, 2, 3), 2);
/// ```
pub fn alpha_lower_bound(n: usize, c: usize, w: usize) -> usize {
    assert!(c > 0, "c must be positive");
    assert!(w <= n, "w={w} cannot exceed n={n}");
    (w.div_ceil(c)).min(n / c)
}

/// Theorem 11: the best-case number of selectable workers, `min(w, ⌊n/c⌋)`.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
///
/// # Examples
///
/// ```
/// // Even with all 4 workers up, at most n/c = 2 non-conflicting workers
/// // exist when c = 2.
/// assert_eq!(isgc_core::bounds::alpha_upper_bound(4, 2, 4), 2);
/// ```
pub fn alpha_upper_bound(n: usize, c: usize, w: usize) -> usize {
    assert!(c > 0, "c must be positive");
    assert!(w <= n, "w={w} cannot exceed n={n}");
    w.min(n / c)
}

/// Worst-case number of recovered partitions, `c · alpha_lower_bound`.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn recovery_lower_bound(n: usize, c: usize, w: usize) -> usize {
    c * alpha_lower_bound(n, c, w)
}

/// Best-case number of recovered partitions, `c · alpha_upper_bound`, capped
/// at `n`.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn recovery_upper_bound(n: usize, c: usize, w: usize) -> usize {
    (c * alpha_upper_bound(n, c, w)).min(n)
}

/// Both Theorem 10–11 recovery bounds at once, as
/// `(recovery_lower_bound, recovery_upper_bound)` — the interval a
/// bound-checked harness asserts every step's recovered-partition count
/// against.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn recovery_bounds(n: usize, c: usize, w: usize) -> (usize, usize) {
    (recovery_lower_bound(n, c, w), recovery_upper_bound(n, c, w))
}

/// Whether `recovered` partitions from `w` available workers is consistent
/// with Theorems 10–11. The chaos harness calls this on every step of a
/// fault-injected run: a violation means the decoder, not the fault, is
/// broken.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn recovery_within_bounds(n: usize, c: usize, w: usize, recovered: usize) -> bool {
    let (lo, hi) = recovery_bounds(n, c, w);
    (lo..=hi).contains(&recovered)
}

/// The largest number of stragglers `s` for which **full** recovery of all
/// `n` partition gradients is guaranteed for *every* straggler pattern —
/// computed exactly by checking the worst availability pattern at each `s`.
///
/// For FR and CR with `c | n` this equals classic GC's `c − 1` (both schemes
/// place each partition on `c` workers, and an adversary silencing all `c`
/// replicas of one partition defeats any code), which is exactly the paper's
/// point: IS-GC matches GC's guaranteed tolerance *and* degrades gracefully
/// beyond it.
///
/// Exponential in `n` (it enumerates worst cases); intended for `n ≤ 20`.
///
/// # Panics
///
/// Panics if `n > 20`.
///
/// # Examples
///
/// ```
/// use isgc_core::bounds::guaranteed_full_recovery_tolerance;
/// use isgc_core::Placement;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(8, 3)?;
/// // Any 2 stragglers still leave full recovery impossible to block? No —
/// // tolerance is c − 1 = 2 only if 8 % 3 == 0; here partial coverage caps it.
/// let t = guaranteed_full_recovery_tolerance(&p);
/// assert!(t <= 2);
/// # Ok(())
/// # }
/// ```
pub fn guaranteed_full_recovery_tolerance(placement: &crate::Placement) -> usize {
    let n = placement.n();
    assert!(n <= 20, "exhaustive tolerance check capped at n = 20");
    let graph = crate::ConflictGraph::from_placement(placement);
    // Full recovery means every partition is covered by the selected
    // independent set, i.e. recovered_count == n, i.e. alpha * c == n AND
    // the partitions covered are all n. Since selected workers are
    // non-conflicting, their partition sets are disjoint: alpha * c == n
    // already implies full coverage.
    let full_alpha = n / placement.c();
    if !n.is_multiple_of(placement.c()) {
        return 0; // c ∤ n: even all workers can't tile the partitions
    }
    for s in 1..n {
        let w = n - s;
        // Check every availability pattern of size w.
        let mut mask: u64 = (1u64 << w) - 1;
        let limit: u64 = 1u64 << n;
        while mask < limit {
            let avail = crate::WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
            if graph.alpha(&avail) < full_alpha {
                return s - 1;
            }
            let c0 = mask & mask.wrapping_neg();
            let r = mask + c0;
            mask = (((r ^ mask) >> 2) / c0) | r;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{CrDecoder, Decoder, FrDecoder, HrDecoder};
    use crate::{HrParams, Placement, WorkerSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounds_are_consistent() {
        for n in 1..=16 {
            for c in 1..=n {
                for w in 0..=n {
                    let lo = alpha_lower_bound(n, c, w);
                    let hi = alpha_upper_bound(n, c, w);
                    assert!(lo <= hi, "n={n}, c={c}, w={w}");
                    assert!(recovery_lower_bound(n, c, w) <= recovery_upper_bound(n, c, w));
                    assert!(recovery_upper_bound(n, c, w) <= n);
                }
            }
        }
    }

    #[test]
    fn zero_available_recovers_zero() {
        assert_eq!(alpha_lower_bound(8, 2, 0), 0);
        assert_eq!(alpha_upper_bound(8, 2, 0), 0);
    }

    #[test]
    fn full_availability_hits_n_over_c() {
        assert_eq!(alpha_lower_bound(8, 2, 8), 4);
        assert_eq!(alpha_upper_bound(8, 2, 8), 4);
        assert_eq!(recovery_upper_bound(8, 2, 8), 8);
        // Non-divisible case: CR(7, 3) can select at most 2 workers.
        assert_eq!(alpha_upper_bound(7, 3, 7), 2);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn w_above_n_panics() {
        alpha_lower_bound(4, 2, 5);
    }

    #[test]
    fn recovery_bounds_pair_matches_parts() {
        for n in 1..=12 {
            for c in 1..=n {
                for w in 0..=n {
                    let (lo, hi) = recovery_bounds(n, c, w);
                    assert_eq!(lo, recovery_lower_bound(n, c, w));
                    assert_eq!(hi, recovery_upper_bound(n, c, w));
                    assert!(recovery_within_bounds(n, c, w, lo));
                    assert!(recovery_within_bounds(n, c, w, hi));
                    assert!(!recovery_within_bounds(n, c, w, hi + 1));
                    if lo > 0 {
                        assert!(!recovery_within_bounds(n, c, w, lo - 1));
                    }
                }
            }
        }
    }

    /// Every decoder's output must fall within Theorems 10-11 for every
    /// availability pattern of exhaustive small instances.
    #[test]
    fn decoders_respect_bounds_exhaustively() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut cases: Vec<(Placement, Box<dyn Decoder>)> = Vec::new();
        for (n, c) in [(6usize, 2usize), (6, 3), (8, 2), (8, 4)] {
            let fr = Placement::fractional(n, c).unwrap();
            cases.push((fr.clone(), Box::new(FrDecoder::new(&fr).unwrap())));
            let cr = Placement::cyclic(n, c).unwrap();
            cases.push((cr.clone(), Box::new(CrDecoder::new(&cr).unwrap())));
        }
        for c1 in 0..=4usize {
            let hr = Placement::hybrid(HrParams::new(8, 2, c1, 4 - c1)).unwrap();
            cases.push((hr.clone(), Box::new(HrDecoder::new(&hr).unwrap())));
        }
        for (placement, decoder) in &cases {
            let (n, c) = (placement.n(), placement.c());
            for mask in 0u32..(1 << n) {
                let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                let w = avail.len();
                let got = decoder.decode(&avail, &mut rng).selected().len();
                assert!(
                    got >= alpha_lower_bound(n, c, w),
                    "{} n={n} c={c} mask={mask:b}: {got} < lower",
                    placement.scheme()
                );
                assert!(
                    got <= alpha_upper_bound(n, c, w),
                    "{} n={n} c={c} mask={mask:b}: {got} > upper",
                    placement.scheme()
                );
            }
        }
    }

    /// IS-GC's guaranteed full-recovery tolerance equals classic GC's c − 1
    /// for FR and CR alike (the paper's "same guarantee, graceful beyond").
    #[test]
    fn guaranteed_tolerance_equals_classic_gc() {
        use super::guaranteed_full_recovery_tolerance as tol;
        for (n, c) in [(4usize, 2usize), (6, 2), (6, 3), (8, 2), (8, 4), (9, 3)] {
            let fr = Placement::fractional(n, c).unwrap();
            assert_eq!(tol(&fr), c - 1, "FR({n},{c})");
            let cr = Placement::cyclic(n, c).unwrap();
            assert_eq!(tol(&cr), c - 1, "CR({n},{c})");
        }
        // HR too (Fig. 13 family).
        let hr = Placement::hybrid(HrParams::new(8, 2, 2, 2)).unwrap();
        assert_eq!(tol(&hr), 3, "HR(8,2,2)");
        // c ∤ n: full tiling impossible, tolerance 0.
        let cr = Placement::cyclic(7, 3).unwrap();
        assert_eq!(tol(&cr), 0);
        // Degenerate c = 1: any single straggler loses its partition.
        let sync = Placement::cyclic(5, 1).unwrap();
        assert_eq!(tol(&sync), 0);
    }

    /// Both bounds are tight: some availability pattern attains each.
    #[test]
    fn bounds_are_attained() {
        let n = 8;
        let c = 2;
        let placement = Placement::cyclic(n, c).unwrap();
        let decoder = CrDecoder::new(&placement).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        // Worst case: consecutive workers.
        let consecutive = WorkerSet::from_indices(n, 0..4);
        let got = decoder.decode(&consecutive, &mut rng).selected().len();
        assert_eq!(got, alpha_lower_bound(n, c, 4));
        // Best case: spread workers.
        let spread = WorkerSet::from_indices(n, [0, 2, 4, 6]);
        let got = decoder.decode(&spread, &mut rng).selected().len();
        assert_eq!(got, alpha_upper_bound(n, c, 4));
    }
}
