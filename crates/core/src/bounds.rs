//! Recovery bounds (paper §VII-A, Theorems 10–11).
//!
//! With `w = |W'|` available workers out of `n`, storage factor `c`, the
//! independence number of the induced conflict graph — and hence the number
//! of selectable workers — satisfies
//!
//! ```text
//! min(⌈w/c⌉, ⌊n/c⌋)  ≤  α(G[W'])  ≤  min(w, ⌊n/c⌋)
//! ```
//!
//! for FR and CR (and the `c₁ = 0` HR degeneration, which *is* CR).
//! A genuine hybrid (`c₁ > 0`) has a different extremal structure — its `g`
//! groups of `n₀ ≥ c` pairwise-conflicting workers cap `α` at `g`, which sits
//! *below* `⌊n/c⌋` whenever `n₀ > c` — so the placement-aware
//! [`alpha_bounds_of`] / [`recovery_bounds_of`] entry points dispatch on the
//! scheme and are what the engine and harnesses should use. Multiplying by
//! `c` turns worker counts into recovered-partition counts.

/// Theorem 10: the worst-case number of selectable workers,
/// `min(⌈w/c⌉, ⌊n/c⌋)`.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
///
/// # Examples
///
/// ```
/// // 3 of 4 workers arrive with c = 2: at least 2 workers always combine.
/// assert_eq!(isgc_core::bounds::alpha_lower_bound(4, 2, 3), 2);
/// ```
pub fn alpha_lower_bound(n: usize, c: usize, w: usize) -> usize {
    assert!(c > 0, "c must be positive");
    assert!(w <= n, "w={w} cannot exceed n={n}");
    (w.div_ceil(c)).min(n / c)
}

/// Theorem 11: the best-case number of selectable workers, `min(w, ⌊n/c⌋)`.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
///
/// # Examples
///
/// ```
/// // Even with all 4 workers up, at most n/c = 2 non-conflicting workers
/// // exist when c = 2.
/// assert_eq!(isgc_core::bounds::alpha_upper_bound(4, 2, 4), 2);
/// ```
pub fn alpha_upper_bound(n: usize, c: usize, w: usize) -> usize {
    assert!(c > 0, "c must be positive");
    assert!(w <= n, "w={w} cannot exceed n={n}");
    w.min(n / c)
}

/// Worst-case number of recovered partitions, `c · alpha_lower_bound`.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn recovery_lower_bound(n: usize, c: usize, w: usize) -> usize {
    c * alpha_lower_bound(n, c, w)
}

/// Best-case number of recovered partitions, `c · alpha_upper_bound`, capped
/// at `n`.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn recovery_upper_bound(n: usize, c: usize, w: usize) -> usize {
    (c * alpha_upper_bound(n, c, w)).min(n)
}

/// Both Theorem 10–11 recovery bounds at once, as
/// `(recovery_lower_bound, recovery_upper_bound)` — the interval a
/// bound-checked harness asserts every step's recovered-partition count
/// against.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn recovery_bounds(n: usize, c: usize, w: usize) -> (usize, usize) {
    (recovery_lower_bound(n, c, w), recovery_upper_bound(n, c, w))
}

/// Whether `recovered` partitions from `w` available workers is consistent
/// with Theorems 10–11. The chaos harness calls this on every step of a
/// fault-injected run: a violation means the decoder, not the fault, is
/// broken.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn recovery_within_bounds(n: usize, c: usize, w: usize, recovered: usize) -> bool {
    let (lo, hi) = recovery_bounds(n, c, w);
    (lo..=hi).contains(&recovered)
}

/// One decode checked against Theorems 10–11: the bound interval and the
/// observed recovery, bundled as an emit-ready record — the engine copies
/// it into every step report and the metrics layer turns it into bound
/// histograms and violation counters without recomputing the theorems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundCheck {
    /// Theorem 10 floor on recovered partitions for this arrival count.
    pub lo: usize,
    /// Theorem 11 ceiling on recovered partitions for this arrival count.
    pub hi: usize,
    /// Partitions the decode actually recovered.
    pub recovered: usize,
}

impl BoundCheck {
    /// Whether the observed recovery sits inside `[lo, hi]`.
    pub fn within(&self) -> bool {
        (self.lo..=self.hi).contains(&self.recovered)
    }

    /// Headroom above the Theorem 10 floor (`recovered − lo`, saturating).
    pub fn margin(&self) -> usize {
        self.recovered.saturating_sub(self.lo)
    }
}

/// Checks one decode against Theorems 10–11 and returns the full record.
///
/// # Panics
///
/// Panics if `c == 0` or `w > n`.
pub fn check_recovery(n: usize, c: usize, w: usize, recovered: usize) -> BoundCheck {
    let (lo, hi) = recovery_bounds(n, c, w);
    BoundCheck { lo, hi, recovered }
}

/// Placement-aware bracket on the number of selectable workers `α(G[W'])`,
/// as `(lower, upper)`.
///
/// For FR and CR this is exactly Theorems 10–11,
/// `min(⌈w/c⌉, ⌊n/c⌋) ≤ α ≤ min(w, ⌊n/c⌋)`. For a *genuine* hybrid
/// (`c₁ > 0`) the Theorem 6 constraint `n₀ ≤ c + c₁` makes workers within a
/// group pairwise conflict, while workers in different groups conflict only
/// through the `c₂` global cyclic rows (circular distance `< c₂ < n₀`), so
///
/// ```text
/// ⌈w/n₀⌉  ≤  α(G[W'])  ≤  min(w, g)
/// ```
///
/// with both ends attained (an adversary packs arrivals into ⌈w/n₀⌉ full
/// groups; a friend spreads one arrival per group, `n₀ > c₂` apart). At the
/// `n₀ = c` FR corner this is Theorems 10–11 verbatim (`g = n/c`). The naive
/// `⌊n/c⌋` ceiling — and the `⌈w/c⌉` floor it caps — is *wrong* for
/// `n₀ > c` hybrids, which the full Theorem 6-range decoder sweep exposed;
/// `hr_bounds_exhaustive_over_theorem6_range` below verifies the hybrid
/// bracket against the exact `α` on every availability pattern of every
/// valid small shape.
///
/// # Panics
///
/// Panics if `w > n`.
///
/// # Examples
///
/// ```
/// use isgc_core::{bounds, HrParams, Placement};
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// // Genuine hybrid HR(14, c₁=3, c₂=1): g = 2 groups of n₀ = 7 > c = 4.
/// // α is capped at g = 2, below ⌊n/c⌋ = 3 — with all 14 workers up the
/// // naive Theorem 10 floor min(⌈14/4⌉, 3) = 3 already exceeds it.
/// let p = Placement::hybrid(HrParams::new(14, 2, 3, 1))?;
/// assert_eq!(bounds::alpha_bounds_of(&p, 14), (2, 2));
/// assert_eq!(bounds::alpha_bounds_of(&p, 3), (1, 2));
/// # Ok(())
/// # }
/// ```
pub fn alpha_bounds_of(placement: &crate::Placement, w: usize) -> (usize, usize) {
    let n = placement.n();
    assert!(w <= n, "w={w} cannot exceed n={n}");
    match placement.hr_params() {
        Some(prm) if prm.c1() > 0 => (w.div_ceil(prm.n0()), w.min(prm.g())),
        _ => {
            let c = placement.c();
            (alpha_lower_bound(n, c, w), alpha_upper_bound(n, c, w))
        }
    }
}

/// Placement-aware recovered-partition bracket: `c · alpha_bounds_of`,
/// ceiling capped at `n`.
///
/// # Panics
///
/// Panics if `w > n`.
pub fn recovery_bounds_of(placement: &crate::Placement, w: usize) -> (usize, usize) {
    let c = placement.c();
    let (lo, hi) = alpha_bounds_of(placement, w);
    (c * lo, (c * hi).min(placement.n()))
}

/// Whether `recovered` partitions from `w` available workers is consistent
/// with the placement-aware bracket of [`recovery_bounds_of`].
///
/// # Panics
///
/// Panics if `w > n`.
pub fn recovery_within_bounds_of(placement: &crate::Placement, w: usize, recovered: usize) -> bool {
    let (lo, hi) = recovery_bounds_of(placement, w);
    (lo..=hi).contains(&recovered)
}

/// Checks one decode against the placement-aware bracket and returns the
/// full [`BoundCheck`] record — what the step engine emits on every decode.
///
/// # Panics
///
/// Panics if `w > n`.
pub fn check_recovery_of(placement: &crate::Placement, w: usize, recovered: usize) -> BoundCheck {
    let (lo, hi) = recovery_bounds_of(placement, w);
    BoundCheck { lo, hi, recovered }
}

/// The largest number of stragglers `s` for which **full** recovery of all
/// `n` partition gradients is guaranteed for *every* straggler pattern —
/// computed exactly by checking the worst availability pattern at each `s`.
///
/// For FR and CR with `c | n` this equals classic GC's `c − 1` (both schemes
/// place each partition on `c` workers, and an adversary silencing all `c`
/// replicas of one partition defeats any code), which is exactly the paper's
/// point: IS-GC matches GC's guaranteed tolerance *and* degrades gracefully
/// beyond it.
///
/// Exponential in `n` (it enumerates worst cases); intended for `n ≤ 20`.
///
/// # Panics
///
/// Panics if `n > 20`.
///
/// # Examples
///
/// ```
/// use isgc_core::bounds::guaranteed_full_recovery_tolerance;
/// use isgc_core::Placement;
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let p = Placement::cyclic(8, 3)?;
/// // Any 2 stragglers still leave full recovery impossible to block? No —
/// // tolerance is c − 1 = 2 only if 8 % 3 == 0; here partial coverage caps it.
/// let t = guaranteed_full_recovery_tolerance(&p);
/// assert!(t <= 2);
/// # Ok(())
/// # }
/// ```
pub fn guaranteed_full_recovery_tolerance(placement: &crate::Placement) -> usize {
    let n = placement.n();
    assert!(n <= 20, "exhaustive tolerance check capped at n = 20");
    let graph = crate::ConflictGraph::from_placement(placement);
    // Full recovery means every partition is covered by the selected
    // independent set, i.e. recovered_count == n, i.e. alpha * c == n AND
    // the partitions covered are all n. Since selected workers are
    // non-conflicting, their partition sets are disjoint: alpha * c == n
    // already implies full coverage.
    let full_alpha = n / placement.c();
    if !n.is_multiple_of(placement.c()) {
        return 0; // c ∤ n: even all workers can't tile the partitions
    }
    for s in 1..n {
        let w = n - s;
        // Check every availability pattern of size w.
        let mut mask: u64 = (1u64 << w) - 1;
        let limit: u64 = 1u64 << n;
        while mask < limit {
            let avail = crate::WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
            if graph.alpha(&avail) < full_alpha {
                return s - 1;
            }
            let c0 = mask & mask.wrapping_neg();
            let r = mask + c0;
            mask = (((r ^ mask) >> 2) / c0) | r;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{CrDecoder, Decoder, FrDecoder, HrDecoder};
    use crate::{HrParams, Placement, WorkerSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounds_are_consistent() {
        for n in 1..=16 {
            for c in 1..=n {
                for w in 0..=n {
                    let lo = alpha_lower_bound(n, c, w);
                    let hi = alpha_upper_bound(n, c, w);
                    assert!(lo <= hi, "n={n}, c={c}, w={w}");
                    assert!(recovery_lower_bound(n, c, w) <= recovery_upper_bound(n, c, w));
                    assert!(recovery_upper_bound(n, c, w) <= n);
                }
            }
        }
    }

    #[test]
    fn zero_available_recovers_zero() {
        assert_eq!(alpha_lower_bound(8, 2, 0), 0);
        assert_eq!(alpha_upper_bound(8, 2, 0), 0);
    }

    #[test]
    fn full_availability_hits_n_over_c() {
        assert_eq!(alpha_lower_bound(8, 2, 8), 4);
        assert_eq!(alpha_upper_bound(8, 2, 8), 4);
        assert_eq!(recovery_upper_bound(8, 2, 8), 8);
        // Non-divisible case: CR(7, 3) can select at most 2 workers.
        assert_eq!(alpha_upper_bound(7, 3, 7), 2);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn w_above_n_panics() {
        alpha_lower_bound(4, 2, 5);
    }

    #[test]
    fn recovery_bounds_pair_matches_parts() {
        for n in 1..=12 {
            for c in 1..=n {
                for w in 0..=n {
                    let (lo, hi) = recovery_bounds(n, c, w);
                    assert_eq!(lo, recovery_lower_bound(n, c, w));
                    assert_eq!(hi, recovery_upper_bound(n, c, w));
                    assert!(recovery_within_bounds(n, c, w, lo));
                    assert!(recovery_within_bounds(n, c, w, hi));
                    assert!(!recovery_within_bounds(n, c, w, hi + 1));
                    if lo > 0 {
                        assert!(!recovery_within_bounds(n, c, w, lo - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn check_recovery_agrees_with_predicate() {
        for n in 1..=10 {
            for c in 1..=n {
                for w in 0..=n {
                    for recovered in 0..=n {
                        let check = check_recovery(n, c, w, recovered);
                        assert_eq!(check.within(), recovery_within_bounds(n, c, w, recovered));
                        assert_eq!((check.lo, check.hi), recovery_bounds(n, c, w));
                        assert_eq!(check.margin(), recovered.saturating_sub(check.lo));
                    }
                }
            }
        }
    }

    /// Every decoder's output must fall within the placement-aware bounds
    /// for every availability pattern of exhaustive small instances —
    /// including genuine hybrids with `n₀ > c`, where the naive Theorems
    /// 10–11 formulas do not apply.
    #[test]
    fn decoders_respect_bounds_exhaustively() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut cases: Vec<(Placement, Box<dyn Decoder>)> = Vec::new();
        for (n, c) in [(6usize, 2usize), (6, 3), (8, 2), (8, 4)] {
            let fr = Placement::fractional(n, c).unwrap();
            cases.push((fr.clone(), Box::new(FrDecoder::new(&fr).unwrap())));
            let cr = Placement::cyclic(n, c).unwrap();
            cases.push((cr.clone(), Box::new(CrDecoder::new(&cr).unwrap())));
        }
        for c1 in 0..=4usize {
            let hr = Placement::hybrid(HrParams::new(8, 2, c1, 4 - c1)).unwrap();
            cases.push((hr.clone(), Box::new(HrDecoder::new(&hr).unwrap())));
        }
        // Genuine n₀ > c hybrids (full-range shapes the FR corner misses).
        for prm in [HrParams::new(6, 2, 1, 1), HrParams::new(10, 2, 3, 1)] {
            prm.validate().unwrap();
            let hr = Placement::hybrid(prm).unwrap();
            cases.push((hr.clone(), Box::new(HrDecoder::new(&hr).unwrap())));
        }
        for (placement, decoder) in &cases {
            let n = placement.n();
            for mask in 0u32..(1 << n) {
                let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
                let w = avail.len();
                let got = decoder.decode(&avail, &mut rng).selected().len();
                let (lo, hi) = alpha_bounds_of(placement, w);
                assert!(
                    got >= lo,
                    "{} n={n} mask={mask:b}: {got} < lower {lo}",
                    placement.scheme()
                );
                assert!(
                    got <= hi,
                    "{} n={n} mask={mask:b}: {got} > upper {hi}",
                    placement.scheme()
                );
            }
        }
    }

    /// The hybrid bracket `⌈w/n₀⌉ ≤ α(G[W']) ≤ min(w, g)` against the exact
    /// independence number, exhaustively over every availability pattern of
    /// every valid genuine-HR shape with `n ≤ 12` (the Theorem 6 range
    /// `c ≤ n₀ ≤ 2c − 1`, every admissible `c₁ > 0`) — and both ends must be
    /// attained somewhere whenever the bracket is non-degenerate.
    #[test]
    fn hr_bounds_exhaustive_over_theorem6_range() {
        let mut shapes = 0usize;
        for g in 2usize..=3 {
            for c in 2usize..=4 {
                for n0 in c..=(2 * c - 1) {
                    let n = g * n0;
                    if n > 12 {
                        continue;
                    }
                    for c1 in 1..=c.min(n0) {
                        let prm = HrParams::new(n, g, c1, c - c1);
                        if prm.validate().is_err() {
                            continue;
                        }
                        let placement = Placement::hybrid(prm).unwrap();
                        let graph = crate::ConflictGraph::from_placement(&placement);
                        for w in 1..=n {
                            let (lo, hi) = alpha_bounds_of(&placement, w);
                            let mut lo_attained = false;
                            let mut hi_attained = false;
                            let mut mask: u32 = (1 << w) - 1;
                            let limit: u32 = 1 << n;
                            while mask < limit {
                                let avail = WorkerSet::from_indices(
                                    n,
                                    (0..n).filter(|&i| mask & (1 << i) != 0),
                                );
                                let alpha = graph.alpha(&avail);
                                assert!(
                                    (lo..=hi).contains(&alpha),
                                    "{prm:?} w={w} mask={mask:b}: alpha={alpha} outside [{lo}, {hi}]"
                                );
                                lo_attained |= alpha == lo;
                                hi_attained |= alpha == hi;
                                // Next mask with the same popcount.
                                let c0 = mask & mask.wrapping_neg();
                                let r = mask + c0;
                                mask = (((r ^ mask) >> 2) / c0) | r;
                            }
                            assert!(lo_attained, "{prm:?} w={w}: floor {lo} never attained");
                            assert!(hi_attained, "{prm:?} w={w}: ceiling {hi} never attained");
                        }
                        shapes += 1;
                    }
                }
            }
        }
        assert!(
            shapes >= 10,
            "exhaustive sweep covered only {shapes} shapes"
        );
    }

    /// On FR and CR the placement-aware entry points agree exactly with the
    /// raw Theorem 10–11 formulas.
    #[test]
    fn placement_aware_bounds_match_formulas_on_fr_cr() {
        for (n, c) in [(6usize, 2usize), (8, 4), (9, 3), (7, 3)] {
            let mut placements = vec![Placement::cyclic(n, c).unwrap()];
            if n.is_multiple_of(c) {
                placements.push(Placement::fractional(n, c).unwrap());
                // c₁ = 0 HR is CR by construction.
                placements.push(Placement::hybrid(HrParams::new(n, 1, 0, c)).unwrap());
            }
            for p in &placements {
                for w in 0..=n {
                    assert_eq!(
                        alpha_bounds_of(p, w),
                        (alpha_lower_bound(n, c, w), alpha_upper_bound(n, c, w)),
                        "{} n={n} c={c} w={w}",
                        p.scheme()
                    );
                    assert_eq!(recovery_bounds_of(p, w), recovery_bounds(n, c, w));
                    for recovered in 0..=n {
                        let check = check_recovery_of(p, w, recovered);
                        assert_eq!(check, check_recovery(n, c, w, recovered));
                        assert_eq!(check.within(), recovery_within_bounds_of(p, w, recovered));
                    }
                }
            }
        }
    }

    /// IS-GC's guaranteed full-recovery tolerance equals classic GC's c − 1
    /// for FR and CR alike (the paper's "same guarantee, graceful beyond").
    #[test]
    fn guaranteed_tolerance_equals_classic_gc() {
        use super::guaranteed_full_recovery_tolerance as tol;
        for (n, c) in [(4usize, 2usize), (6, 2), (6, 3), (8, 2), (8, 4), (9, 3)] {
            let fr = Placement::fractional(n, c).unwrap();
            assert_eq!(tol(&fr), c - 1, "FR({n},{c})");
            let cr = Placement::cyclic(n, c).unwrap();
            assert_eq!(tol(&cr), c - 1, "CR({n},{c})");
        }
        // HR too (Fig. 13 family).
        let hr = Placement::hybrid(HrParams::new(8, 2, 2, 2)).unwrap();
        assert_eq!(tol(&hr), 3, "HR(8,2,2)");
        // c ∤ n: full tiling impossible, tolerance 0.
        let cr = Placement::cyclic(7, 3).unwrap();
        assert_eq!(tol(&cr), 0);
        // Degenerate c = 1: any single straggler loses its partition.
        let sync = Placement::cyclic(5, 1).unwrap();
        assert_eq!(tol(&sync), 0);
    }

    /// Both bounds are tight: some availability pattern attains each.
    #[test]
    fn bounds_are_attained() {
        let n = 8;
        let c = 2;
        let placement = Placement::cyclic(n, c).unwrap();
        let decoder = CrDecoder::new(&placement).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        // Worst case: consecutive workers.
        let consecutive = WorkerSet::from_indices(n, 0..4);
        let got = decoder.decode(&consecutive, &mut rng).selected().len();
        assert_eq!(got, alpha_lower_bound(n, c, 4));
        // Best case: spread workers.
        let spread = WorkerSet::from_indices(n, [0, 2, 4, 6]);
        let got = decoder.decode(&spread, &mut rng).selected().len();
        assert_eq!(got, alpha_upper_bound(n, c, 4));
    }
}
