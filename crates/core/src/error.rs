//! Crate-wide error type.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by `isgc-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A placement or code was requested with parameters outside its valid
    /// range (e.g. FR with `c ∤ n`, or HR violating Theorem 6).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Classic gradient coding could not decode: more than `c − 1` workers
    /// straggled, so the all-ones vector is outside the span of the received
    /// codeword coefficients.
    TooManyStragglers {
        /// Number of workers that responded.
        available: usize,
        /// Minimum number of workers classic GC needs (`n − c + 1`).
        required: usize,
    },
    /// A decoder was invoked with a worker set sized for a different cluster.
    WorkerSetMismatch {
        /// `n` the decoder was built for.
        expected: usize,
        /// Universe size of the supplied [`crate::WorkerSet`].
        got: usize,
    },
    /// A decode selection is not an independent set: two selected workers
    /// store the same partition, so summing their codewords would count that
    /// partition's gradient twice.
    ConflictingSelection {
        /// The selected workers, sorted.
        selected: Vec<usize>,
        /// A partition stored by more than one selected worker.
        partition: usize,
    },
}

impl Error {
    /// Convenience constructor for [`Error::InvalidParameters`].
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        Error::InvalidParameters {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameters { reason } => {
                write!(f, "invalid parameters: {reason}")
            }
            Error::TooManyStragglers {
                available,
                required,
            } => write!(
                f,
                "classic gradient coding needs at least {required} workers, got {available}"
            ),
            Error::WorkerSetMismatch { expected, got } => write!(
                f,
                "worker set universe mismatch: decoder built for n={expected}, set has n={got}"
            ),
            Error::ConflictingSelection {
                selected,
                partition,
            } => write!(
                f,
                "selected workers conflict: partition {partition} appears more than once in {selected:?}"
            ),
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::invalid("c must divide n")
            .to_string()
            .contains("c must divide n"));
        let e = Error::TooManyStragglers {
            available: 2,
            required: 3,
        };
        assert!(e.to_string().contains("at least 3"));
        let e = Error::WorkerSetMismatch {
            expected: 4,
            got: 8,
        };
        assert!(e.to_string().contains("n=4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + StdError + 'static>() {}
        assert_bounds::<Error>();
    }
}
