//! Expected recovery analysis: `E[α(G[W'])]` when `W'` is a uniformly random
//! `w`-subset of the workers.
//!
//! The paper bounds `α(G[W'])` per-instance (Theorems 10–11); experiment
//! planning also wants the *expectation* — e.g. Fig. 13(a) plots exactly
//! this quantity. FR admits a closed form; general placements get an
//! exhaustive enumeration (small `n`) and a Monte-Carlo estimator.

use rand::Rng;

use crate::decode::Decoder;
use crate::{ConflictGraph, WorkerSet};

/// Exact `E[α]` for `FR(n, c)` under a uniform random `w`-subset.
///
/// A group survives iff at least one of its `c` workers is drawn, so by
/// linearity `E[α] = (n/c) · (1 − C(n−c, w) / C(n, w))`.
///
/// # Panics
///
/// Panics if `c == 0`, `c ∤ n`, or `w > n`.
///
/// # Examples
///
/// ```
/// use isgc_core::expectation::fr_expected_alpha;
///
/// // All workers respond: every group survives.
/// assert_eq!(fr_expected_alpha(8, 2, 8), 4.0);
/// // Nobody responds: nothing survives.
/// assert_eq!(fr_expected_alpha(8, 2, 0), 0.0);
/// ```
pub fn fr_expected_alpha(n: usize, c: usize, w: usize) -> f64 {
    assert!(c > 0 && n.is_multiple_of(c), "FR requires c | n");
    assert!(w <= n, "w={w} exceeds n={n}");
    let groups = (n / c) as f64;
    groups * (1.0 - binomial_ratio(n - c, n, w))
}

/// `C(a, w) / C(b, w)` computed stably as a product (`a ≤ b`).
fn binomial_ratio(a: usize, b: usize, w: usize) -> f64 {
    debug_assert!(a <= b);
    if w > a {
        return 0.0;
    }
    // C(a,w)/C(b,w) = Π_{i=0}^{w-1} (a - i) / (b - i).
    (0..w).fold(1.0, |acc, i| acc * (a - i) as f64 / (b - i) as f64)
}

/// Exact `E[α(G[W'])]` by enumerating **every** `w`-subset of the vertices.
///
/// Exponential in `n`; intended for `n ≤ 20` (used to validate the closed
/// form and the Monte-Carlo estimator).
///
/// # Panics
///
/// Panics if `w > n` or `n > 25` (enumeration would be excessive).
pub fn expected_alpha_exhaustive(graph: &ConflictGraph, w: usize) -> f64 {
    let n = graph.n();
    assert!(w <= n, "w={w} exceeds n={n}");
    assert!(n <= 25, "exhaustive enumeration capped at n = 25");
    let mut total = 0.0f64;
    let mut count = 0u64;
    // Iterate all n-bit masks with exactly w bits (Gosper's hack).
    if w == 0 {
        return 0.0;
    }
    let mut mask: u64 = (1u64 << w) - 1;
    let limit: u64 = 1u64 << n;
    while mask < limit {
        let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
        total += graph.alpha(&avail) as f64;
        count += 1;
        // Next mask with the same popcount.
        let c0 = mask & mask.wrapping_neg();
        let r = mask + c0;
        mask = (((r ^ mask) >> 2) / c0) | r;
    }
    total / count as f64
}

/// The exact probability mass function of `α(G[W'])` over uniform random
/// `w`-subsets: entry `k` is `P[α = k]`.
///
/// Enables tail statements like "with w = 4 of 8, at least 2 workers are
/// selectable with probability 0.97" — the distributional refinement of
/// Theorems 10–11 (whose bounds are the support's endpoints).
///
/// # Panics
///
/// Panics if `w > n` or `n > 25`.
///
/// # Examples
///
/// ```
/// use isgc_core::expectation::alpha_distribution;
/// use isgc_core::{ConflictGraph, Placement};
///
/// # fn main() -> Result<(), isgc_core::Error> {
/// let g = ConflictGraph::from_placement(&Placement::cyclic(4, 2)?);
/// let pmf = alpha_distribution(&g, 2);
/// // Of the 6 pairs, {0,2} and {1,3} decode to 2 workers; the rest to 1.
/// assert!((pmf[1] - 4.0 / 6.0).abs() < 1e-12);
/// assert!((pmf[2] - 2.0 / 6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn alpha_distribution(graph: &ConflictGraph, w: usize) -> Vec<f64> {
    let n = graph.n();
    assert!(w <= n, "w={w} exceeds n={n}");
    assert!(n <= 25, "exhaustive enumeration capped at n = 25");
    let mut counts = vec![0u64; n + 1];
    let mut total = 0u64;
    if w == 0 {
        let mut pmf = vec![0.0; n + 1];
        pmf[0] = 1.0;
        return pmf;
    }
    let mut mask: u64 = (1u64 << w) - 1;
    let limit: u64 = 1u64 << n;
    while mask < limit {
        let avail = WorkerSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
        counts[graph.alpha(&avail)] += 1;
        total += 1;
        let c0 = mask & mask.wrapping_neg();
        let r = mask + c0;
        mask = (((r ^ mask) >> 2) / c0) | r;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / total as f64)
        .collect()
}

/// Monte-Carlo `E[α]` using an actual decoder (so it also validates decoder
/// optimality statistically).
///
/// # Panics
///
/// Panics if `w > decoder.n()` or `trials == 0`.
pub fn expected_alpha_monte_carlo<R: Rng>(
    decoder: &dyn Decoder,
    w: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let n = decoder.n();
    assert!(w <= n, "w={w} exceeds n={n}");
    assert!(trials > 0, "trials must be positive");
    let mut total = 0usize;
    for _ in 0..trials {
        let avail = WorkerSet::random_subset(n, w, rng);
        total += decoder.decode(&avail, rng).selected().len();
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{CrDecoder, FrDecoder};
    use crate::Placement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fr_closed_form_matches_enumeration() {
        for (n, c) in [(6usize, 2usize), (6, 3), (8, 2), (8, 4), (12, 3)] {
            let graph = ConflictGraph::from_placement(&Placement::fractional(n, c).unwrap());
            for w in 0..=n {
                let exact = expected_alpha_exhaustive(&graph, w);
                let closed = fr_expected_alpha(n, c, w);
                assert!(
                    (exact - closed).abs() < 1e-9,
                    "n={n}, c={c}, w={w}: {exact} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn fr_closed_form_edge_cases() {
        assert_eq!(fr_expected_alpha(8, 2, 0), 0.0);
        assert_eq!(fr_expected_alpha(8, 2, 8), 4.0);
        // Single group.
        assert_eq!(fr_expected_alpha(4, 4, 1), 1.0);
        // w=7 of 8: C(6,7)=0 so all groups survive.
        assert_eq!(fr_expected_alpha(8, 2, 7), 4.0);
    }

    #[test]
    fn distribution_sums_to_one_and_matches_expectation() {
        for (n, c) in [(6usize, 2usize), (8, 3), (9, 3)] {
            let graph = ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap());
            for w in 0..=n {
                let pmf = alpha_distribution(&graph, w);
                let total: f64 = pmf.iter().sum();
                assert!((total - 1.0).abs() < 1e-12, "n={n}, c={c}, w={w}");
                let mean: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
                let direct = expected_alpha_exhaustive(&graph, w);
                assert!((mean - direct).abs() < 1e-12, "n={n}, c={c}, w={w}");
                // Support respects the Theorem 10-11 bounds.
                use crate::bounds::{alpha_lower_bound, alpha_upper_bound};
                for (k, &p) in pmf.iter().enumerate() {
                    if p > 0.0 {
                        assert!(k >= alpha_lower_bound(n, c, w));
                        assert!(k <= alpha_upper_bound(n, c, w));
                    }
                }
            }
        }
    }

    #[test]
    fn distribution_w_zero_is_point_mass() {
        let graph = ConflictGraph::from_placement(&Placement::cyclic(5, 2).unwrap());
        let pmf = alpha_distribution(&graph, 0);
        assert_eq!(pmf[0], 1.0);
        assert!(pmf[1..].iter().all(|&p| p == 0.0));
    }

    #[test]
    fn monte_carlo_matches_enumeration() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Placement::cyclic(10, 3).unwrap();
        let graph = ConflictGraph::from_placement(&p);
        let decoder = CrDecoder::new(&p).unwrap();
        for w in [3usize, 5, 8] {
            let exact = expected_alpha_exhaustive(&graph, w);
            let mc = expected_alpha_monte_carlo(&decoder, w, 20_000, &mut rng);
            assert!((exact - mc).abs() < 0.03, "w={w}: {exact} vs {mc}");
        }
    }

    #[test]
    fn monte_carlo_matches_closed_form_for_fr() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Placement::fractional(12, 3).unwrap();
        let decoder = FrDecoder::new(&p).unwrap();
        for w in [3usize, 6, 9] {
            let mc = expected_alpha_monte_carlo(&decoder, w, 20_000, &mut rng);
            let closed = fr_expected_alpha(12, 3, w);
            assert!((closed - mc).abs() < 0.03, "w={w}: {closed} vs {mc}");
        }
    }

    #[test]
    fn fr_expectation_dominates_cr_expectation() {
        // The expectation version of §V-C's claim.
        for (n, c) in [(8usize, 2usize), (12, 3)] {
            let fr = ConflictGraph::from_placement(&Placement::fractional(n, c).unwrap());
            let cr = ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap());
            for w in 1..=n {
                let e_fr = expected_alpha_exhaustive(&fr, w);
                let e_cr = expected_alpha_exhaustive(&cr, w);
                assert!(e_fr >= e_cr - 1e-12, "n={n}, c={c}, w={w}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn exhaustive_rejects_large_n() {
        let g = ConflictGraph::from_edges(26, &[]);
        let _ = expected_alpha_exhaustive(&g, 2);
    }
}
