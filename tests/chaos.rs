//! Randomized end-to-end stress: arbitrary (scheme, placement, policy,
//! cluster, model) combinations must uphold the system invariants — no
//! panics, valid recovery fractions, bounded step counts, consistent
//! bookkeeping — across hundreds of configurations.

use isgc::core::{bounds, HrParams, Placement};
use isgc::ml::dataset::Dataset;
use isgc::ml::model::{LinearRegression, Mlp, SoftmaxRegression};
use isgc::simnet::cluster::{ClusterConfig, StragglerSelection};
use isgc::simnet::delay::Delay;
use isgc::simnet::policy::WaitPolicy;
use isgc::simnet::trainer::{
    train, CodingScheme, GradientNormalization, TrainReport, TrainingConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_placement(n: usize, rng: &mut StdRng) -> Placement {
    loop {
        match rng.random_range(0..3) {
            0 => {
                // FR: pick a divisor of n.
                let divisors: Vec<usize> = (1..=n).filter(|c| n.is_multiple_of(*c)).collect();
                let c = divisors[rng.random_range(0..divisors.len())];
                return Placement::fractional(n, c).expect("c | n by construction");
            }
            1 => {
                let c = rng.random_range(1..=n);
                return Placement::cyclic(n, c).expect("valid CR");
            }
            _ => {
                // HR: random valid parameters, retry on rejection.
                let divisors: Vec<usize> = (1..=n).filter(|g| n.is_multiple_of(*g)).collect();
                let g = divisors[rng.random_range(0..divisors.len())];
                let n0 = n / g;
                let c = rng.random_range(1..=n0);
                let c1 = rng.random_range(0..=c.min(n0));
                let params = HrParams::new(n, g, c1, c - c1);
                if params.validate().is_ok() {
                    return Placement::hybrid(params).expect("validated");
                }
            }
        }
    }
}

fn random_cluster(n: usize, rng: &mut StdRng) -> ClusterConfig {
    let straggler_delay = match rng.random_range(0..4) {
        0 => Delay::Exponential {
            mean: rng.random_range(0.1..3.0),
        },
        1 => Delay::Constant(rng.random_range(0.0..2.0)),
        2 => Delay::Pareto {
            scale: 0.2,
            shape: 2.5,
        },
        _ => Delay::none(),
    };
    let stragglers = match rng.random_range(0..4) {
        0 => StragglerSelection::None,
        1 => StragglerSelection::RandomEachStep(rng.random_range(0..=n)),
        2 => StragglerSelection::Probabilistic(rng.random_range(0.0..0.9)),
        _ => StragglerSelection::Fixed((0..n).filter(|_| rng.random_range(0..3) == 0).collect()),
    };
    ClusterConfig {
        n,
        compute_time_per_partition: rng.random_range(0.0..0.3),
        comm_time: rng.random_range(0.0..0.3),
        jitter: Delay::Uniform {
            lo: 0.0,
            hi: rng.random_range(0.001..0.1),
        },
        straggler_delay,
        stragglers,
    }
}

fn check_invariants(
    report: &TrainReport,
    n: usize,
    c: usize,
    max_steps: usize,
    summed_scheme: bool,
) {
    let steps = report.step_count();
    assert!(steps >= 1 && steps <= max_steps);
    assert_eq!(report.loss_curve().len(), steps);
    assert_eq!(report.recovered_fractions().len(), steps);
    assert_eq!(report.step_durations().len(), steps);
    assert_eq!(report.codewords_received().len(), steps);
    assert!(report.sim_time() >= 0.0 && report.sim_time().is_finite());
    for (&f, &d) in report
        .recovered_fractions()
        .iter()
        .zip(&report.step_durations())
    {
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
        assert!(d >= 0.0 && d.is_finite(), "duration {d}");
        if summed_scheme {
            // Recovered fraction is a multiple of c/n (whole workers).
            let units = f * n as f64 / c as f64;
            assert!(
                (units - units.round()).abs() < 1e-9,
                "fraction {f} not a multiple of c/n"
            );
        }
    }
    for &loss in &report.loss_curve() {
        assert!(loss.is_finite(), "loss diverged: {loss}");
    }
    for &m in &report.codewords_received() {
        assert!(m <= n);
    }
    assert!(report.failed_decodes() <= steps);
}

#[test]
fn random_configurations_uphold_invariants() {
    let mut rng = StdRng::seed_from_u64(0xC4A0_5EED);
    for trial in 0..60u64 {
        let n = rng.random_range(2..=8usize);
        let placement = random_placement(n, &mut rng);
        let scheme = match rng.random_range(0..4) {
            0 => CodingScheme::IgnoreStragglerSgd,
            1 => CodingScheme::IsGc(placement.clone()),
            2 => CodingScheme::IsGcArrivalOrder(placement.clone()),
            _ => CodingScheme::ClassicCr {
                c: rng.random_range(1..=n),
            },
        };
        let policy = match rng.random_range(0..3) {
            0 => WaitPolicy::WaitForCount(rng.random_range(1..=n)),
            1 => WaitPolicy::Deadline(rng.random_range(0.05..2.0)),
            _ => WaitPolicy::Ramp {
                start: 1,
                end: rng.random_range(1..=n),
                ramp_steps: rng.random_range(0..20),
            },
        };
        let cluster = random_cluster(n, &mut rng);
        let max_steps = rng.random_range(3..25usize);
        let config = TrainingConfig {
            batch_size: rng.random_range(1..16usize),
            learning_rate: rng.random_range(0.001..0.1),
            momentum: if rng.random_range(0..2) == 0 {
                0.0
            } else {
                0.5
            },
            loss_threshold: 0.0,
            max_steps,
            seed: trial,
            normalization: if rng.random_range(0..2) == 0 {
                GradientNormalization::SumOfPartitionMeans
            } else {
                GradientNormalization::MeanOverRecovered
            },
            ..TrainingConfig::default()
        };
        // Effective c for invariant checks depends on the scheme.
        let eff_c = scheme.c();
        let dataset = Dataset::gaussian_classification(32 * n.max(2), 5, 3, 3.0, trial);
        let report = match rng.random_range(0..3) {
            0 => train(
                &SoftmaxRegression::new(5, 3),
                &dataset,
                &scheme,
                &policy,
                cluster,
                &config,
            ),
            1 => train(
                &Mlp::new(5, 6, 3),
                &dataset,
                &scheme,
                &policy,
                cluster,
                &config,
            ),
            _ => {
                let reg = Dataset::synthetic_regression(32 * n.max(2), 5, 0.2, trial);
                train(
                    &LinearRegression::new(5),
                    &reg,
                    &scheme,
                    &policy,
                    cluster,
                    &config,
                )
            }
        };
        let summed = !matches!(scheme, CodingScheme::ClassicCr { .. });
        check_invariants(&report, n, eff_c.max(1), max_steps, summed);
        // Count-policy recovery must respect the Theorem 10 lower bound
        // whenever IS-GC decoded a non-empty arrival set.
        if let (CodingScheme::IsGc(p), WaitPolicy::WaitForCount(w)) = (&scheme, &policy) {
            let lo = bounds::recovery_lower_bound(p.n(), p.c(), *w) as f64 / p.n() as f64;
            for &f in &report.recovered_fractions() {
                assert!(f >= lo - 1e-9, "trial {trial}: fraction {f} < bound {lo}");
            }
        }
    }
}
