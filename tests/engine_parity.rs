//! Cross-backend determinism: the TCP loopback cluster and the simulator
//! drive the *same* `isgc_engine::StepEngine`, so given the same seed and
//! the same straggler schedule they must produce identical per-step
//! recovered-partition fingerprints and bitwise-identical loss curves —
//! real sockets and thread scheduling contribute timing, never math.
//!
//! The straggler set is static (the TCP worker drains its parameter backlog
//! to the newest step, so a worker that straggles *sometimes* can skip
//! steps in wall-clock-dependent ways; one that straggles *always* is
//! simply ignored every step by both backends).

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use isgc_core::Placement;
use isgc_ml::dataset::Dataset;
use isgc_ml::model::LinearRegression;
use isgc_net::{run_worker, Master, NetConfig, NetTrainReport, WaitPolicy, WorkerOptions};
use isgc_simnet::policy::WaitPolicy as SimWaitPolicy;
use isgc_simnet::trace::{StragglerTrace, TraceClusterSim};
use isgc_simnet::trainer::{train_on_trace, CodingScheme, TrainReport, TrainingConfig};

const FEATURES: usize = 5;
const SAMPLES: usize = 240;
const SEED: u64 = 9090;
const STEPS: usize = 4;
const BATCH: usize = 8;
const LR: f64 = 0.02;

/// Workers that always straggle; everyone else is fast. `|S| = 2` of 6.
const STRAGGLERS: [usize; 2] = [1, 4];
const N: usize = 6;
const C: usize = 2;
const W: usize = 4;

fn shared_dataset() -> Dataset {
    Dataset::synthetic_regression(SAMPLES, FEATURES, 0.05, SEED)
}

/// Runs a real loopback TCP cluster where the stragglers sleep far longer
/// than the fast workers take, so `FirstW(4)` ignores exactly them.
fn run_net(placement: &Placement) -> NetTrainReport {
    let mut config = NetConfig::new(placement.clone(), WaitPolicy::FirstW(W));
    config.batch_size = BATCH;
    config.learning_rate = LR;
    config.loss_threshold = 0.0;
    config.max_steps = STEPS;
    config.seed = SEED;
    // Keep sleeping stragglers "alive": the schedule, not the heartbeat
    // sweep, decides who is ignored.
    config.heartbeat_timeout = Duration::from_secs(5);
    config.register_timeout = Duration::from_secs(10);

    let master = Master::bind("127.0.0.1:0").expect("bind loopback");
    let addr = master.local_addr().expect("local addr");
    let model = LinearRegression::new(FEATURES);
    let dataset = shared_dataset();
    let master_handle =
        thread::spawn(move || master.run(&model, &dataset, &config).expect("master run"));

    let workers: Vec<_> = (0..N)
        .map(|_| {
            let options = WorkerOptions::with_delay(Arc::new(|w, _step| {
                if STRAGGLERS.contains(&w) {
                    Duration::from_millis(400)
                } else {
                    Duration::ZERO
                }
            }));
            thread::spawn(move || {
                run_worker(addr, &options, |_assignment| {
                    (LinearRegression::new(FEATURES), shared_dataset())
                })
                .expect("worker run")
            })
        })
        .collect();

    let report = master_handle.join().expect("master thread");
    for w in workers {
        let _ = w.join().expect("worker thread");
    }
    report
}

/// Replays the identical straggler schedule through the simulator: the
/// stragglers' upload delay dwarfs everyone else's, so `WaitForCount(4)`
/// collects exactly the fast four each step.
fn run_sim(placement: &Placement) -> TrainReport {
    let rows: Vec<Vec<f64>> = (0..STEPS)
        .map(|_| {
            (0..N)
                .map(|w| {
                    if STRAGGLERS.contains(&w) {
                        5.0
                    } else {
                        0.001 * (w + 1) as f64
                    }
                })
                .collect()
        })
        .collect();
    let sim = TraceClusterSim::new(StragglerTrace::new(rows), 0.001, 0.001);
    let config = TrainingConfig {
        batch_size: BATCH,
        learning_rate: LR,
        loss_threshold: 0.0,
        max_steps: STEPS,
        seed: SEED,
        ..TrainingConfig::default()
    };
    train_on_trace(
        &LinearRegression::new(FEATURES),
        &shared_dataset(),
        &CodingScheme::IsGc(placement.clone()),
        &SimWaitPolicy::WaitForCount(W),
        sim,
        &config,
    )
}

fn assert_backends_agree(placement: &Placement) {
    let net = run_net(placement);
    let sim = run_sim(placement);

    assert_eq!(net.step_count(), STEPS);
    assert_eq!(sim.step_count(), STEPS);
    assert_eq!(
        net.recovery_fingerprint(),
        sim.recovery_fingerprint(),
        "recovery fingerprints diverge for {}: net {:?} vs sim {:?}",
        placement.scheme(),
        net.steps
            .iter()
            .map(|s| (s.step, s.arrivals.clone(), s.recovered))
            .collect::<Vec<_>>(),
        sim.steps
            .iter()
            .map(|s| (s.step, s.arrivals.clone(), s.recovered))
            .collect::<Vec<_>>(),
    );
    // Same engine, same seed, same arrivals ⇒ the update math is identical
    // down to the last bit, not merely close.
    assert_eq!(
        net.loss_curve(),
        sim.loss_curve(),
        "loss curves diverge for {}",
        placement.scheme()
    );
    assert_eq!(net.final_params, sim.final_params);

    // Sanity: the schedule did what it was built to do — the stragglers
    // never made a step's cut on either backend.
    for report in [&net, &sim] {
        for step in &report.steps {
            for s in STRAGGLERS {
                assert!(
                    !step.arrivals.contains(&s),
                    "straggler {s} arrived in step {} ({:?})",
                    step.step,
                    step.arrivals
                );
            }
        }
    }
}

#[test]
fn fr_cluster_matches_simulator_exactly() {
    let placement = Placement::fractional(N, C).expect("valid FR placement");
    assert_backends_agree(&placement);
}

#[test]
fn cr_cluster_matches_simulator_exactly() {
    let placement = Placement::cyclic(N, C).expect("valid CR placement");
    assert_backends_agree(&placement);
}
