//! Multi-tenant serving over real TCP: one scheduler round-robins J = 4
//! concurrent jobs, each its own master (and for two of them, a 2-level
//! sub-master tree), with all 32 workers connected at once.
//!
//! The acceptance bar is the determinism contract from the design doc:
//! every job's recovery fingerprint, loss curve, and final parameters are
//! **bitwise** identical to that job's solo flat run — co-tenancy, job-id
//! frame tagging, scheduling interleaving, and aggregation topology are all
//! observationally invisible.

use std::thread;
use std::time::Duration;

use isgc_core::Placement;
use isgc_engine::{shard_ranges, TrainReport};
use isgc_ml::dataset::Dataset;
use isgc_ml::model::LinearRegression;
use isgc_net::{
    run_worker, Master, MasterSession, NetConfig, Submaster, SubmasterOptions, WaitPolicy,
    WorkerOptions,
};
use isgc_sched::{DriverError, JobDriver, Scheduler, SchedulerConfig, SessionStatus};

const N: usize = 8;
const C: usize = 2;
const SUBMASTERS: usize = 2;
const FEATURES: usize = 4;
const SAMPLES: usize = 192;
const STEPS: usize = 4;

fn dataset(seed: u64) -> Dataset {
    Dataset::synthetic_regression(SAMPLES, FEATURES, 0.05, seed)
}

/// One tenant of the cluster: its seed and whether it aggregates through a
/// sub-master tree.
#[derive(Clone, Copy)]
struct Tenant {
    seed: u64,
    tree: bool,
}

/// The same adapter the CLI uses: [`JobDriver`] over a networked session.
struct NetJob {
    session: Option<MasterSession<LinearRegression>>,
    done: bool,
}

impl JobDriver for NetJob {
    fn step(&mut self) -> Result<SessionStatus, DriverError> {
        if self.done {
            return Ok(SessionStatus::Done);
        }
        let session = self.session.as_mut().expect("live session");
        match session.step() {
            Ok(SessionStatus::Running) => Ok(SessionStatus::Running),
            Ok(SessionStatus::Done) => {
                self.done = true;
                Ok(SessionStatus::Done)
            }
            Err(e) => {
                self.done = true;
                Err(Box::new(e))
            }
        }
    }

    fn finish(mut self: Box<Self>) -> TrainReport {
        self.session.take().expect("live session").finish()
    }
}

fn job_config(job: u64, tenant: Tenant) -> NetConfig {
    let placement = Placement::fractional(N, C).expect("FR placement");
    let mut config = NetConfig::new(placement, WaitPolicy::FirstW(N));
    config.batch_size = 8;
    config.learning_rate = 0.02;
    config.max_steps = STEPS;
    config.seed = tenant.seed;
    config.job = job;
    config.job_name = Some(format!("tenant-{job}"));
    config.register_timeout = Duration::from_secs(20);
    config
}

fn spawn_worker(addr: std::net::SocketAddr, job: u64, seed: u64) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let options = WorkerOptions {
            job,
            ..WorkerOptions::default()
        };
        run_worker(addr, &options, move |_assignment| {
            (LinearRegression::new(FEATURES), dataset(seed))
        })
        .expect("worker run");
    })
}

/// Runs every tenant concurrently under one fair-round-robin scheduler and
/// returns their reports in job order.
fn run_cluster(tenants: &[Tenant]) -> Vec<TrainReport> {
    let mut sched = Scheduler::new(SchedulerConfig::new(tenants.len(), 0));
    let mut workers = Vec::new();
    let mut subs = Vec::new();

    for (j, &tenant) in tenants.iter().enumerate() {
        let job = j as u64;
        let master = Master::bind("127.0.0.1:0").expect("bind master");
        let root_addr = master.local_addr().expect("root addr");
        if tenant.tree {
            for (shard, &(lo, hi)) in shard_ranges(N, SUBMASTERS).iter().enumerate() {
                let sub = Submaster::bind("127.0.0.1:0").expect("bind sub-master");
                let sub_addr = sub.local_addr().expect("sub addr");
                let options = SubmasterOptions {
                    job,
                    ..SubmasterOptions::default()
                };
                subs.push(thread::spawn(move || {
                    sub.run(root_addr, shard, &options).expect("sub-master run")
                }));
                for _ in lo..hi {
                    workers.push(spawn_worker(sub_addr, job, tenant.seed));
                }
            }
        } else {
            for _ in 0..N {
                workers.push(spawn_worker(root_addr, job, tenant.seed));
            }
        }
        let config = job_config(job, tenant);
        sched
            .submit_driver(
                format!("tenant-{job}"),
                Box::new(move || {
                    let model = LinearRegression::new(FEATURES);
                    let data = dataset(tenant.seed);
                    let session = if tenant.tree {
                        master.into_tree_session(model, data, &config, SUBMASTERS)
                    } else {
                        master.into_session(model, data, &config)
                    };
                    session
                        .map(|s| {
                            Box::new(NetJob {
                                session: Some(s),
                                done: false,
                            }) as Box<dyn JobDriver>
                        })
                        .map_err(|e| Box::new(e) as DriverError)
                }),
            )
            .expect("submit job");
    }

    let outcomes = sched.run_to_completion();
    for sub in subs {
        let summary = sub.join().expect("sub-master thread");
        assert!(summary.clean_shutdown, "sub-master saw no Shutdown");
    }
    for w in workers {
        w.join().expect("worker thread");
    }
    outcomes
        .into_iter()
        .map(|o| o.result.expect("job trained"))
        .collect()
}

fn signature(report: &TrainReport) -> (u64, Vec<u64>, Vec<u64>) {
    (
        report.recovery_fingerprint(),
        report.loss_curve().iter().map(|l| l.to_bits()).collect(),
        report
            .final_params
            .as_slice()
            .iter()
            .map(|p| p.to_bits())
            .collect(),
    )
}

#[test]
fn four_cotenant_jobs_match_their_solo_flat_runs_bitwise() {
    // Two flat tenants and two tree tenants share one scheduler; every
    // baseline is solo AND flat, so the equality proves both co-tenancy
    // and topology transparency over real sockets.
    let tenants = [
        Tenant {
            seed: 11,
            tree: false,
        },
        Tenant {
            seed: 22,
            tree: true,
        },
        Tenant {
            seed: 33,
            tree: false,
        },
        Tenant {
            seed: 44,
            tree: true,
        },
    ];
    let cotenant = run_cluster(&tenants);
    assert_eq!(cotenant.len(), tenants.len());

    for (j, tenant) in tenants.iter().enumerate() {
        let solo = run_cluster(&[Tenant {
            seed: tenant.seed,
            tree: false,
        }]);
        assert_eq!(cotenant[j].step_count(), STEPS);
        assert_eq!(
            signature(&cotenant[j]),
            signature(&solo[0]),
            "tenant {j} (seed {}, tree {}) diverged from its solo flat run",
            tenant.seed,
            tenant.tree
        );
    }
}
