//! Cross-crate integration: full training runs through the umbrella crate,
//! checking the paper's headline claims end to end.

use isgc::core::Placement;
use isgc::ml::dataset::Dataset;
use isgc::ml::model::{Mlp, SoftmaxRegression};
use isgc::ml::optimizer::LrSchedule;
use isgc::simnet::cluster::{ClusterConfig, StragglerSelection};
use isgc::simnet::delay::Delay;
use isgc::simnet::policy::WaitPolicy;
use isgc::simnet::trainer::{train, CodingScheme, GradientNormalization, TrainingConfig};

fn cluster(n: usize) -> ClusterConfig {
    ClusterConfig {
        n,
        compute_time_per_partition: 0.05,
        comm_time: 0.1,
        jitter: Delay::Exponential { mean: 0.4 },
        straggler_delay: Delay::none(),
        stragglers: StragglerSelection::None,
    }
}

fn config(threshold: f64, max_steps: usize, seed: u64) -> TrainingConfig {
    TrainingConfig {
        batch_size: 32,
        learning_rate: 0.05,
        momentum: 0.0,
        loss_threshold: threshold,
        max_steps,
        seed,
        normalization: GradientNormalization::SumOfPartitionMeans,
        lr_schedule: LrSchedule::Constant,
        ..Default::default()
    }
}

/// Paper Fig. 12(a): at equal w, IS-GC recovers strictly more gradients than
/// IS-SGD, and FR recovers more than CR at w = 2.
#[test]
fn recovery_ordering_matches_paper() {
    let dataset = Dataset::gaussian_classification(256, 8, 4, 3.0, 1);
    let model = SoftmaxRegression::new(8, 4);
    let cfg = config(0.0, 60, 7);
    let w = WaitPolicy::WaitForCount(2);

    let issgd = train(
        &model,
        &dataset,
        &CodingScheme::IgnoreStragglerSgd,
        &w,
        cluster(4),
        &cfg,
    );
    let cr = train(
        &model,
        &dataset,
        &CodingScheme::IsGc(Placement::cyclic(4, 2).unwrap()),
        &w,
        cluster(4),
        &cfg,
    );
    let fr = train(
        &model,
        &dataset,
        &CodingScheme::IsGc(Placement::fractional(4, 2).unwrap()),
        &w,
        cluster(4),
        &cfg,
    );
    assert_eq!(issgd.mean_recovered_fraction(), 0.5);
    assert!(cr.mean_recovered_fraction() > issgd.mean_recovered_fraction());
    assert!(fr.mean_recovered_fraction() > cr.mean_recovered_fraction());
}

/// Paper Fig. 12(b): more recovery → fewer steps to the loss threshold.
#[test]
fn steps_decrease_with_recovery() {
    let dataset = Dataset::gaussian_classification(512, 8, 4, 3.0, 777);
    let model = SoftmaxRegression::new(8, 4);
    let mut steps = Vec::new();
    for (scheme, w) in [
        (CodingScheme::IgnoreStragglerSgd, 1),
        (CodingScheme::IgnoreStragglerSgd, 2),
        (CodingScheme::Synchronous, 4),
    ] {
        let mut total = 0usize;
        for trial in 0..3u64 {
            let r = train(
                &model,
                &dataset,
                &scheme,
                &WaitPolicy::WaitForCount(w),
                cluster(4),
                &config(0.205, 4000, 100 + trial * 13),
            );
            assert!(r.reached_threshold, "w={w} never converged");
            total += r.step_count();
        }
        steps.push(total);
    }
    assert!(steps[0] > steps[1], "w=1 {} !> w=2 {}", steps[0], steps[1]);
    assert!(steps[1] > steps[2], "w=2 {} !> w=4 {}", steps[1], steps[2]);
}

/// Classic GC and IS-GC at full availability drive the *identical* parameter
/// trajectory as synchronous SGD: all three recover exactly Σ gᵢ each step.
#[test]
fn full_recovery_schemes_agree_exactly() {
    let dataset = Dataset::gaussian_classification(128, 6, 3, 3.0, 5);
    let model = SoftmaxRegression::new(6, 3);
    let cfg = config(0.0, 25, 3);
    let sync = train(
        &model,
        &dataset,
        &CodingScheme::Synchronous,
        &WaitPolicy::All,
        ClusterConfig::uniform(4, 0.1, 0.05),
        &cfg,
    );
    let isgc = train(
        &model,
        &dataset,
        &CodingScheme::IsGc(Placement::cyclic(4, 2).unwrap()),
        &WaitPolicy::All,
        ClusterConfig::uniform(4, 0.1, 0.05),
        &cfg,
    );
    let gc = train(
        &model,
        &dataset,
        &CodingScheme::ClassicCr { c: 2 },
        &WaitPolicy::All,
        ClusterConfig::uniform(4, 0.1, 0.05),
        &cfg,
    );
    for step in 0..25 {
        assert!(
            (sync.loss_curve()[step] - isgc.loss_curve()[step]).abs() < 1e-9,
            "IS-GC diverged from sync at step {step}"
        );
        assert!(
            (sync.loss_curve()[step] - gc.loss_curve()[step]).abs() < 1e-6,
            "classic GC diverged from sync at step {step}: {} vs {}",
            sync.loss_curve()[step],
            gc.loss_curve()[step]
        );
    }
}

/// The non-convex model (MLP) also trains under IS-GC with stragglers.
#[test]
fn mlp_trains_under_isgc() {
    let dataset = Dataset::gaussian_classification(256, 6, 3, 4.0, 9);
    let model = Mlp::new(6, 12, 3);
    let mut cl = cluster(4);
    cl.stragglers = StragglerSelection::RandomEachStep(2);
    cl.straggler_delay = Delay::Exponential { mean: 1.0 };
    let report = train(
        &model,
        &dataset,
        &CodingScheme::IsGc(Placement::cyclic(4, 2).unwrap()),
        &WaitPolicy::WaitForCount(2),
        cl,
        &config(0.25, 1500, 2),
    );
    assert!(
        report.reached_threshold,
        "final loss {}",
        report.final_loss()
    );
    // Accuracy sanity check on the trained trajectory is implicit in the
    // loss threshold; verify the report is internally consistent instead.
    assert_eq!(report.loss_curve().len(), report.step_count());
    assert_eq!(report.recovered_fractions().len(), report.step_count());
}

/// Fig. 11 claim: with heavy stragglers, waiting for fewer workers yields a
/// strictly lower mean step time, and IS-GC's overhead vs IS-SGD shrinks as
/// delays grow.
#[test]
fn step_time_ordering_under_stragglers() {
    use isgc::simnet::trainer::measure_step_times;
    let straggly = |mean: f64| ClusterConfig {
        n: 24,
        compute_time_per_partition: 0.2,
        comm_time: 0.05,
        jitter: Delay::Uniform { lo: 0.0, hi: 0.02 },
        straggler_delay: Delay::Exponential { mean },
        stragglers: StragglerSelection::RandomEachStep(24),
    };
    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let t_w12 = avg(&measure_step_times(
        straggly(1.5),
        2,
        &WaitPolicy::WaitForCount(12),
        300,
        1,
    ));
    let t_w23 = avg(&measure_step_times(
        straggly(1.5),
        2,
        &WaitPolicy::WaitForCount(23),
        300,
        1,
    ));
    let t_all = avg(&measure_step_times(
        straggly(1.5),
        1,
        &WaitPolicy::All,
        300,
        1,
    ));
    assert!(t_w12 < t_w23 && t_w23 < t_all);

    // Relative IS-GC (c=2) vs IS-SGD (c=1) overhead shrinks as delays grow.
    let overhead = |mean: f64| {
        let isgc = avg(&measure_step_times(
            straggly(mean),
            2,
            &WaitPolicy::WaitForCount(12),
            300,
            2,
        ));
        let issgd = avg(&measure_step_times(
            straggly(mean),
            1,
            &WaitPolicy::WaitForCount(12),
            300,
            2,
        ));
        isgc / issgd
    };
    assert!(overhead(3.0) < overhead(0.5));
}

/// The placement recommender's output plugs straight into training: the
/// full recommend → place → train pipeline converges for every rationale.
#[test]
fn recommended_placements_train_end_to_end() {
    use isgc::core::design::recommend;
    for (n, c) in [(4usize, 2usize), (10, 4), (7, 3)] {
        let rec = recommend(n, c).unwrap();
        let dataset = Dataset::gaussian_classification(64 * n, 6, 3, 4.0, 20 + n as u64);
        let model = SoftmaxRegression::new(6, 3);
        let report = train(
            &model,
            &dataset,
            &CodingScheme::IsGc(rec.placement.clone()),
            &WaitPolicy::WaitForCount((n / 2).max(1)),
            cluster(n),
            &config(0.3, 2000, 4),
        );
        assert!(
            report.reached_threshold,
            "{:?} (n={n}, c={c}): final loss {}",
            rec.rationale,
            report.final_loss()
        );
        assert!(report.mean_recovered_fraction() > 0.0);
    }
}

/// A deadline policy bounds every step's duration, and ramping w trades
/// early speed for late recovery (§IV).
#[test]
fn adaptive_policies_behave() {
    let dataset = Dataset::gaussian_classification(128, 6, 3, 3.0, 4);
    let model = SoftmaxRegression::new(6, 3);
    let mut cl = cluster(4);
    cl.stragglers = StragglerSelection::RandomEachStep(1);
    cl.straggler_delay = Delay::Exponential { mean: 3.0 };

    let deadline = train(
        &model,
        &dataset,
        &CodingScheme::IsGc(Placement::cyclic(4, 2).unwrap()),
        &WaitPolicy::Deadline(0.8),
        cl.clone(),
        &config(0.0, 60, 8),
    );
    assert!(deadline.step_durations().iter().all(|&d| d <= 0.8 + 1e-12));

    let ramp = train(
        &model,
        &dataset,
        &CodingScheme::IsGc(Placement::cyclic(4, 2).unwrap()),
        &WaitPolicy::Ramp {
            start: 1,
            end: 4,
            ramp_steps: 30,
        },
        cl,
        &config(0.0, 60, 8),
    );
    let early: f64 = ramp.recovered_fractions()[..10].iter().sum::<f64>() / 10.0;
    let late: f64 = ramp.recovered_fractions()[40..50].iter().sum::<f64>() / 10.0;
    assert!(late > early, "late {late} !> early {early}");
    assert_eq!(late, 1.0); // w = 4 recovers everything
}
