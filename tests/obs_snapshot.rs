//! Golden-file snapshot tests for the observability layer: a seeded run's
//! exported *logical* metrics must be byte-identical across runs, across
//! export formats, and across backends (simulator vs. real TCP loopback).
//!
//! The fixture is the `engine_parity` cluster — FR(6, 2), six workers, two
//! permanent stragglers ignored by `w = 4` — so every logical series
//! (arrivals, recovery counts, Theorem 10/11 bounds, loss) is pinned by the
//! seed alone.
//!
//! Golden files live in `tests/golden/`. On drift, the failure message says
//! so; regenerate intentionally with `scripts/bless.sh` (or
//! `ISGC_BLESS=1 cargo test --test obs_snapshot`).

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use isgc_core::Placement;
use isgc_engine::metrics::record_train_report;
use isgc_engine::{DegradePolicy, TrainReport};
use isgc_ml::dataset::Dataset;
use isgc_ml::model::LinearRegression;
use isgc_net::{run_worker, Master, NetConfig, WaitPolicy, WorkerOptions};
use isgc_obs::{Registry, Snapshot};
use isgc_simnet::policy::WaitPolicy as SimWaitPolicy;
use isgc_simnet::trace::{StragglerTrace, TraceClusterSim};
use isgc_simnet::trainer::{train_on_trace, CodingScheme, TrainingConfig};

const FEATURES: usize = 5;
const SAMPLES: usize = 240;
const SEED: u64 = 9090;
const STEPS: usize = 4;
const BATCH: usize = 8;
const LR: f64 = 0.02;
const STRAGGLERS: [usize; 2] = [1, 4];
const N: usize = 6;
const C: usize = 2;
const W: usize = 4;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed golden file, or rewrites the
/// golden when `ISGC_BLESS` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("ISGC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("blessing golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}; run scripts/bless.sh",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "metrics snapshot drifted from tests/golden/{name}; if the change is \
         intentional, regenerate with scripts/bless.sh"
    );
}

fn shared_dataset() -> Dataset {
    Dataset::synthetic_regression(SAMPLES, FEATURES, 0.05, SEED)
}

/// The simulator leg of the fixture: permanent stragglers via a trace.
fn run_sim() -> TrainReport {
    let placement = Placement::fractional(N, C).expect("valid FR placement");
    let rows: Vec<Vec<f64>> = (0..STEPS)
        .map(|_| {
            (0..N)
                .map(|w| {
                    if STRAGGLERS.contains(&w) {
                        5.0
                    } else {
                        0.001 * (w + 1) as f64
                    }
                })
                .collect()
        })
        .collect();
    let sim = TraceClusterSim::new(StragglerTrace::new(rows), 0.001, 0.001);
    let config = TrainingConfig {
        batch_size: BATCH,
        learning_rate: LR,
        loss_threshold: 0.0,
        max_steps: STEPS,
        seed: SEED,
        ..TrainingConfig::default()
    };
    train_on_trace(
        &LinearRegression::new(FEATURES),
        &shared_dataset(),
        &CodingScheme::IsGc(placement),
        &SimWaitPolicy::WaitForCount(W),
        sim,
        &config,
    )
}

/// Replays a finished simulator run into a fresh registry.
fn sim_registry() -> Registry {
    let registry = Registry::new();
    record_train_report(&registry, &run_sim());
    registry
}

/// The degradation-ladder leg: a trace whose middle steps starve a deadline
/// policy, so the run walks Exact → Approx → Approx → Skipped → Exact under
/// the default `Approximate` policy. Pins the ladder series —
/// `engine.steps.approx`, `engine.steps.skipped`, `engine.coverage`,
/// `engine.bias_weight` — and the outcome/streak span fields.
fn run_degrade_sim() -> TrainReport {
    let placement = Placement::fractional(N, C).expect("valid FR placement");
    let rows: Vec<Vec<f64>> = (0..6)
        .map(|step| {
            (0..N)
                .map(|w| match step {
                    // Steps 2-3: only group {4, 5} beats the deadline —
                    // coverage 1/3 takes the approximate path.
                    2 | 3 if w < 4 => 5.0,
                    // Step 4: total blackout — nothing arrives, skip.
                    4 => 5.0,
                    _ => 0.001 * (w + 1) as f64,
                })
                .collect()
        })
        .collect();
    let sim = TraceClusterSim::new(StragglerTrace::new(rows), 0.001, 0.001);
    let config = TrainingConfig {
        batch_size: BATCH,
        learning_rate: LR,
        loss_threshold: 0.0,
        max_steps: 6,
        seed: SEED,
        degrade: DegradePolicy::approximate_default(),
        ..TrainingConfig::default()
    };
    train_on_trace(
        &LinearRegression::new(FEATURES),
        &shared_dataset(),
        &CodingScheme::IsGc(placement),
        &SimWaitPolicy::Deadline(0.1),
        sim,
        &config,
    )
}

fn degrade_registry() -> Registry {
    let registry = Registry::new();
    record_train_report(&registry, &run_degrade_sim());
    registry
}

/// The TCP leg: a real loopback cluster recording live through
/// `NetConfig::metrics`, same seed and straggler schedule.
fn net_registry() -> Registry {
    let placement = Placement::fractional(N, C).expect("valid FR placement");
    let registry = Registry::new();
    let mut config = NetConfig::new(placement, WaitPolicy::FirstW(W));
    config.batch_size = BATCH;
    config.learning_rate = LR;
    config.loss_threshold = 0.0;
    config.max_steps = STEPS;
    config.seed = SEED;
    config.heartbeat_timeout = Duration::from_secs(5);
    config.register_timeout = Duration::from_secs(10);
    config.metrics = Some(registry.clone());

    let master = Master::bind("127.0.0.1:0").expect("bind loopback");
    let addr = master.local_addr().expect("local addr");
    let model = LinearRegression::new(FEATURES);
    let dataset = shared_dataset();
    let master_handle =
        thread::spawn(move || master.run(&model, &dataset, &config).expect("master run"));

    let workers: Vec<_> = (0..N)
        .map(|_| {
            let options = WorkerOptions::with_delay(Arc::new(|w, _step| {
                if STRAGGLERS.contains(&w) {
                    Duration::from_millis(400)
                } else {
                    Duration::ZERO
                }
            }));
            thread::spawn(move || {
                run_worker(addr, &options, |_assignment| {
                    (LinearRegression::new(FEATURES), shared_dataset())
                })
                .expect("worker run")
            })
        })
        .collect();

    let report = master_handle.join().expect("master thread");
    for w in workers {
        let _ = w.join().expect("worker thread");
    }
    assert_eq!(report.step_count(), STEPS);
    registry
}

#[test]
fn simnet_logical_text_is_byte_stable_across_runs() {
    let a = sim_registry().to_text(Snapshot::Logical);
    let b = sim_registry().to_text(Snapshot::Logical);
    assert_eq!(a, b, "two identically-seeded simulator runs diverged");
}

#[test]
fn simnet_logical_text_matches_golden() {
    assert_matches_golden(
        "sim_fr62_logical.txt",
        &sim_registry().to_text(Snapshot::Logical),
    );
}

#[test]
fn simnet_logical_jsonl_matches_golden() {
    assert_matches_golden(
        "sim_fr62_logical.jsonl",
        &sim_registry().to_jsonl(Snapshot::Logical),
    );
}

#[test]
fn tcp_loopback_emits_identical_logical_series() {
    // The full snapshot differs (the net backend adds byte/frame counters
    // and real clock readings), but the logical subset — what the paper's
    // math determines — must match the simulator byte for byte.
    let net = net_registry();
    let sim = sim_registry();
    assert_eq!(
        net.to_text(Snapshot::Logical),
        sim.to_text(Snapshot::Logical),
        "TCP loopback and simulator logical metric series diverged"
    );
    // And therefore also matches the committed golden.
    assert_matches_golden("sim_fr62_logical.txt", &net.to_text(Snapshot::Logical));
    // Sanity that the timing-class extras really are present on the net
    // side (and correctly excluded above).
    let full = net.to_text(Snapshot::Full);
    assert!(full.contains("net.bytes.sent.total"));
    assert!(full.contains("engine.decode.latency_ms"));
}

#[test]
fn degrade_ladder_logical_text_is_byte_stable_across_runs() {
    let a = degrade_registry().to_text(Snapshot::Logical);
    let b = degrade_registry().to_text(Snapshot::Logical);
    assert_eq!(a, b, "two identically-seeded degraded runs diverged");
}

#[test]
fn degrade_ladder_logical_text_matches_golden() {
    // The fixture must actually exercise the ladder before we pin it.
    let report = run_degrade_sim();
    assert_eq!(report.approx_steps(), 2, "steps 2-3 should be approximate");
    assert_eq!(report.skipped_steps(), 1, "step 4 should be skipped");
    assert_eq!(report.max_consecutive_degraded(), 3);
    assert_matches_golden(
        "sim_degrade_logical.txt",
        &degrade_registry().to_text(Snapshot::Logical),
    );
}

/// The multi-tenant leg: two co-tenant jobs sharing one registry, each
/// recording under its own `("job", name)` scope.
fn sched_registry() -> Registry {
    use isgc_sched::{JobSpec, Scheduler, SchedulerConfig};

    let registry = Registry::new();
    let placement = Placement::fractional(8, 2).expect("valid FR placement");
    let mut sched = Scheduler::new(SchedulerConfig::new(2, 0).with_metrics(registry.clone()));
    for (name, seed) in [("job-a", 111u64), ("job-b", 222u64)] {
        let mut spec = JobSpec::new(name, placement.clone(), seed);
        spec.max_steps = 3;
        spec.stragglers = 1;
        sched.submit(spec).expect("submit job");
    }
    let outcomes = sched.run_to_completion();
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
    registry
}

#[test]
fn sched_per_job_logical_series_match_golden() {
    assert_matches_golden(
        "sched_two_jobs_logical.txt",
        &sched_registry().to_text(Snapshot::Logical),
    );
}

#[test]
fn sched_per_job_series_are_disjoint_and_deterministic() {
    let text = sched_registry().to_text(Snapshot::Logical);
    assert_eq!(
        text,
        sched_registry().to_text(Snapshot::Logical),
        "two identically-seeded co-tenant runs diverged"
    );
    // Disjoint scoping: every engine series belongs to exactly one job —
    // no unscoped leakage, both tenants present.
    let engine_lines: Vec<&str> = text.lines().filter(|l| l.contains("engine.")).collect();
    assert!(!engine_lines.is_empty());
    for line in &engine_lines {
        assert!(
            line.contains("job=job-a") ^ line.contains("job=job-b"),
            "series not scoped to exactly one job: {line}"
        );
    }
    assert!(engine_lines.iter().any(|l| l.contains("job=job-a")));
    assert!(engine_lines.iter().any(|l| l.contains("job=job-b")));
    // The two tenants have different seeds, so their series differ: the
    // scopes carry real per-job data, not copies.
    let series_of = |job: &str| -> Vec<String> {
        engine_lines
            .iter()
            .filter(|l| l.contains(job))
            .map(|l| l.replace(job, "job"))
            .collect()
    };
    assert_ne!(series_of("job=job-a"), series_of("job=job-b"));
}
