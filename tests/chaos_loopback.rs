//! End-to-end chaos tests: real loopback clusters under scripted fault
//! plans, checked for determinism, bound-respecting degradation, checkpoint
//! resume, and placement repair.
//!
//! Every assertion here rides on the harness's own invariant checker
//! (Theorem 10–11 bounds, exact-decode oracle, scripted-absence checks) plus
//! plan-specific expectations about *which* steps degrade and how the run
//! recovers.

use isgc_chaos::{
    run_chaos, run_tree_chaos, ChaosConfig, ChaosError, FaultKind, FaultPlan, TreeChaosConfig,
};
use isgc_engine::{DegradePolicy, StepOutcome};

fn cfg(seed: u64) -> ChaosConfig {
    let mut c = ChaosConfig::new(seed);
    c.n = 6;
    c.c = 2;
    c.steps = 8;
    c
}

fn plan(name: &str, seed: u64, config: &ChaosConfig) -> FaultPlan {
    FaultPlan::named(name, seed, config.n, config.steps as u64).expect("known plan name")
}

#[test]
fn smoke_plan_passes_and_replays_byte_for_byte() {
    let config = cfg(42);
    let p = plan("smoke", 42, &config);
    let a = run_chaos(&p, &config).expect("run");
    assert!(a.passed(), "violations: {:?}", a.violations);
    assert_eq!(a.reports.len(), config.steps);

    // Determinism: the same (plan, seed) reproduces the same per-step
    // observables and the same final parameter bits.
    let b = run_chaos(&p, &config).expect("rerun");
    assert!(b.passed(), "violations: {:?}", b.violations);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "chaos run must replay exactly"
    );
}

#[test]
fn worker_flap_misses_exactly_its_scripted_steps() {
    let config = cfg(7);
    let p = plan("worker-flap", 7, &config);
    let flap = p.faults[0];
    assert_eq!(flap.kind, FaultKind::Drop);
    let outcome = run_chaos(&p, &config).expect("run");
    assert!(outcome.passed(), "violations: {:?}", outcome.violations);

    let w = flap.worker;
    for r in &outcome.reports {
        let arrived = r.arrivals.contains(&w);
        if r.step == flap.step || r.step == flap.step + 1 {
            assert!(!arrived, "step {}: flapped worker {w} arrived", r.step);
            // Degradation, not stalling: the step still recovered something.
            assert!(r.recovered > 0, "step {} recovered nothing", r.step);
        } else {
            assert!(arrived, "step {}: worker {w} should be back", r.step);
        }
    }
    // The flapped worker reconnected at least once.
    assert!(outcome.workers[w].reconnects >= 1);
}

#[test]
fn master_restart_resumes_at_the_checkpointed_step() {
    let config = cfg(11);
    let p = plan("master-restart", 11, &config);
    let crash_step = p.master_crashes[0];
    let outcome = run_chaos(&p, &config).expect("run");
    assert!(outcome.passed(), "violations: {:?}", outcome.violations);
    assert_eq!(outcome.master_restarts, 1);
    // The stitched run covers every step exactly once (the invariant
    // checker enforces this too; assert explicitly for clarity).
    let steps: Vec<u64> = outcome.reports.iter().map(|r| r.step).collect();
    assert_eq!(steps, (0..config.steps as u64).collect::<Vec<_>>());
    assert!(crash_step < config.steps as u64);

    // The strongest checkpoint check there is: a run that crashed and
    // resumed is observationally identical to one that never crashed —
    // same arrivals, same selections, same final parameter bits.
    let quiet = run_chaos(&FaultPlan::quiet("baseline"), &config).expect("baseline");
    assert!(quiet.passed(), "violations: {:?}", quiet.violations);
    assert_eq!(
        outcome.fingerprint, quiet.fingerprint,
        "resume from checkpoint must be observationally transparent"
    );
    // Workers reconnected through the restart.
    assert!(outcome.workers.iter().all(|w| w.reconnects >= 1));
}

#[test]
fn worker_death_triggers_placement_repair_within_bounds() {
    let config = cfg(13);
    let p = plan("worker-crash", 13, &config);
    let death = p.faults[0];
    assert_eq!(death.kind, FaultKind::Die);
    let outcome = run_chaos(&p, &config).expect("run");
    assert!(outcome.passed(), "violations: {:?}", outcome.violations);

    // The dead worker never arrives again.
    for r in &outcome.reports {
        if r.step >= death.step {
            assert!(!r.arrivals.contains(&death.worker));
        }
    }
    // Repair fired exactly once, re-homing all of the dead worker's
    // partitions onto survivors.
    let repair_steps: Vec<&isgc_net::NetReport> = outcome
        .reports
        .iter()
        .filter(|r| !r.repairs.is_empty())
        .collect();
    assert_eq!(repair_steps.len(), 1, "repair should fire on one step");
    let repairs = &repair_steps[0].repairs;
    assert_eq!(repairs.len(), config.c, "all c partitions re-homed");
    assert!(repairs.iter().all(|e| e.from == death.worker));
    assert!(repairs.iter().all(|e| e.to != death.worker));

    // After repair, recovery climbs back to full: the survivors cover all n
    // partitions again (the harness's invariant checker already verified
    // recovered matches the repaired conflict graph's optimum).
    let post = outcome
        .reports
        .iter()
        .filter(|r| r.step > repair_steps[0].step)
        .collect::<Vec<_>>();
    assert!(!post.is_empty());
    for r in post {
        assert!(
            r.recovered >= config.n - config.c,
            "step {}: post-repair recovery {} too low",
            r.step,
            r.recovered
        );
    }
}

#[test]
fn random_plan_replays_from_its_seed() {
    let config = cfg(1234);
    let p = plan("random", 1234, &config);
    assert_eq!(p, plan("random", 1234, &config), "plan generation replays");
    let a = run_chaos(&p, &config).expect("run");
    assert!(a.passed(), "violations: {:?}", a.violations);
    let b = run_chaos(&p, &config).expect("rerun");
    assert_eq!(a.fingerprint, b.fingerprint, "random plan must replay");
}

#[test]
fn submaster_crash_degrades_one_step_and_replays_byte_for_byte() {
    let config = TreeChaosConfig::new(2023);
    let a = run_tree_chaos(&config).expect("tree run");
    assert!(a.passed(), "violations: {:?}", a.violations);

    // The run never hung: every step is present, and the harness restarted
    // the crashed sub-master exactly once.
    assert_eq!(a.reports.len(), config.steps);
    assert_eq!(a.submaster_restarts, 1);

    // Exactly the scripted step degrades — the crashed shard's workers are
    // absent, everyone else arrives — and the very next step is whole again
    // (the root's rejoin grace makes the restarted shard's membership
    // deterministic, not a race).
    assert_eq!(a.degraded_steps, vec![config.crash_at_step]);

    // Seeded replay is byte-for-byte: same arrivals, same selections, same
    // final parameter bits.
    let b = run_tree_chaos(&config).expect("tree rerun");
    assert!(b.passed(), "violations: {:?}", b.violations);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "tree chaos must replay exactly"
    );
}

#[test]
fn blackout_plan_degrades_and_recovers_deterministically() {
    let mut config = cfg(21);
    let p = plan("blackout", 21, &config);

    // Under the default Fail policy the fully dark steps are unrunnable —
    // this is the run that used to abort, now rejected up front.
    assert!(matches!(
        run_chaos(&p, &config),
        Err(ChaosError::InvalidPlan(_))
    ));

    config.degrade = p.recommended_policy(config.n, config.steps as u64);
    let a = run_chaos(&p, &config).expect("blackout rides the ladder");
    assert!(a.passed(), "violations: {:?}", a.violations);
    assert_eq!(a.reports.len(), config.steps);

    // Exactly the scripted dark window skips; everything else is exact,
    // and the streak counter climbs through the window and resets after.
    for r in &a.reports {
        if r.step == 4 || r.step == 5 {
            assert_eq!(r.outcome, StepOutcome::Skipped, "step {}", r.step);
            assert!(r.arrivals.is_empty(), "step {} had arrivals", r.step);
            assert_eq!(r.consecutive_degraded, r.step - 3);
        } else {
            assert_eq!(r.outcome, StepOutcome::Exact, "step {}", r.step);
            assert_eq!(r.consecutive_degraded, 0, "step {}", r.step);
        }
    }
    assert_eq!(a.degraded_steps(), 2);
    assert_eq!(a.max_consecutive_degraded(), 2);
    // The frozen iterate resumes converging once workers rejoin.
    assert!(
        a.final_loss < a.reports[0].loss,
        "no recovery after blackout"
    );

    let b = run_chaos(&p, &config).expect("rerun");
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "ladder decisions must replay byte-for-byte"
    );
}

#[test]
fn blackout_escalates_when_the_streak_exceeds_the_policy() {
    let mut config = cfg(21);
    config.degrade = DegradePolicy::Approximate {
        max_consecutive: 1,
        min_coverage: 0.5,
    };
    let p = plan("blackout", 21, &config);
    // The second dark step pushes the streak past max_consecutive: the run
    // aborts with the typed degradation error instead of limping on.
    match run_chaos(&p, &config) {
        Err(ChaosError::Net(isgc_net::NetError::Degraded {
            step, recovered, ..
        })) => {
            assert_eq!(step, 5, "escalation should land on the second dark step");
            assert_eq!(recovered, 0);
        }
        other => panic!("expected NetError::Degraded, got {other:?}"),
    }
}

#[test]
fn slow_bleed_walks_the_ladder_through_approximate_updates() {
    let mut config = cfg(33);
    let p = plan("slow-bleed", 33, &config);
    config.degrade = p.recommended_policy(config.n, config.steps as u64);
    let a = run_chaos(&p, &config).expect("slow-bleed rides the ladder");
    assert!(a.passed(), "violations: {:?}", a.violations);
    assert_eq!(a.reports.len(), config.steps);

    // Contributors thin 6 → 1: once coverage drops below min_coverage the
    // steps turn approximate, with the bias weight inflating the partial
    // sum (coverage × weight = 1), then everything snaps back to exact.
    for r in &a.reports {
        match r.step {
            4 | 5 => {
                assert_eq!(r.outcome, StepOutcome::Approx, "step {}", r.step);
                assert_eq!(r.recovered, 2, "step {}", r.step);
                assert!((r.coverage - 1.0 / 3.0).abs() < 1e-12);
                assert!((r.coverage * r.bias_weight - 1.0).abs() < 1e-12);
                assert_eq!(r.consecutive_degraded, r.step - 3);
            }
            _ => {
                assert_eq!(r.outcome, StepOutcome::Exact, "step {}", r.step);
                assert_eq!(r.consecutive_degraded, 0, "step {}", r.step);
            }
        }
    }

    let b = run_chaos(&p, &config).expect("rerun");
    assert_eq!(a.fingerprint, b.fingerprint, "slow-bleed must replay");
}

#[test]
fn master_crash_mid_blackout_resumes_the_streak_bit_for_bit() {
    let mut config = cfg(55);
    let smooth = plan("blackout", 55, &config);
    config.degrade = smooth.recommended_policy(config.n, config.steps as u64);

    // Crash the master cold after the first dark step: the checkpoint holds
    // a live consecutive-degraded streak of 1, which the resumed master
    // must restore — otherwise step 5's counter (and the fingerprint, and
    // any later escalation decision) would diverge from the smooth run.
    let mut crashed_plan = smooth.clone();
    crashed_plan.master_crashes = vec![4];

    let crashed = run_chaos(&crashed_plan, &config).expect("crashed run");
    assert!(crashed.passed(), "violations: {:?}", crashed.violations);
    assert_eq!(crashed.master_restarts, 1);
    let step5 = &crashed.reports[5];
    assert_eq!(step5.outcome, StepOutcome::Skipped);
    assert_eq!(
        step5.consecutive_degraded, 2,
        "resumed master forgot the degraded streak"
    );

    let uneventful = run_chaos(&smooth, &config).expect("smooth run");
    assert!(
        uneventful.passed(),
        "violations: {:?}",
        uneventful.violations
    );
    assert_eq!(
        crashed.fingerprint, uneventful.fingerprint,
        "mid-degraded resume must be observationally transparent"
    );
}

#[test]
fn duplicate_and_stale_frames_are_discarded_not_applied() {
    let config = cfg(5);
    let p = plan("duplicate-stale", 5, &config);
    let outcome = run_chaos(&p, &config).expect("run");
    assert!(outcome.passed(), "violations: {:?}", outcome.violations);
    // The invariant checker already asserts the stale count; double-check
    // the run still recovered fully on unaffected steps.
    let total_stale: usize = outcome.reports.iter().map(|r| r.stale).sum();
    assert!(total_stale >= 1, "no stale frame was counted");
}
