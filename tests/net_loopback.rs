//! End-to-end loopback tests of the TCP master/worker runtime: a real
//! cluster on 127.0.0.1 with injected straggler delays, checked against the
//! exact decoder as a recovery oracle, plus a mid-run worker kill.

use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use isgc_core::decode::{Decoder, ExactDecoder};
use isgc_core::{Placement, WorkerSet};
use isgc_linalg::Vector;
use isgc_ml::dataset::Dataset;
use isgc_ml::model::{LinearRegression, Model};
use isgc_net::wire::{read_message, write_message, Message};
use isgc_net::{run_worker, Master, NetConfig, NetTrainReport, WaitPolicy, WorkerOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 8;
const C: usize = 2;
const FEATURES: usize = 5;
const SAMPLES: usize = 256;
const DATA_SEED: u64 = 4242;

/// The dataset every peer rebuilds identically from the shared seed.
fn shared_dataset() -> Dataset {
    Dataset::synthetic_regression(SAMPLES, FEATURES, 0.05, DATA_SEED)
}

fn cluster_config(placement: Placement, wait: WaitPolicy, steps: usize) -> NetConfig {
    let mut config = NetConfig::new(placement, wait);
    config.batch_size = 8;
    config.learning_rate = 0.02;
    config.max_steps = steps;
    config.seed = DATA_SEED;
    config.heartbeat_timeout = Duration::from_millis(600);
    config.register_timeout = Duration::from_secs(10);
    config
}

/// Replays each step's surviving `WorkerSet` through the exact
/// branch-and-bound decoder and checks the runtime recovered exactly the
/// maximum-independent-set worth of partitions the paper promises.
fn assert_matches_exact_oracle(report: &NetTrainReport, placement: &Placement) {
    let oracle = ExactDecoder::new(placement);
    let mut rng = StdRng::seed_from_u64(1);
    for step in &report.steps {
        let available = WorkerSet::from_indices(placement.n(), step.arrivals.iter().copied());
        let best = oracle.decode(&available, &mut rng).recovered_count();
        assert_eq!(
            step.recovered, best,
            "step {}: runtime recovered {} partitions, exact decoder finds {} \
             for arrivals {:?}",
            step.step, step.recovered, best, step.arrivals
        );
    }
}

#[test]
fn eight_workers_with_stragglers_match_decoder_oracle() {
    let placement = Placement::fractional(N, C).expect("valid FR placement");
    let config = cluster_config(placement.clone(), WaitPolicy::FirstW(6), 10);

    let master = Master::bind("127.0.0.1:0").expect("bind loopback");
    let addr = master.local_addr().expect("local addr");
    let model = LinearRegression::new(FEATURES);
    let dataset = shared_dataset();
    let master_handle =
        thread::spawn(move || master.run(&model, &dataset, &config).expect("master run"));

    // Two persistent stragglers: always slower than the rest, so FirstW(6)
    // routinely ignores them — the paper's arbitrary-ignorance regime.
    let workers: Vec<_> = (0..N)
        .map(|_| {
            let options = WorkerOptions::with_delay(Arc::new(|w, _step| {
                if w >= 6 {
                    Duration::from_millis(80)
                } else {
                    Duration::ZERO
                }
            }));
            thread::spawn(move || {
                run_worker(addr, &options, |_assignment| {
                    (LinearRegression::new(FEATURES), shared_dataset())
                })
                .expect("worker run")
            })
        })
        .collect();

    let report = master_handle.join().expect("master thread");
    for w in workers {
        let summary = w.join().expect("worker thread");
        assert_eq!(summary.cause, isgc_net::ShutdownCause::MasterShutdown);
    }

    assert_eq!(report.step_count(), 10);
    assert_matches_exact_oracle(&report, &placement);

    // Each step waited for 6 codewords, so at least 6 arrivals per step.
    for step in &report.steps {
        assert!(
            step.arrivals.len() >= 6,
            "step {} closed with only {:?}",
            step.step,
            step.arrivals
        );
        assert!(step.recovered > 0, "step {} recovered nothing", step.step);
    }

    // Training made progress on the real sockets.
    let losses = report.loss_curve();
    assert!(
        report.final_loss() < losses[0],
        "loss did not decrease: {losses:?}"
    );
}

/// A hand-rolled worker that behaves correctly for `steps_before_exit` steps
/// and then drops its connection without a word — a mid-run crash.
fn defecting_worker(addr: std::net::SocketAddr, steps_before_exit: u64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_message(&mut stream, &Message::Hello { preferred: None }).expect("hello");
    let Ok(Message::Assign {
        worker,
        n,
        batch_size,
        seed,
        partitions,
        ..
    }) = read_message(&mut stream)
    else {
        panic!("expected Assign");
    };
    let model = LinearRegression::new(FEATURES);
    let dataset = shared_dataset();
    let partitioned = dataset.partition(n as usize);
    let mut served = 0u64;
    loop {
        match read_message(&mut stream) {
            Ok(Message::Params { step, values }) => {
                let params = Vector::from_slice(&values);
                let mut codeword = model.zero_params();
                for &p in &partitions {
                    let batch = partitioned.minibatch(p as usize, batch_size as usize, step, seed);
                    codeword.axpy(1.0, &model.gradient_sum(&params, &dataset, &batch));
                }
                write_message(
                    &mut stream,
                    &Message::Codeword {
                        worker,
                        step,
                        values: codeword.into_vec(),
                    },
                )
                .expect("send codeword");
                served += 1;
                if served >= steps_before_exit {
                    return; // crash: drop the socket mid-run
                }
            }
            Ok(Message::Shutdown) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

#[test]
fn killed_worker_degrades_recovery_instead_of_hanging() {
    let placement = Placement::fractional(N, C).expect("valid FR placement");
    // FirstW(8) = wait for everyone: without dead-worker detection this
    // deadlocks the moment the defector leaves.
    let config = cluster_config(placement.clone(), WaitPolicy::FirstW(N), 8);

    let master = Master::bind("127.0.0.1:0").expect("bind loopback");
    let addr = master.local_addr().expect("local addr");
    let model = LinearRegression::new(FEATURES);
    let dataset = shared_dataset();
    let master_handle =
        thread::spawn(move || master.run(&model, &dataset, &config).expect("master run"));

    let defector = thread::spawn(move || defecting_worker(addr, 2));
    let workers: Vec<_> = (0..N - 1)
        .map(|_| {
            let options = WorkerOptions::default();
            thread::spawn(move || {
                run_worker(addr, &options, |_assignment| {
                    (LinearRegression::new(FEATURES), shared_dataset())
                })
                .expect("worker run")
            })
        })
        .collect();

    let report = master_handle.join().expect("master thread");
    defector.join().expect("defector thread");
    for w in workers {
        w.join().expect("worker thread");
    }

    // The run finished every step — the kill degraded it, didn't hang it.
    assert_eq!(report.step_count(), 8);
    assert_matches_exact_oracle(&report, &placement);

    let full_steps = report
        .steps
        .iter()
        .filter(|s| s.arrivals.len() == N)
        .count();
    let degraded_steps = report
        .steps
        .iter()
        .filter(|s| s.arrivals.len() == N - 1)
        .count();
    assert!(full_steps >= 1, "defector never participated");
    assert!(
        degraded_steps >= 1,
        "no step ran with exactly the survivors: {:?}",
        report
            .steps
            .iter()
            .map(|s| s.arrivals.len())
            .collect::<Vec<_>>()
    );
    // Per Theorems 10–11, FR(8, 2) still recovers from 7 of 8 workers; the
    // surviving cluster keeps making progress every step.
    for step in &report.steps {
        assert!(step.recovered > 0, "step {} recovered nothing", step.step);
    }
}

#[test]
fn deadline_policy_closes_steps_without_stragglers() {
    let placement = Placement::cyclic(N, C).expect("valid CR placement");
    let config = cluster_config(
        placement.clone(),
        WaitPolicy::Deadline(Duration::from_millis(150)),
        6,
    );

    let master = Master::bind("127.0.0.1:0").expect("bind loopback");
    let addr = master.local_addr().expect("local addr");
    let model = LinearRegression::new(FEATURES);
    let dataset = shared_dataset();
    let master_handle =
        thread::spawn(move || master.run(&model, &dataset, &config).expect("master run"));

    // One worker far slower than the deadline: its codewords arrive a step
    // late and must be discarded as stale, never merged.
    let workers: Vec<_> = (0..N)
        .map(|_| {
            let options = WorkerOptions::with_delay(Arc::new(|w, _step| {
                if w == 7 {
                    Duration::from_millis(400)
                } else {
                    Duration::ZERO
                }
            }));
            thread::spawn(move || {
                run_worker(addr, &options, |_assignment| {
                    (LinearRegression::new(FEATURES), shared_dataset())
                })
                .expect("worker run")
            })
        })
        .collect();

    let report = master_handle.join().expect("master thread");
    for w in workers {
        w.join().expect("worker thread");
    }

    assert_eq!(report.step_count(), 6);
    assert_matches_exact_oracle(&report, &placement);
    // The slow worker's late codewords were counted as stale somewhere.
    let stale_total: usize = report.steps.iter().map(|s| s.stale).sum();
    assert!(stale_total > 0, "expected discarded late codewords");
    // And it never contaminated a step it missed: every step's arrivals are
    // within the cluster and unique.
    for step in &report.steps {
        let mut seen = std::collections::HashSet::new();
        for &w in &step.arrivals {
            assert!(w < N && seen.insert(w), "bad arrivals {:?}", step.arrivals);
        }
    }
}
