//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning crates through the umbrella API.

use isgc::core::classic::ClassicGc;
use isgc::core::decode::{hr_conflict, CrDecoder, Decoder, FrDecoder, HrDecoder};
use isgc::core::encode::SumEncoder;
use isgc::core::{bounds, design, expectation, ConflictGraph, HrParams, Placement, WorkerSet};
use isgc::linalg::Vector;
use isgc::ml::dataset::Dataset;
use isgc::ml::model::{LinearRegression, Model, SoftmaxRegression};
use isgc::obs::Registry;
use isgc::simnet::adaptive::AdaptiveWaitController;
use isgc::simnet::cluster::{ClusterConfig, StragglerSelection};
use isgc::simnet::delay::Delay;
use isgc::simnet::policy::WaitPolicy;
use isgc::simnet::trace::MarkovStragglerModel;
use isgc::simnet::trainer::{train, train_metered, CodingScheme, TrainingConfig};
use isgc_engine::metrics::names;
use isgc_engine::{DegradePolicy, StepOutcome};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: (n, c) valid for CR.
fn cr_params() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=20).prop_flat_map(|n| (Just(n), 1usize..=n))
}

/// Strategy: (n, c) valid for FR (c | n).
fn fr_params() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=20)
        .prop_flat_map(|n| (Just(n), 1usize..=n))
        .prop_filter("c | n", |(n, c)| n % c == 0)
}

/// Strategy: valid HR parameter bundles.
fn hr_params() -> impl Strategy<Value = HrParams> {
    (1usize..=5, 2usize..=6, 0usize..=6, 0usize..=6)
        .prop_map(|(g, n0, c1, c2)| HrParams::new(g * n0, g, c1, c2))
        .prop_filter("valid", |p| p.validate().is_ok())
}

/// Strategy: a subset of 0..n encoded as a bitmask.
fn subset(n: usize) -> impl Strategy<Value = WorkerSet> {
    prop::collection::vec(prop::bool::ANY, n).prop_map(move |bits| {
        WorkerSet::from_indices(
            n,
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every placement is balanced: each worker stores c partitions and each
    /// partition lives on c workers.
    #[test]
    fn placements_are_balanced(
        (n_cr, c_cr) in cr_params(),
        (n_fr, c_fr) in fr_params(),
        hr in hr_params(),
    ) {
        for p in [
            Placement::cyclic(n_cr, c_cr).unwrap(),
            Placement::fractional(n_fr, c_fr).unwrap(),
            Placement::hybrid(hr).unwrap(),
        ] {
            for w in 0..p.n() {
                prop_assert_eq!(p.partitions_of(w).len(), p.c());
            }
            for j in 0..p.n() {
                prop_assert_eq!(p.workers_of(j).len(), p.c());
            }
        }
    }

    /// CR's conflict graph is the circulant C_n^{1..c-1} (Theorem 1).
    #[test]
    fn cr_conflict_graph_is_circulant((n, c) in cr_params()) {
        let g = ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap());
        prop_assert!(g.is_circulant_with_span(c));
    }

    /// The CR decoder output is an independent set within the Theorem 10-11
    /// bounds for arbitrary availability.
    #[test]
    fn cr_decode_respects_invariants((n, c) in cr_params(), seed in 0u64..1000) {
        let p = Placement::cyclic(n, c).unwrap();
        let d = CrDecoder::new(&p).unwrap();
        let g = ConflictGraph::from_placement(&p);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = (seed as usize) % (n + 1);
        let avail = WorkerSet::random_subset(n, w, &mut rng);
        let r = d.decode(&avail, &mut rng);
        prop_assert!(g.is_independent(r.selected()));
        prop_assert!(r.selected().len() >= bounds::alpha_lower_bound(n, c, w));
        prop_assert!(r.selected().len() <= bounds::alpha_upper_bound(n, c, w));
    }

    /// Alg. 4's closed-form HR conflict predicate agrees with ground truth.
    #[test]
    fn hr_conflict_closed_form_is_exact(hr in hr_params()) {
        let p = Placement::hybrid(hr).unwrap();
        for a in 0..hr.n() {
            for b in 0..hr.n() {
                prop_assert_eq!(hr_conflict(&hr, a, b), p.conflicts(a, b));
            }
        }
    }

    /// ĝ assembled from codewords equals the direct sum of the recovered
    /// partitions' gradients, exactly (IS-GC's central identity).
    #[test]
    fn assembled_gradient_identity(hr in hr_params(), seed in 0u64..500) {
        let p = Placement::hybrid(hr).unwrap();
        let n = p.n();
        let d = HrDecoder::new(&p).unwrap();
        let e = SumEncoder::new(&p);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = (seed as usize * 7) % (n + 1);
        let avail = WorkerSet::random_subset(n, w, &mut rng);
        let result = d.decode(&avail, &mut rng);
        let grad = |j: usize| Vector::from_slice(&[(j * j) as f64 + 1.0, j as f64]);
        let g_hat = e.assemble(&result, 2, |wid| {
            let grads: Vec<Vector> =
                p.partitions_of(wid).iter().map(|&j| grad(j)).collect();
            e.encode(wid, &grads)
        });
        let mut expected = Vector::zeros(2);
        for &j in result.partitions() {
            expected.axpy(1.0, &grad(j));
        }
        prop_assert_eq!(g_hat.as_slice(), expected.as_slice());
    }

    /// Classic GC recovers the exact full gradient from any subset of at
    /// least n − c + 1 workers.
    #[test]
    fn classic_gc_roundtrip((n, c) in cr_params(), seed in 0u64..200) {
        prop_assume!(n <= 12);
        let mut rng = StdRng::seed_from_u64(seed);
        let gc = ClassicGc::cyclic(n, c, &mut rng).unwrap();
        let grads: Vec<Vector> =
            (0..n).map(|j| Vector::from_slice(&[j as f64 - 2.5])).collect();
        let codewords: Vec<Vector> = (0..n).map(|w| gc.encode(w, &grads)).collect();
        let expected: f64 = grads.iter().map(|g| g[0]).sum();
        let avail = WorkerSet::random_subset(n, n - c + 1, &mut rng);
        let g = gc.recover(&avail, |w| codewords[w].clone(), 1).unwrap();
        prop_assert!((g[0] - expected).abs() < 1e-6);
    }

    /// WorkerSet algebra laws.
    #[test]
    fn worker_set_algebra(a in subset(24), b in subset(24)) {
        let union = a.union(&b);
        let inter = a.intersection(&b);
        prop_assert_eq!(union.len() + inter.len(), a.len() + b.len());
        prop_assert_eq!(a.difference(&b).union(&inter).to_vec(), a.to_vec());
        prop_assert_eq!(a.complement().complement(), a.clone());
        for i in a.iter() {
            prop_assert!(union.contains(i));
        }
        prop_assert!(inter.iter().all(|i| a.contains(i) && b.contains(i)));
    }

    /// FR decode selects exactly one representative per surviving group.
    #[test]
    fn fr_decode_selects_group_representatives((n, c) in fr_params(), avail_seed in 0u64..300) {
        let p = Placement::fractional(n, c).unwrap();
        let d = FrDecoder::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(avail_seed);
        let w = (avail_seed as usize) % (n + 1);
        let avail = WorkerSet::random_subset(n, w, &mut rng);
        let r = d.decode(&avail, &mut rng);
        let mut groups_with_members = 0;
        for g in 0..n / c {
            let members = (g * c..(g + 1) * c).filter(|&i| avail.contains(i)).count();
            if members > 0 {
                groups_with_members += 1;
            }
            let selected_here = r
                .selected()
                .iter()
                .filter(|&&v| v / c == g)
                .count();
            prop_assert!(selected_here <= 1);
        }
        prop_assert_eq!(r.selected().len(), groups_with_members);
    }

    /// The placement recommender always honors the budget and never has
    /// more conflict edges than CR at the same (n, c).
    #[test]
    fn recommender_dominates_cr((n, c) in cr_params()) {
        let rec = design::recommend(n, c).unwrap();
        prop_assert_eq!(rec.placement.n(), n);
        prop_assert_eq!(rec.placement.c(), c);
        let rec_edges = ConflictGraph::from_placement(&rec.placement).edge_count();
        let cr_edges =
            ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap()).edge_count();
        prop_assert!(rec_edges <= cr_edges);
    }

    /// FR's closed-form expected recovery is within the Theorem 10-11
    /// bounds scaled to expectations.
    #[test]
    fn fr_expectation_within_bounds((n, c) in fr_params(), w_frac in 0.0f64..1.0) {
        let w = ((n as f64) * w_frac) as usize;
        let e = expectation::fr_expected_alpha(n, c, w);
        prop_assert!(e >= bounds::alpha_lower_bound(n, c, w) as f64 - 1e-9);
        prop_assert!(e <= bounds::alpha_upper_bound(n, c, w) as f64 + 1e-9);
    }

    /// Markov traces: delays non-negative, deterministic in the seed, and
    /// the straggle rate approaches the stationary fraction.
    #[test]
    fn markov_trace_properties(
        n in 1usize..6,
        p_fs in 0.0f64..0.5,
        p_sf in 0.01f64..0.5,
        seed in 0u64..100,
    ) {
        let model = MarkovStragglerModel {
            n,
            fast: Delay::Constant(0.0),
            slow: Delay::Constant(1.0),
            p_fast_to_slow: p_fs,
            p_slow_to_fast: p_sf,
        };
        let t = model.generate(300, seed);
        prop_assert_eq!(t.n(), n);
        prop_assert_eq!(t.len(), 300);
        prop_assert_eq!(&t, &model.generate(300, seed));
        let rate = t.straggle_rate(0.5);
        prop_assert!((0.0..=1.0).contains(&rate));
        let stationary = model.stationary_slow_fraction();
        prop_assert!((0.0..=1.0).contains(&stationary));
    }

    /// The adaptive controller's recommendation is always within
    /// [min_w, max_w] and never decreases.
    #[test]
    fn adaptive_controller_invariants(
        min_w in 1usize..4,
        extra in 0usize..4,
        window in 1usize..6,
        losses in prop::collection::vec(0.0f64..10.0, 1..60),
    ) {
        let max_w = min_w + extra;
        let mut ctl = AdaptiveWaitController::new(min_w, max_w, window, 0.05);
        for &loss in &losses {
            ctl.observe(loss);
            prop_assert!((min_w..=max_w).contains(&ctl.current_w()));
        }
        for pair in ctl.w_history().windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        prop_assert_eq!(ctl.w_history().len(), losses.len());
    }

    /// Placement-aware Theorems 10–11: for random placements of all three
    /// schemes and arbitrary surviving sets W', the `recovery_bounds_of`
    /// bracket always contains the decoder's α(G[W']) (the scheme decoders
    /// are maximum — cross-checked against the exact α on small instances)
    /// and its recovered-partition count.
    #[test]
    fn recovery_bounds_bracket_decoder_alpha(
        (n_cr, c_cr) in cr_params(),
        (n_fr, c_fr) in fr_params(),
        hr in hr_params(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cr = Placement::cyclic(n_cr, c_cr).unwrap();
        let fr = Placement::fractional(n_fr, c_fr).unwrap();
        let hy = Placement::hybrid(hr).unwrap();
        let cases: [(&Placement, Box<dyn Decoder>); 3] = [
            (&cr, Box::new(CrDecoder::new(&cr).unwrap())),
            (&fr, Box::new(FrDecoder::new(&fr).unwrap())),
            (&hy, Box::new(HrDecoder::new(&hy).unwrap())),
        ];
        for (p, d) in &cases {
            let n = p.n();
            let w = (seed as usize).wrapping_mul(37) % (n + 1);
            let avail = WorkerSet::random_subset(n, w, &mut rng);
            let r = d.decode(&avail, &mut rng);
            let alpha = r.selected().len();
            if n <= 12 {
                let exact = ConflictGraph::from_placement(p).alpha(&avail);
                prop_assert_eq!(alpha, exact, "{} n={} w={}", p.scheme(), n, w);
            }
            let (lo, hi) = bounds::alpha_bounds_of(p, w);
            prop_assert!(
                (lo..=hi).contains(&alpha),
                "{} n={} w={}: alpha {} outside [{}, {}]", p.scheme(), n, w, alpha, lo, hi
            );
            let (rlo, rhi) = bounds::recovery_bounds_of(p, w);
            prop_assert!(
                (rlo..=rhi).contains(&r.recovered_count()),
                "{} n={} w={}: recovered {} outside [{}, {}]",
                p.scheme(), n, w, r.recovered_count(), rlo, rhi
            );
            prop_assert!(bounds::recovery_within_bounds_of(p, w, r.recovered_count()));
            prop_assert!(bounds::check_recovery_of(p, w, r.recovered_count()).within());
        }
    }

    /// A metered simulator run's obs histogram of recovered counts is
    /// exactly the multiset of the report's per-step values — same bin
    /// counts, same totals — and every step's reported bound interval
    /// brackets what its decode recovered.
    #[test]
    fn obs_recovered_histogram_matches_step_reports(
        seed in 0u64..300,
        use_cr in prop::bool::ANY,
        w in 1usize..=6,
        straggler_count in 0usize..3,
    ) {
        let (n, c) = (6usize, 2usize);
        let placement = if use_cr {
            Placement::cyclic(n, c).unwrap()
        } else {
            Placement::fractional(n, c).unwrap()
        };
        let cluster = ClusterConfig {
            n,
            compute_time_per_partition: 0.01,
            comm_time: 0.005,
            jitter: Delay::Uniform { lo: 0.0, hi: 0.02 },
            straggler_delay: Delay::Exponential { mean: 0.5 },
            stragglers: StragglerSelection::RandomEachStep(straggler_count),
        };
        let config = TrainingConfig {
            batch_size: 8,
            learning_rate: 0.05,
            loss_threshold: 0.0,
            max_steps: 6,
            seed,
            ..TrainingConfig::default()
        };
        let registry = Registry::new();
        let report = train_metered(
            &LinearRegression::new(3),
            &Dataset::synthetic_regression(48, 3, 0.05, seed),
            &CodingScheme::IsGc(placement),
            &WaitPolicy::WaitForCount(w),
            cluster,
            &config,
            &registry,
        );
        let hist = registry
            .histogram(names::STEP_RECOVERED, &[])
            .expect("metered run records the recovered histogram");
        prop_assert_eq!(hist.count, report.steps.len() as u64);
        let total: usize = report.steps.iter().map(|s| s.recovered).sum();
        prop_assert!((hist.sum - total as f64).abs() < 1e-12);
        for v in 0..=n {
            let in_report = report.steps.iter().filter(|s| s.recovered == v).count();
            prop_assert_eq!(
                hist.counts[v], in_report as u64,
                "bin {}: histogram {} vs report {}", v, hist.counts[v], in_report
            );
        }
        for step in &report.steps {
            let (lo, hi) = step.bounds.expect("bounds checked on unrepaired steps");
            prop_assert!(
                (lo..=hi).contains(&step.recovered),
                "step {}: recovered {} outside [{}, {}]", step.step, step.recovered, lo, hi
            );
        }
    }

    /// Graceful-degradation transparency: as long as every step holds the
    /// coverage floor, the ladder's exact path under `Skip` or
    /// `Approximate` is bitwise-identical to `Fail` — same loss bits, same
    /// final parameters, same recovery fingerprint. The lenient policies
    /// must be free until the moment they are needed.
    #[test]
    fn ladder_exact_path_is_bitwise_identical_to_fail(
        seed in 0u64..200,
        w in 4usize..=6,
        use_cr in prop::bool::ANY,
        straggler_count in 0usize..3,
    ) {
        let (n, c) = (6usize, 2usize);
        let placement = if use_cr {
            Placement::cyclic(n, c).unwrap()
        } else {
            Placement::fractional(n, c).unwrap()
        };
        let cluster = ClusterConfig {
            n,
            compute_time_per_partition: 0.01,
            comm_time: 0.005,
            jitter: Delay::Uniform { lo: 0.0, hi: 0.02 },
            straggler_delay: Delay::Exponential { mean: 0.5 },
            stragglers: StragglerSelection::RandomEachStep(straggler_count),
        };
        let dataset = Dataset::synthetic_regression(48, 3, 0.05, seed);
        let run = |degrade: DegradePolicy| {
            let config = TrainingConfig {
                batch_size: 8,
                learning_rate: 0.05,
                loss_threshold: 0.0,
                max_steps: 6,
                seed,
                degrade,
                ..TrainingConfig::default()
            };
            train(
                &LinearRegression::new(3),
                &dataset,
                &CodingScheme::IsGc(placement.clone()),
                &WaitPolicy::WaitForCount(w),
                cluster.clone(),
                &config,
            )
        };
        // Theorem 10: waiting for w >= 4 of FR/CR(6,2) recovers >= 4 of the
        // 6 partitions, so coverage never drops below the default 0.5 floor
        // and the ladder never leaves the exact path.
        let baseline = run(DegradePolicy::Fail);
        for policy in [DegradePolicy::Skip, DegradePolicy::approximate_default()] {
            let label = policy.label();
            let other = run(policy);
            for s in &other.steps {
                prop_assert_eq!(
                    s.outcome, StepOutcome::Exact,
                    "{}: step {} left the exact path", label, s.step
                );
            }
            prop_assert_eq!(
                other.recovery_fingerprint(), baseline.recovery_fingerprint(),
                "{}: fingerprint diverged", label
            );
            let base_losses: Vec<u64> =
                baseline.loss_curve().iter().map(|l| l.to_bits()).collect();
            let other_losses: Vec<u64> =
                other.loss_curve().iter().map(|l| l.to_bits()).collect();
            prop_assert_eq!(base_losses, other_losses, "{}: loss bits diverged", label);
            let base_params: Vec<u64> = baseline
                .final_params
                .as_slice()
                .iter()
                .map(|p| p.to_bits())
                .collect();
            let other_params: Vec<u64> = other
                .final_params
                .as_slice()
                .iter()
                .map(|p| p.to_bits())
                .collect();
            prop_assert_eq!(base_params, other_params, "{}: parameter bits diverged", label);
        }
    }

    /// Model gradients are additive over disjoint index sets — the property
    /// that makes sum-coding exact.
    #[test]
    fn gradient_additivity(seed in 0u64..100, split in 1usize..29) {
        let data = Dataset::gaussian_classification(30, 4, 3, 2.0, seed);
        let model = SoftmaxRegression::new(4, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let params = model.init_params(&mut rng);
        let left: Vec<usize> = (0..split).collect();
        let right: Vec<usize> = (split..30).collect();
        let all: Vec<usize> = (0..30).collect();
        let mut sum = model.gradient_sum(&params, &data, &left);
        sum.axpy(1.0, &model.gradient_sum(&params, &data, &right));
        let direct = model.gradient_sum(&params, &data, &all);
        prop_assert!((&sum - &direct).norm_inf() < 1e-12);
    }
}

// --- Multi-tenant scheduling properties (isgc-sched) ---

use isgc::sched::{JobOutcome, JobSpec, SchedError, Scheduler, SchedulerConfig, Topology};

/// A job's deterministic observables: recovery fingerprint plus the exact
/// bits of its loss curve and final parameters.
fn job_signature(outcome: &JobOutcome) -> (u64, Vec<u64>, Vec<u64>) {
    let report = outcome.result.as_ref().expect("job trained");
    (
        report.recovery_fingerprint(),
        report.loss_curve().iter().map(|l| l.to_bits()).collect(),
        report
            .final_params
            .as_slice()
            .iter()
            .map(|p| p.to_bits())
            .collect(),
    )
}

/// Runs one spec alone on a single-slot scheduler.
fn solo_signature(spec: &JobSpec) -> (u64, Vec<u64>, Vec<u64>) {
    let mut sched = Scheduler::new(SchedulerConfig::new(1, 0));
    sched.submit(spec.clone()).expect("solo submit");
    let outcomes = sched.run_to_completion();
    job_signature(&outcomes[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tenant isolation: a job's fingerprint, loss curve, and final
    /// parameters are bitwise independent of who it shares the scheduler
    /// with AND of its aggregation topology — co-tenant tree runs must
    /// equal solo flat runs exactly.
    #[test]
    fn job_observables_are_independent_of_cotenants_and_topology(
        seeds in prop::collection::vec(0u64..10_000, 1..=4),
        stragglers in 0usize..3,
        tree in prop::bool::ANY,
    ) {
        let placement = Placement::fractional(8, 2).expect("FR(8,2)");
        let specs: Vec<JobSpec> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let mut spec = JobSpec::new(format!("tenant-{i}"), placement.clone(), seed);
                spec.max_steps = 5;
                spec.stragglers = stragglers;
                spec.topology = if tree {
                    Topology::Tree { submasters: 2 }
                } else {
                    Topology::Flat
                };
                spec
            })
            .collect();

        // Baselines are always solo AND flat, so one equality covers both
        // co-tenancy transparency and tree-vs-flat transparency.
        let baselines: Vec<_> = specs
            .iter()
            .map(|spec| {
                let mut flat = spec.clone();
                flat.topology = Topology::Flat;
                solo_signature(&flat)
            })
            .collect();

        let mut sched = Scheduler::new(SchedulerConfig::new(specs.len(), 0));
        for spec in &specs {
            sched.submit(spec.clone()).expect("co-tenant submit");
        }
        let outcomes = sched.run_to_completion();
        prop_assert_eq!(outcomes.len(), specs.len());
        for (outcome, baseline) in outcomes.iter().zip(&baselines) {
            prop_assert_eq!(&job_signature(outcome), baseline);
        }
    }

    /// Fair queueing: any mix of slots and queue capacity admits exactly
    /// min(jobs, slots + queue) jobs, rejects the rest with the typed
    /// overflow error, and every admitted job runs to completion — no
    /// starvation under round-robin.
    #[test]
    fn fair_queueing_never_starves_and_rejects_overflow_typed(
        jobs in 1usize..=6,
        slots in 1usize..=3,
        queue in 0usize..=2,
    ) {
        let placement = Placement::fractional(4, 2).expect("FR(4,2)");
        let mut sched = Scheduler::new(SchedulerConfig::new(slots, queue));
        let mut admitted = 0usize;
        for i in 0..jobs {
            let mut spec = JobSpec::new(format!("q-{i}"), placement.clone(), i as u64);
            spec.max_steps = 3;
            match sched.submit(spec) {
                Ok(_) => admitted += 1,
                Err(SchedError::QueueFull {
                    max_concurrent,
                    queue_capacity,
                }) => {
                    prop_assert_eq!(max_concurrent, slots);
                    prop_assert_eq!(queue_capacity, queue);
                    prop_assert_eq!(admitted, slots + queue);
                }
                Err(e) => prop_assert!(false, "unexpected submit error: {e}"),
            }
        }
        prop_assert_eq!(admitted, jobs.min(slots + queue));
        let outcomes = sched.run_to_completion();
        prop_assert_eq!(outcomes.len(), admitted);
        for outcome in &outcomes {
            let report = outcome.result.as_ref().expect("job trained");
            prop_assert_eq!(report.step_count(), 3, "job {} starved", outcome.name);
        }
    }
}
