//! Threaded-runtime integration: the real-thread implementation agrees with
//! the simulator's semantics (same codewords, same recovery invariants) and
//! survives adversarial scheduling.

use std::sync::Arc;
use std::time::Duration;

use isgc::core::{HrParams, Placement};
use isgc::ml::dataset::Dataset;
use isgc::ml::model::{LinearRegression, SoftmaxRegression};
use isgc::runtime::{train_threaded, ThreadedConfig};

fn base_config(wait_for: usize, seed: u64) -> ThreadedConfig {
    ThreadedConfig {
        wait_for,
        collection: None,
        batch_size: 16,
        learning_rate: 0.05,
        loss_threshold: 0.02,
        max_steps: 400,
        seed,
        degrade: isgc::runtime::DegradePolicy::Skip,
        delay: Arc::new(|_, _| Duration::ZERO),
    }
}

#[test]
fn threaded_regression_converges_all_schemes() {
    let dataset = Dataset::synthetic_regression(192, 3, 0.02, 21);
    for placement in [
        Placement::cyclic(4, 2).unwrap(),
        Placement::fractional(4, 2).unwrap(),
        Placement::hybrid(HrParams::new(4, 2, 1, 1)).unwrap(),
    ] {
        let report = train_threaded(
            LinearRegression::new(3),
            dataset.clone(),
            &placement,
            &base_config(3, 1),
        );
        assert!(
            report.reached_threshold,
            "{:?}: final loss {}",
            placement.scheme(),
            report.final_loss()
        );
        for &f in &report.recovered_fractions() {
            assert!(f > 0.0 && f <= 1.0);
        }
    }
}

#[test]
fn threaded_classification_with_jittery_stragglers() {
    let dataset = Dataset::gaussian_classification(192, 5, 3, 4.0, 3);
    let placement = Placement::cyclic(6, 2).unwrap();
    // Randomized small delays on all workers: scheduling order varies.
    let delay: Arc<dyn Fn(usize, u64) -> Duration + Send + Sync> =
        Arc::new(|worker, step| Duration::from_micros(((worker as u64 + step) % 5) * 300));
    let config = ThreadedConfig {
        wait_for: 3,
        collection: None,
        batch_size: 16,
        learning_rate: 0.1,
        loss_threshold: 0.15,
        max_steps: 600,
        seed: 4,
        degrade: isgc::runtime::DegradePolicy::Skip,
        delay,
    };
    let report = train_threaded(SoftmaxRegression::new(5, 3), dataset, &placement, &config);
    assert!(report.reached_threshold, "loss={}", report.final_loss());
    // w = 3, c = 2, n = 6: Theorem 10 guarantees ≥ ⌈3/2⌉ = 2 workers, i.e.
    // at least 4/6 partitions, every step.
    for &f in &report.recovered_fractions() {
        assert!(f >= 4.0 / 6.0 - 1e-12, "fraction {f}");
    }
}

#[test]
fn threaded_and_simulated_runs_converge_to_same_model_family() {
    // Not bit-identical (threads race), but both must reach the same loss
    // basin on the same dataset with the same scheme.
    use isgc::simnet::cluster::ClusterConfig;
    use isgc::simnet::policy::WaitPolicy;
    use isgc::simnet::trainer::{train, CodingScheme, TrainingConfig};

    let dataset = Dataset::synthetic_regression(192, 3, 0.02, 8);
    let placement = Placement::cyclic(4, 2).unwrap();

    let threaded = train_threaded(
        LinearRegression::new(3),
        dataset.clone(),
        &placement,
        &base_config(4, 5),
    );
    let simulated = train(
        &LinearRegression::new(3),
        &dataset,
        &CodingScheme::IsGc(placement),
        &WaitPolicy::All,
        ClusterConfig::uniform(4, 0.05, 0.05),
        &TrainingConfig {
            batch_size: 16,
            learning_rate: 0.05,
            loss_threshold: 0.02,
            max_steps: 400,
            seed: 5,
            ..TrainingConfig::default()
        },
    );
    assert!(threaded.reached_threshold && simulated.reached_threshold);
    assert!((threaded.final_loss() - simulated.final_loss()).abs() < 0.02);
}

#[test]
fn full_wait_recovers_everything_every_step() {
    let dataset = Dataset::synthetic_regression(96, 2, 0.05, 6);
    let placement = Placement::fractional(4, 2).unwrap();
    let report = train_threaded(
        LinearRegression::new(2),
        dataset,
        &placement,
        &base_config(4, 7),
    );
    assert!(report.recovered_fractions().iter().all(|&f| f == 1.0));
}
