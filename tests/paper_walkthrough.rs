//! A literal walkthrough of the paper's worked examples (Figures 1–4),
//! asserting the exact numbers the introduction uses to motivate IS-GC.
//! Worker/partition indices are 0-based here (the paper is 1-based).

use isgc::core::classic::ClassicGc;
use isgc::core::decode::{ArrivalOrderDecoder, CrDecoder, Decoder};
use isgc::core::encode::SumEncoder;
use isgc::core::{ConflictGraph, Placement, WorkerSet};
use isgc::linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The running example's per-partition gradients: scalars g1..g4 = 1..4, so
/// the full gradient is 10.
fn gradients() -> Vec<Vector> {
    (0..4)
        .map(|j| Vector::from_slice(&[j as f64 + 1.0]))
        .collect()
}

/// Fig. 1(a): plain distributed SGD needs *all four* workers for
/// g = g1 + g2 + g3 + g4.
#[test]
fn fig1a_synchronous_needs_everyone() {
    let placement = Placement::cyclic(4, 1).unwrap();
    let decoder = CrDecoder::new(&placement).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let all = decoder.decode(&WorkerSet::full(4), &mut rng);
    assert_eq!(all.recovered_count(), 4);
    // One straggler loses its partition forever in this scheme.
    let short = decoder.decode(&WorkerSet::from_indices(4, [0, 1, 2]), &mut rng);
    assert_eq!(short.recovered_count(), 3);
}

/// Fig. 1(b): classic GC with n = 4, c = 2 — any 3 codewords reconstruct the
/// exact full gradient (the paper's −g1+g2 / g3+⅓g4 / ⅔g4+2g1 combination is
/// one instance; our Tandon construction realizes the same property).
#[test]
fn fig1b_classic_gc_any_three_workers() {
    let mut rng = StdRng::seed_from_u64(1);
    let gc = ClassicGc::cyclic(4, 2, &mut rng).unwrap();
    let grads = gradients();
    let codewords: Vec<Vector> = (0..4).map(|w| gc.encode(w, &grads)).collect();
    for straggler in 0..4 {
        let avail = WorkerSet::from_indices(4, (0..4).filter(|&w| w != straggler));
        let g = gc.recover(&avail, |w| codewords[w].clone(), 1).unwrap();
        assert!((g[0] - 10.0).abs() < 1e-6, "straggler {straggler}");
    }
    // But two stragglers defeat it completely — the first restriction the
    // paper calls out.
    assert!(gc
        .decoding_vector(&WorkerSet::from_indices(4, [0, 2]))
        .is_err());
}

/// Fig. 1(c): IS-SGD with workers 1 and 3 (0-based 0 and 2) available
/// recovers exactly g1 + g3 = 1 + 3 = 4.
#[test]
fn fig1c_issgd_partial_recovery() {
    let placement = Placement::cyclic(4, 1).unwrap();
    let decoder = CrDecoder::new(&placement).unwrap();
    let encoder = SumEncoder::new(&placement);
    let mut rng = StdRng::seed_from_u64(2);
    let grads = gradients();
    let result = decoder.decode(&WorkerSet::from_indices(4, [0, 2]), &mut rng);
    assert_eq!(result.partitions(), &[0, 2]);
    let g_hat = encoder.assemble(&result, 1, |w| grads[w].clone());
    assert_eq!(g_hat[0], 4.0); // g1 + g3
}

/// Fig. 1(d): IS-GC from the *same two* workers recovers the full
/// g1 + g2 + g3 + g4 = 10 — the paper's headline example.
#[test]
fn fig1d_isgc_full_recovery_from_two_workers() {
    let placement = Placement::cyclic(4, 2).unwrap();
    let decoder = CrDecoder::new(&placement).unwrap();
    let encoder = SumEncoder::new(&placement);
    let mut rng = StdRng::seed_from_u64(3);
    let grads = gradients();
    let result = decoder.decode(&WorkerSet::from_indices(4, [0, 2]), &mut rng);
    assert_eq!(result.selected(), &[0, 2]);
    assert_eq!(result.partitions(), &[0, 1, 2, 3]);
    let g_hat = encoder.assemble(&result, 1, |w| {
        let parts: Vec<Vector> = placement
            .partitions_of(w)
            .iter()
            .map(|&j| grads[j].clone())
            .collect();
        encoder.encode(w, &parts)
    });
    assert_eq!(g_hat[0], 10.0);
}

/// Fig. 2(a): FR with n = 4, c = 2 — workers 1,2 hold {D1,D2} and workers
/// 3,4 hold {D3,D4}; same-group codewords are identical.
#[test]
fn fig2a_fr_groups_and_codewords() {
    let placement = Placement::fractional(4, 2).unwrap();
    assert_eq!(placement.partitions_of(0), placement.partitions_of(1));
    assert_eq!(placement.partitions_of(2), placement.partitions_of(3));
    assert_eq!(placement.partitions_of(0), &[0, 1]);
    assert_eq!(placement.partitions_of(2), &[2, 3]);
    let encoder = SumEncoder::new(&placement);
    let grads = gradients();
    let cw = |w: usize| {
        let parts: Vec<Vector> = placement
            .partitions_of(w)
            .iter()
            .map(|&j| grads[j].clone())
            .collect();
        encoder.encode(w, &parts)
    };
    assert_eq!(cw(0).as_slice(), cw(1).as_slice());
    assert_eq!(cw(0)[0], 3.0); // g1 + g2
    assert_eq!(cw(2)[0], 7.0); // g3 + g4
}

/// Fig. 2(b): CR with n = 4 places partitions cyclically.
#[test]
fn fig2b_cr_cyclic_placement() {
    let placement = Placement::cyclic(4, 2).unwrap();
    assert_eq!(placement.partitions_of(0), &[0, 1]);
    assert_eq!(placement.partitions_of(1), &[1, 2]);
    assert_eq!(placement.partitions_of(2), &[2, 3]);
    assert_eq!(placement.partitions_of(3), &[0, 3]);
}

/// Fig. 3: decoding in arrival order is suboptimal — accepting W1's
/// g1+g2 first blocks both W4 (g4+g1) and W3's partner; ignoring it lets
/// g2+g3 and g4+g1 combine into the full gradient.
#[test]
fn fig3_greedy_arrival_order_is_suboptimal() {
    let placement = Placement::cyclic(4, 2).unwrap();
    let greedy = ArrivalOrderDecoder::new(&placement);
    // Arrivals: W1 (0), then W2 (1), then W4 (3).
    let in_order = greedy.decode_in_order(&[0, 1, 3]);
    assert_eq!(in_order.selected(), &[0]); // both later arrivals conflict
    assert_eq!(in_order.recovered_count(), 2);
    // The optimal decode of the same set ignores W1 and takes W2 + W4.
    let optimal = CrDecoder::new(&placement).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let best = optimal.decode(&WorkerSet::from_indices(4, [0, 1, 3]), &mut rng);
    assert_eq!(best.selected(), &[1, 3]);
    assert_eq!(best.recovered_count(), 4); // g1+g2+g3+g4 via g2+g3 and g4+g1
}

/// Fig. 4: the conflict graphs of FR and CR at n = 4, c = 2 — two disjoint
/// edges vs. the 4-cycle.
#[test]
fn fig4_conflict_graphs() {
    let fr = ConflictGraph::from_placement(&Placement::fractional(4, 2).unwrap());
    assert_eq!(fr.edges(), vec![(0, 1), (2, 3)]);
    let cr = ConflictGraph::from_placement(&Placement::cyclic(4, 2).unwrap());
    assert_eq!(cr.edges(), vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    // The discussion under Fig. 4(b): from {W1, W2, W3} a search starting at
    // W2 finds only {W2}, while {W1, W3} is maximum.
    assert!(cr.is_independent(&[0, 2]));
    assert!(!cr.is_independent(&[1, 0]));
    assert!(!cr.is_independent(&[1, 2]));
    assert_eq!(cr.alpha(&WorkerSet::from_indices(4, [0, 1, 2])), 2);
}
