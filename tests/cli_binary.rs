//! End-to-end tests of the `isgc` binary itself (spawned as a subprocess).

use std::process::Command;

fn isgc(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_isgc"))
        .args(args)
        .output()
        .expect("failed to spawn isgc binary");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let (ok, stdout, _) = isgc(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn decode_fig1d_through_the_binary() {
    let (ok, stdout, _) = isgc(&["decode", "cr", "4", "2", "0,2"]);
    assert!(ok);
    assert!(stdout.contains("recovered:         4/4"));
}

#[test]
fn placement_hr_through_the_binary() {
    let (ok, stdout, _) = isgc(&["placement", "hr", "8", "2", "2", "2"]);
    assert!(ok);
    assert!(stdout.contains("HR placement, n = 8, c = 4"));
}

#[test]
fn recommend_through_the_binary() {
    let (ok, stdout, _) = isgc(&["recommend", "12", "3"]);
    assert!(ok);
    assert!(stdout.contains("FR"));
}

#[test]
fn bad_command_fails_with_message() {
    let (ok, _, stderr) = isgc(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn bad_parameters_fail_cleanly() {
    let (ok, _, stderr) = isgc(&["placement", "fr", "4", "3"]);
    assert!(!ok);
    assert!(stderr.contains("FR requires c | n"));
}
