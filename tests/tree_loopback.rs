//! End-to-end 2-level aggregation over real sockets: a root master, two
//! sub-masters, and sixteen workers on 127.0.0.1. The acceptance bar is
//! exact: the tree run's recovery fingerprint, loss curve, and final
//! parameters are *bitwise* identical to a flat run of the same
//! configuration — hierarchical aggregation is an implementation detail,
//! never a numerics change.

use std::thread;
use std::time::Duration;

use isgc_core::Placement;
use isgc_engine::{shard_ranges, SessionStatus};
use isgc_ml::dataset::Dataset;
use isgc_ml::model::LinearRegression;
use isgc_net::{
    run_worker, Master, NetConfig, NetTrainReport, Submaster, SubmasterOptions, WaitPolicy,
    WorkerOptions,
};

const N: usize = 16;
const C: usize = 2;
const SUBMASTERS: usize = 2;
const FEATURES: usize = 4;
const SAMPLES: usize = 192;
const SEED: u64 = 2023;
const STEPS: usize = 5;

fn shared_dataset() -> Dataset {
    Dataset::synthetic_regression(SAMPLES, FEATURES, 0.05, SEED)
}

fn config() -> NetConfig {
    let placement = Placement::fractional(N, C).expect("valid FR placement");
    // Wait for everyone and inject no delays: both topologies then see the
    // full arrival set every step, so any divergence is an aggregation bug,
    // not a timing artifact.
    let mut config = NetConfig::new(placement, WaitPolicy::FirstW(N));
    config.batch_size = 8;
    config.learning_rate = 0.02;
    config.max_steps = STEPS;
    config.seed = SEED;
    config.register_timeout = Duration::from_secs(20);
    config
}

fn spawn_worker(addr: std::net::SocketAddr) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let options = WorkerOptions::default();
        let summary = run_worker(addr, &options, |_assignment| {
            (LinearRegression::new(FEATURES), shared_dataset())
        })
        .expect("worker run");
        assert_eq!(summary.cause, isgc_net::ShutdownCause::MasterShutdown);
    })
}

fn flat_run() -> NetTrainReport {
    let master = Master::bind("127.0.0.1:0").expect("bind master");
    let addr = master.local_addr().expect("local addr");
    let workers: Vec<_> = (0..N).map(|_| spawn_worker(addr)).collect();

    let mut session = master
        .into_session(LinearRegression::new(FEATURES), shared_dataset(), &config())
        .expect("flat session");
    while session.step().expect("flat step") == SessionStatus::Running {}
    let report = session.finish();
    for w in workers {
        w.join().expect("worker thread");
    }
    report
}

fn tree_run() -> NetTrainReport {
    let master = Master::bind("127.0.0.1:0").expect("bind root");
    let root_addr = master.local_addr().expect("root addr");

    // Bind the sub-masters before starting them so the workers can be
    // pointed at their shard's address immediately.
    let subs: Vec<Submaster> = (0..SUBMASTERS)
        .map(|_| Submaster::bind("127.0.0.1:0").expect("bind sub-master"))
        .collect();
    let sub_addrs: Vec<_> = subs
        .iter()
        .map(|s| s.local_addr().expect("sub addr"))
        .collect();
    let sub_handles: Vec<_> = subs
        .into_iter()
        .enumerate()
        .map(|(shard, sub)| {
            thread::spawn(move || {
                sub.run(root_addr, shard, &SubmasterOptions::default())
                    .expect("sub-master run")
            })
        })
        .collect();

    let mut workers = Vec::new();
    for (shard, &(lo, hi)) in shard_ranges(N, SUBMASTERS).iter().enumerate() {
        for _ in lo..hi {
            workers.push(spawn_worker(sub_addrs[shard]));
        }
    }

    let mut session = master
        .into_tree_session(
            LinearRegression::new(FEATURES),
            shared_dataset(),
            &config(),
            SUBMASTERS,
        )
        .expect("tree session");
    while session.step().expect("tree step") == SessionStatus::Running {}
    let report = session.finish();

    for handle in sub_handles {
        let summary = handle.join().expect("sub-master thread");
        assert!(summary.clean_shutdown, "sub-master saw no Shutdown");
        assert_eq!(summary.steps_served, STEPS);
        assert!(!summary.crashed);
    }
    for w in workers {
        w.join().expect("worker thread");
    }
    report
}

#[test]
fn two_level_tree_matches_flat_bitwise_over_tcp() {
    let flat = flat_run();
    let tree = tree_run();

    assert_eq!(flat.step_count(), STEPS);
    assert_eq!(tree.step_count(), STEPS);
    assert_eq!(
        flat.recovery_fingerprint(),
        tree.recovery_fingerprint(),
        "tree recovery diverged from flat"
    );
    // Bitwise, not approximately: the canonical pairwise reduction makes
    // the merge order identical in both topologies.
    let flat_losses: Vec<u64> = flat.loss_curve().iter().map(|l| l.to_bits()).collect();
    let tree_losses: Vec<u64> = tree.loss_curve().iter().map(|l| l.to_bits()).collect();
    assert_eq!(flat_losses, tree_losses);
    let flat_params: Vec<u64> = flat
        .final_params
        .as_slice()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let tree_params: Vec<u64> = tree
        .final_params
        .as_slice()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    assert_eq!(flat_params, tree_params);

    // Every step saw the full cluster in both runs. The flat master records
    // arrivals in network-arrival order (nondeterministic), so compare as
    // sets — the fingerprint above already hashed them sorted.
    for (a, b) in flat.steps.iter().zip(tree.steps.iter()) {
        assert_eq!(a.arrivals.len(), N, "flat step {} missed arrivals", a.step);
        let mut flat_arrivals = a.arrivals.clone();
        flat_arrivals.sort_unstable();
        assert_eq!(flat_arrivals, b.arrivals, "step {}", a.step);
        assert_eq!(a.selected, b.selected, "step {}", a.step);
        assert_eq!(a.recovered, b.recovered, "step {}", a.step);
    }
}
