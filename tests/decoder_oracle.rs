//! The paper's linear-time decoders against the exact branch-and-bound
//! oracle, across a broad randomized space of placements and availability
//! patterns (complementing the exhaustive small-n tests inside `isgc-core`).

use isgc::core::decode::{
    ArrivalOrderDecoder, CrDecoder, Decoder, ExactDecoder, FrDecoder, HrDecoder,
};
use isgc::core::{bounds, ConflictGraph, HrParams, Placement, WorkerSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn check_optimal(
    placement: &Placement,
    decoder: &dyn Decoder,
    trials: usize,
    rng: &mut StdRng,
    label: &str,
) {
    let graph = ConflictGraph::from_placement(placement);
    let n = placement.n();
    let c = placement.c();
    for t in 0..trials {
        let w = rng.random_range(0..=n);
        let avail = WorkerSet::random_subset(n, w, rng);
        let result = decoder.decode(&avail, rng);
        // Valid selection…
        assert!(
            graph.is_independent(result.selected()),
            "{label} trial {t}: conflicting selection"
        );
        assert!(result.selected().iter().all(|&v| avail.contains(v)));
        // …of maximum size…
        let alpha = graph.alpha(&avail);
        assert_eq!(
            result.selected().len(),
            alpha,
            "{label} trial {t}: w={w}, got {} < alpha {alpha}",
            result.selected().len()
        );
        // …within the §VII-A bounds (placement-aware: genuine hybrids have
        // the ⌈w/n₀⌉ ≤ α ≤ min(w, g) bracket, not the raw Thm 10–11 one)…
        let (alpha_lo, alpha_hi) = bounds::alpha_bounds_of(placement, w);
        assert!(
            result.selected().len() >= alpha_lo,
            "{label} trial {t}: w={w}, {} below floor {alpha_lo}",
            result.selected().len()
        );
        assert!(
            result.selected().len() <= alpha_hi,
            "{label} trial {t}: w={w}, {} above ceiling {alpha_hi}",
            result.selected().len()
        );
        // …and partition bookkeeping is consistent.
        assert_eq!(result.recovered_count(), result.selected().len() * c);
    }
}

#[test]
fn fr_decoder_is_optimal_at_scale() {
    let mut rng = StdRng::seed_from_u64(1);
    for (n, c) in [(12usize, 3usize), (20, 4), (24, 2), (30, 5), (32, 8)] {
        let p = Placement::fractional(n, c).unwrap();
        let d = FrDecoder::new(&p).unwrap();
        check_optimal(&p, &d, 100, &mut rng, &format!("FR({n},{c})"));
    }
}

#[test]
fn cr_decoder_is_optimal_at_scale() {
    let mut rng = StdRng::seed_from_u64(2);
    for (n, c) in [
        (13usize, 3usize),
        (20, 4),
        (24, 2),
        (29, 6),
        (32, 8),
        (17, 1),
    ] {
        let p = Placement::cyclic(n, c).unwrap();
        let d = CrDecoder::new(&p).unwrap();
        check_optimal(&p, &d, 100, &mut rng, &format!("CR({n},{c})"));
    }
}

#[test]
fn hr_decoder_is_optimal_at_scale() {
    let mut rng = StdRng::seed_from_u64(3);
    let params = [
        HrParams::new(16, 4, 2, 2),
        HrParams::new(16, 2, 6, 2),
        HrParams::new(24, 6, 2, 2),
        HrParams::new(24, 4, 4, 2),
        HrParams::new(30, 6, 3, 2),
        HrParams::new(20, 4, 5, 0),
        HrParams::new(18, 3, 0, 4), // degenerate CR
    ];
    for prm in params {
        prm.validate().unwrap_or_else(|e| panic!("{prm:?}: {e}"));
        let p = Placement::hybrid(prm).unwrap();
        let d = HrDecoder::new(&p).unwrap();
        check_optimal(&p, &d, 80, &mut rng, &format!("{prm:?}"));
    }
}

/// Sweeps HR(n, c₁, c₂) over the *entire* Theorem 6 validity range
/// `c ≤ n₀ ≤ 2c − 1` (with every admissible `c₁`, including the `c₁ = 0`
/// CR degeneration and the `n₀ = c` FR corner), asserting via the exact
/// MIS oracle inside `check_optimal` that the Algorithm 3 + 4 selection is
/// *maximum*, not merely maximal.
#[test]
fn hr_decoder_is_optimal_across_the_theorem6_range() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut covered = std::collections::BTreeSet::new();
    let mut placements = 0usize;
    for g in 2usize..=3 {
        for c in 2usize..=5 {
            for n0 in c..=(2 * c - 1) {
                // A genuine hybrid needs n₀ ≤ c + c₁ (so group members
                // pairwise conflict), i.e. c₁ ≥ n₀ − c; c₁ = 0 is the CR
                // degeneration. validate() is the arbiter — the sweep only
                // proposes.
                for c1 in 0..=c.min(n0) {
                    let prm = HrParams::new(g * n0, g, c1, c - c1);
                    if prm.validate().is_err() {
                        continue;
                    }
                    let p = Placement::hybrid(prm).unwrap();
                    let d = HrDecoder::new(&p).unwrap();
                    check_optimal(&p, &d, 20, &mut rng, &format!("{prm:?}"));
                    covered.insert((c, n0));
                    placements += 1;
                }
            }
        }
    }
    // Every (c, n₀) cell of the validity range must have been exercised by
    // at least one parameterization.
    for c in 2usize..=5 {
        for n0 in c..=(2 * c - 1) {
            assert!(
                covered.contains(&(c, n0)),
                "no valid HR parameterization swept for c={c}, n0={n0}"
            );
        }
    }
    assert!(placements >= 40, "sweep unexpectedly small: {placements}");
}

#[test]
fn arrival_order_is_valid_but_sometimes_suboptimal() {
    let mut rng = StdRng::seed_from_u64(4);
    let p = Placement::cyclic(16, 4).unwrap();
    let graph = ConflictGraph::from_placement(&p);
    let greedy = ArrivalOrderDecoder::new(&p);
    let exact = ExactDecoder::new(&p);
    let mut suboptimal = 0usize;
    for _ in 0..300 {
        let w = rng.random_range(4..=12);
        let avail = WorkerSet::random_subset(16, w, &mut rng);
        let g = greedy.decode(&avail, &mut rng);
        let e = exact.decode(&avail, &mut rng);
        assert!(graph.is_independent(g.selected()));
        assert!(g.selected().len() <= e.selected().len());
        if g.selected().len() < e.selected().len() {
            suboptimal += 1;
        }
    }
    // The Fig. 3 phenomenon must actually occur — otherwise the optimal
    // decoders would be pointless.
    assert!(suboptimal > 0, "arrival-order greedy never suboptimal?");
}

/// Exercise the multi-word bitset paths (n > 64) through every decoder.
#[test]
fn decoders_work_beyond_one_bitset_word() {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 70;
    // FR(70, 5), CR(70, 6): oracle comparison is too slow at this size, so
    // check independence, bounds, and FR's exact group-counting optimality.
    let fr = Placement::fractional(n, 5).unwrap();
    let fr_dec = FrDecoder::new(&fr).unwrap();
    let fr_graph = ConflictGraph::from_placement(&fr);
    let cr = Placement::cyclic(n, 6).unwrap();
    let cr_dec = CrDecoder::new(&cr).unwrap();
    let cr_graph = ConflictGraph::from_placement(&cr);
    for _ in 0..50 {
        let w = rng.random_range(0..=n);
        let avail = WorkerSet::random_subset(n, w, &mut rng);

        let r = fr_dec.decode(&avail, &mut rng);
        assert!(fr_graph.is_independent(r.selected()));
        // FR optimality is exactly the number of groups with survivors.
        let surviving_groups = (0..n / 5)
            .filter(|g| (g * 5..(g + 1) * 5).any(|i| avail.contains(i)))
            .count();
        assert_eq!(r.selected().len(), surviving_groups);

        let r = cr_dec.decode(&avail, &mut rng);
        assert!(cr_graph.is_independent(r.selected()));
        assert!(r.selected().len() >= bounds::alpha_lower_bound(n, 6, w));
        assert!(r.selected().len() <= bounds::alpha_upper_bound(n, 6, w));
    }
}

#[test]
fn decoders_are_deterministic_given_rng_state() {
    let p = Placement::cyclic(20, 4).unwrap();
    let d = CrDecoder::new(&p).unwrap();
    let avail = WorkerSet::from_indices(20, [0, 3, 5, 9, 12, 13, 18]);
    let a = d.decode(&avail, &mut StdRng::seed_from_u64(9));
    let b = d.decode(&avail, &mut StdRng::seed_from_u64(9));
    assert_eq!(a, b);
}
