//! Direct checks of the paper's theorems at sizes beyond the unit tests.

use isgc::core::conflict::ring_distance;
use isgc::core::decode::{CrDecoder, Decoder};
use isgc::core::{bounds, ConflictGraph, HrParams, Placement, WorkerSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 1: the CR conflict graph is the circulant `C_n^{1..c−1}` — two
/// workers conflict iff their ring distance is below c.
#[test]
fn theorem_1_circulant_structure() {
    for n in [16usize, 23, 32, 41] {
        for c in [1usize, 2, 5, n / 2, n] {
            let p = Placement::cyclic(n, c).unwrap();
            let g = ConflictGraph::from_placement(&p);
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        assert_eq!(
                            g.has_edge(a, b),
                            ring_distance(n, a, b) < c,
                            "n={n}, c={c}, ({a},{b})"
                        );
                    }
                }
            }
        }
    }
}

/// Theorem 4: `E_FR(n,c) ⊂ E_CR(n,c) ⊂ … ⊂ E_CR(n,n)`, strictly where the
/// paper claims containment.
#[test]
fn theorem_4_edge_chain() {
    for (n, c) in [(12usize, 2usize), (12, 4), (24, 3), (24, 6)] {
        let fr = ConflictGraph::from_placement(&Placement::fractional(n, c).unwrap());
        let mut prev = ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap());
        assert!(fr.is_subgraph_of(&prev));
        assert!(
            fr.edge_count() < prev.edge_count(),
            "FR({n},{c}) not strict"
        );
        for c_next in (c + 1)..=n {
            let next = ConflictGraph::from_placement(&Placement::cyclic(n, c_next).unwrap());
            assert!(
                prev.is_subgraph_of(&next),
                "CR({n},{}) ⊄ CR({n},{c_next})",
                c_next - 1
            );
            prev = next;
        }
        // The chain ends at the complete graph.
        assert_eq!(prev.edge_count(), n * (n - 1) / 2);
    }
}

/// Theorem 5: when `n0 ≤ 2c − 1`, HR's conflict graph equals FR(n, n0)'s
/// (groups become cliques with no cross-group edges for c2 = 0).
#[test]
fn theorem_5_hr_equals_fr_conflicts() {
    for (n, g) in [(12usize, 3usize), (16, 4), (20, 4), (24, 4)] {
        let n0 = n / g;
        // c1 = n0, c2 = 0: each worker stores its entire group.
        let hr = Placement::hybrid(HrParams::new(n, g, n0, 0)).unwrap();
        let fr = Placement::fractional(n, n0).unwrap();
        let hr_g = ConflictGraph::from_placement(&hr);
        let fr_g = ConflictGraph::from_placement(&fr);
        assert_eq!(hr_g.edges(), fr_g.edges(), "n={n}, g={g}");
    }
}

/// Theorem 6: within the valid range `c ≤ n0 ≤ 2c − 1` with `c1 > 0`, all
/// workers of a group pairwise conflict.
#[test]
fn theorem_6_groups_are_cliques() {
    for prm in [
        HrParams::new(16, 4, 2, 2),
        HrParams::new(24, 4, 4, 2),
        HrParams::new(30, 6, 3, 2),
        HrParams::new(8, 2, 1, 3),
    ] {
        prm.validate().unwrap();
        let p = Placement::hybrid(prm).unwrap();
        let n0 = prm.n0();
        for group in 0..prm.g() {
            for a in group * n0..(group + 1) * n0 {
                for b in (a + 1)..(group + 1) * n0 {
                    assert!(p.conflicts(a, b), "{prm:?}: ({a},{b}) in group {group}");
                }
            }
        }
    }
}

/// Theorem 7: with fixed c, moving weight from c1 to c2 only adds edges:
/// `E_HR(n,c,0) ⊆ E_HR(n,c−1,1) ⊆ … ⊆ E_HR(n,·,·)`.
#[test]
fn theorem_7_hr_chain_monotone() {
    for (n, g, c) in [(16usize, 4usize, 4usize), (24, 4, 6), (30, 6, 5)] {
        let mut prev: Option<ConflictGraph> = None;
        for c2 in 0..=c {
            let prm = HrParams::new(n, g, c - c2, c2);
            if prm.validate().is_err() {
                continue;
            }
            let graph = ConflictGraph::from_placement(&Placement::hybrid(prm).unwrap());
            if let Some(p) = &prev {
                assert!(
                    p.is_subgraph_of(&graph),
                    "n={n}, g={g}, c={c}: chain broken at c2={c2}"
                );
            }
            prev = Some(graph);
        }
    }
}

/// Theorems 10-11 at the extremes: consecutive availability attains the
/// lower bound; maximally spread availability attains the upper bound.
#[test]
fn theorems_10_11_tightness() {
    let mut rng = StdRng::seed_from_u64(5);
    for (n, c) in [(24usize, 3usize), (24, 4), (30, 5)] {
        let p = Placement::cyclic(n, c).unwrap();
        let d = CrDecoder::new(&p).unwrap();
        for w in [n / 4, n / 2] {
            // Worst case: w consecutive workers.
            let consecutive = WorkerSet::from_indices(n, 0..w);
            let got = d.decode(&consecutive, &mut rng).selected().len();
            assert_eq!(
                got,
                bounds::alpha_lower_bound(n, c, w),
                "lower n={n} c={c} w={w}"
            );
            // Best case: workers spread c apart.
            if w <= n / c {
                let spread = WorkerSet::from_indices(n, (0..w).map(|i| i * c));
                let got = d.decode(&spread, &mut rng).selected().len();
                assert_eq!(
                    got,
                    bounds::alpha_upper_bound(n, c, w),
                    "upper n={n} c={c} w={w}"
                );
            }
        }
    }
}

/// §VII-A: FR's independence number dominates CR's on every induced
/// subgraph (the corollary of Theorem 4 driving Fig. 12's FR > CR gap).
#[test]
fn fr_alpha_dominates_cr_alpha() {
    let mut rng = StdRng::seed_from_u64(6);
    for (n, c) in [(12usize, 2usize), (12, 3), (16, 4)] {
        let fr = ConflictGraph::from_placement(&Placement::fractional(n, c).unwrap());
        let cr = ConflictGraph::from_placement(&Placement::cyclic(n, c).unwrap());
        let mut strictly_better = 0usize;
        for _ in 0..200 {
            let w = 1 + (rand::Rng::random_range(&mut rng, 0..n));
            let avail = WorkerSet::random_subset(n, w, &mut rng);
            let a_fr = fr.alpha(&avail);
            let a_cr = cr.alpha(&avail);
            assert!(a_fr >= a_cr, "n={n}, c={c}: FR {a_fr} < CR {a_cr}");
            if a_fr > a_cr {
                strictly_better += 1;
            }
        }
        if c > 1 {
            assert!(
                strictly_better > 0,
                "FR never strictly better at n={n}, c={c}"
            );
        }
    }
}

/// Theorem 12, quantitative: for linear least squares the per-step descent
/// inequality
/// `E[f(β⁺)] ≤ f(β) − η·|D_d|·||∇f(β)||² + L·η²·σ²·|D_d|²/2`
/// holds empirically, with L the largest Hessian eigenvalue and σ² the
/// empirical second-moment bound of the decoded gradient (Assumption 3).
#[test]
fn theorem_12_descent_inequality_holds_empirically() {
    use isgc::core::decode::{CrDecoder, Decoder};
    use isgc::linalg::{Matrix, Vector};
    use isgc::ml::dataset::Dataset;
    use isgc::ml::model::{LinearRegression, Model};

    let n = 6usize;
    let c = 2usize;
    let samples = 120usize;
    let data = Dataset::synthetic_regression(samples, 3, 0.3, 13);
    let model = LinearRegression::new(3);
    let placement = Placement::cyclic(n, c).unwrap();
    let decoder = CrDecoder::new(&placement).unwrap();
    let partitions = data.partition(n);
    let all: Vec<usize> = (0..samples).collect();

    // L: largest eigenvalue of the mean Hessian (1/d) Σ x̃ x̃ᵀ with the bias
    // column appended — estimated by power iteration.
    let xt = Matrix::from_fn(samples, 4, |r, cidx| {
        if cidx < 3 {
            data.features_of(r)[cidx]
        } else {
            1.0
        }
    });
    let mut v = Vector::filled(4, 1.0);
    let mut lambda = 0.0;
    for _ in 0..200 {
        let mut hv = xt.matvec_transposed(&xt.matvec(&v));
        hv.scale(1.0 / samples as f64);
        lambda = hv.norm();
        if lambda == 0.0 {
            break;
        }
        hv.scale(1.0 / lambda);
        v = hv;
    }
    let l_smooth = lambda;

    let mut rng = StdRng::seed_from_u64(21);
    let eta = 0.002; // small per Theorem 12's requirement
    let mut params = {
        let mut p = Vector::zeros(4);
        p[0] = 1.5; // start away from the optimum
        p
    };

    for _trial in 0..8 {
        let f_beta = model.loss_mean(&params, &data, &all);
        let grad_full = {
            let mut g = model.gradient_sum(&params, &data, &all);
            g.scale(1.0 / samples as f64);
            g
        };
        // Empirical expectation of f(β⁺) and of ||ĝ_normalized||² over many
        // sampled straggler patterns at fixed w = 3.
        let trials = 400;
        let mut mean_f_next = 0.0;
        let mut sigma2: f64 = 0.0;
        let mut mean_dd: f64 = 0.0;
        for _ in 0..trials {
            let avail = WorkerSet::random_subset(n, 3, &mut rng);
            let result = decoder.decode(&avail, &mut rng);
            // Decoded gradient per Assumption 2: mean over recovered samples
            // (full-partition batches make it exact, not stochastic).
            let mut g_hat = Vector::zeros(4);
            let mut recovered_samples = 0usize;
            for &j in result.partitions() {
                let idx: Vec<usize> = partitions.range(j).collect();
                recovered_samples += idx.len();
                g_hat.axpy(1.0, &model.gradient_sum(&params, &data, &idx));
            }
            if recovered_samples == 0 {
                continue;
            }
            g_hat.scale(1.0 / recovered_samples as f64);
            // Theorem 12's |D_d| as a *fraction* of the dataset keeps the
            // units of η consistent with the full-gradient norm.
            let dd = recovered_samples as f64 / samples as f64;
            mean_dd += dd;
            sigma2 = sigma2.max(g_hat.norm_squared());
            let mut next = params.clone();
            next.axpy(-eta * dd * samples as f64, &g_hat);
            mean_f_next += model.loss_mean(&next, &data, &all);
        }
        mean_f_next /= trials as f64;
        mean_dd = mean_dd / trials as f64 * samples as f64;
        let eta_eff = eta;
        let bound = f_beta - eta_eff * mean_dd * grad_full.norm_squared()
            + l_smooth * eta_eff * eta_eff * sigma2 * mean_dd * mean_dd / 2.0;
        assert!(
            mean_f_next <= bound + 1e-9,
            "E[f+]={mean_f_next} > bound={bound} (f={f_beta})"
        );
        // Advance β along the full gradient to test several points.
        params.axpy(-0.05, &grad_full);
    }
}

/// Theorem 12 (flavor): with a small enough learning rate, the expected loss
/// decreases monotonically-in-trend under partial recovery.
#[test]
fn theorem_12_convergence_trend() {
    use isgc::ml::dataset::Dataset;
    use isgc::ml::model::SoftmaxRegression;
    use isgc::simnet::cluster::{ClusterConfig, StragglerSelection};
    use isgc::simnet::delay::Delay;
    use isgc::simnet::policy::WaitPolicy;
    use isgc::simnet::trainer::{train, CodingScheme, TrainingConfig};

    let dataset = Dataset::gaussian_classification(256, 6, 3, 3.0, 11);
    let model = SoftmaxRegression::new(6, 3);
    let cluster = ClusterConfig {
        n: 6,
        compute_time_per_partition: 0.01,
        comm_time: 0.01,
        jitter: Delay::Exponential { mean: 0.1 },
        straggler_delay: Delay::none(),
        stragglers: StragglerSelection::None,
    };
    let report = train(
        &model,
        &dataset,
        &CodingScheme::IsGc(Placement::cyclic(6, 2).unwrap()),
        &WaitPolicy::WaitForCount(3),
        cluster,
        &TrainingConfig {
            learning_rate: 0.02,
            loss_threshold: 0.0,
            max_steps: 300,
            ..TrainingConfig::default()
        },
    );
    // Smoothed loss (window 30) must be non-increasing to within noise.
    let smooth: Vec<f64> = report
        .loss_curve()
        .windows(30)
        .map(|w| w.iter().sum::<f64>() / 30.0)
        .collect();
    for pair in smooth.windows(60) {
        assert!(
            pair[59] <= pair[0] * 1.02,
            "smoothed loss increased: {} -> {}",
            pair[0],
            pair[59]
        );
    }
    assert!(report.final_loss() < report.loss_curve()[0] / 2.0);
}
