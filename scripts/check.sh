#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and every test in the
# workspace. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== chaos smoke (seeded, deterministic)"
cargo run --release --quiet -- chaos --plan smoke --seed 42

echo "ok: fmt, clippy, tests, and chaos smoke all clean"
