#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and every test in the
# workspace. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test"
cargo test --workspace -q

echo "== cross-backend engine parity (net loopback vs simulator)"
cargo test -q --test engine_parity

echo "== metrics snapshots match their goldens (scripts/bless.sh to re-bless)"
# Runs un-blessed: any drift of the logical metric series from the files in
# tests/golden/ is a hard failure here, never a silent regeneration.
cargo test -q --test obs_snapshot

echo "== chaos smoke (seeded, deterministic)"
cargo run --release --quiet -- chaos --plan smoke --seed 42

echo "== sub-master crash smoke (2-level tree, seeded, deterministic)"
cargo run --release --quiet -- chaos --plan submaster-crash --seed 42

echo "== blackout smoke (graceful degradation ladder, seeded, deterministic)"
cargo run --release --quiet -- chaos --plan blackout --seed 42

echo "== multi-tenant smoke (2 jobs x 2-level tree on loopback)"
cargo run --release --quiet -- launch fr 8 2 --jobs 2 --tree 2 --steps 4

echo "== reactor scale smoke (64 workers from one swarm process)"
# The master must stay an event loop: its process may use at most the
# reactor/state-machine thread plus the CLI main thread, no matter how many
# workers connect. (It is in fact 1 thread — the reactor is polled inline.)
swarm_out=$(cargo run --release --quiet -- launch fr 64 2 --w 62 --steps 4 --swarm 1)
echo "$swarm_out" | tail -6
threads=$(echo "$swarm_out" | sed -n 's/^master threads during run: //p')
if [ -z "$threads" ] || [ "$threads" -gt 2 ]; then
  echo "FAIL: master ran with ${threads:-unknown} threads (expected <= 2)" >&2
  exit 1
fi

echo "== protocol model-check smoke (flat3, depth-limited, exhaustive)"
# Enumerates every delivery order and ≤2-fault schedule of an FR(3, 1)
# cluster through the real collector loop; any invariant violation fails the
# command (and would write a replayable counterexample trace).
mc_out=$(cargo run --release --quiet -- mc --shape flat3 --depth 32 --trace-out target/mc_trace.json)
echo "$mc_out" | sed -n '2p;6p'
mc_rate=$(echo "$mc_out" | sed -n 's/^mc_flat3_states_per_sec: //p')
printf '{\n  "mc_flat3_states_per_sec": %s\n}\n' "$mc_rate" > target/BENCH_mc_smoke.json
scripts/bench_guard.sh target/BENCH_mc_smoke.json BENCH_mc.json

echo "== model-checker mutation loop (seeded bug: find -> shrink -> replay)"
# The mc-mutation feature weakens the real master's stale guard; the gated
# suite must find the bug by exhaustive search, shrink the schedule to its
# 1-minimal core, and reproduce the exact failure fingerprint on a real
# loopback cluster.
cargo test --release -q -p isgc-mc --features mc-mutation --test mutation

echo "== kernels bench smoke + regression guard (30% ns/elem budget)"
# A reduced-iteration measurement on this host, compared per-kernel against
# the checked-in BENCH_kernels.json; >30% slower on any kernel fails.
ISGC_BENCH_SMOKE=1 cargo run --release --quiet -p isgc-bench --bin kernels -- target/BENCH_kernels_smoke.json > /dev/null
scripts/bench_guard.sh target/BENCH_kernels_smoke.json

echo "ok: fmt, clippy, docs, tests, engine parity, snapshots, chaos, blackout, multi-tenant, reactor scale, model check, and perf guards all clean"
