#!/usr/bin/env bash
# Kernel perf regression guard: compares a freshly measured
# BENCH_kernels.json against the checked-in baseline and fails when any
# kernel's ns/elem regressed by more than 30%.
#
# Usage: scripts/bench_guard.sh <fresh.json> [baseline.json]
#
# Only `_ns_per_elem` keys are compared (lower is better, machine-portable
# as a ratio); speedup/e2e/alloc keys are informational and skipped —
# steps/sec depends on host load far more than on code.
set -euo pipefail
cd "$(dirname "$0")/.."

fresh="${1:?usage: scripts/bench_guard.sh <fresh.json> [baseline.json]}"
baseline="${2:-BENCH_kernels.json}"
limit="1.30"

[ -f "$fresh" ] || { echo "FAIL: fresh results '$fresh' not found" >&2; exit 1; }
[ -f "$baseline" ] || { echo "FAIL: baseline '$baseline' not found" >&2; exit 1; }

# Extracts `"key": value` pairs for keys ending in _ns_per_elem.
extract() {
  sed -n 's/^ *"\([a-z0-9_]*_ns_per_elem\)": *\([0-9.]*\),*$/\1 \2/p' "$1"
}

fail=0
checked=0
while read -r key base; do
  now=$(extract "$fresh" | awk -v k="$key" '$1 == k { print $2 }')
  if [ -z "$now" ]; then
    echo "FAIL: $key missing from $fresh" >&2
    fail=1
    continue
  fi
  checked=$((checked + 1))
  if awk -v n="$now" -v b="$base" -v l="$limit" 'BEGIN { exit !(n > b * l) }'; then
    echo "FAIL: $key regressed: $now ns/elem vs baseline $base (> ${limit}x)" >&2
    fail=1
  fi
done < <(extract "$baseline")

if [ "$checked" -eq 0 ]; then
  echo "FAIL: no _ns_per_elem keys found in $baseline" >&2
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "ok: $checked kernel timings within ${limit}x of baseline"
