#!/usr/bin/env bash
# Perf regression guard: compares a freshly measured results JSON against a
# checked-in baseline and fails on >30% regression of any guarded metric.
#
# Usage: scripts/bench_guard.sh <fresh.json> [baseline.json]
#
# Two metric families are guarded, distinguished by key suffix:
#   *_ns_per_elem    lower is better  — fails when fresh > base * 1.30
#   *_states_per_sec higher is better — fails when fresh < base / 1.30
# (kernel timings from BENCH_kernels.json, model-checker exploration
# throughput from BENCH_mc.json). All other keys are informational and
# skipped — wall-clock totals and steps/sec depend on host load far more
# than on code.
set -euo pipefail
cd "$(dirname "$0")/.."

fresh="${1:?usage: scripts/bench_guard.sh <fresh.json> [baseline.json]}"
baseline="${2:-BENCH_kernels.json}"
limit="1.30"

[ -f "$fresh" ] || { echo "FAIL: fresh results '$fresh' not found" >&2; exit 1; }
[ -f "$baseline" ] || { echo "FAIL: baseline '$baseline' not found" >&2; exit 1; }

# Extracts `"key": value` pairs for guarded keys of either family.
extract() {
  sed -n 's/^ *"\([a-z0-9_]*_\(ns_per_elem\|states_per_sec\)\)": *\([0-9.]*\),*$/\1 \3/p' "$1"
}

fail=0
checked=0
while read -r key base; do
  now=$(extract "$fresh" | awk -v k="$key" '$1 == k { print $2 }')
  if [ -z "$now" ]; then
    echo "FAIL: $key missing from $fresh" >&2
    fail=1
    continue
  fi
  checked=$((checked + 1))
  case "$key" in
    *_states_per_sec)
      # Higher is better: regression means throughput fell below base/limit.
      if awk -v n="$now" -v b="$base" -v l="$limit" 'BEGIN { exit !(n < b / l) }'; then
        echo "FAIL: $key regressed: $now states/sec vs baseline $base (< baseline/${limit})" >&2
        fail=1
      fi
      ;;
    *)
      # Lower is better (ns/elem).
      if awk -v n="$now" -v b="$base" -v l="$limit" 'BEGIN { exit !(n > b * l) }'; then
        echo "FAIL: $key regressed: $now ns/elem vs baseline $base (> ${limit}x)" >&2
        fail=1
      fi
      ;;
  esac
done < <(extract "$baseline")

if [ "$checked" -eq 0 ]; then
  echo "FAIL: no guarded keys found in $baseline" >&2
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "ok: $checked guarded metrics within ${limit}x of baseline"
