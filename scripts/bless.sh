#!/usr/bin/env bash
# Regenerates the golden metric snapshots in tests/golden/ from the current
# code, then immediately re-runs the suite un-blessed to prove the new
# goldens are stable. Use only when a change *intentionally* alters the
# logical metric series; review the resulting diff like any other code.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== blessing golden snapshots (ISGC_BLESS=1)"
ISGC_BLESS=1 cargo test -q --test obs_snapshot

echo "== verifying the fresh goldens reproduce un-blessed"
cargo test -q --test obs_snapshot

echo "ok: goldens re-blessed — inspect 'git diff tests/golden/' before committing"
