//! An offline, in-tree subset of the [`crossbeam`](https://docs.rs/crossbeam)
//! API used by this workspace: unbounded MPMC channels with blocking,
//! non-blocking, and deadline-bounded receives.
//!
//! The build environment has no access to crates.io, so the channel is
//! implemented on `std::sync::{Mutex, Condvar}`. Semantics match crossbeam's
//! for the operations exposed here: cloning either endpoint is cheap,
//! `recv` blocks until a message or until every `Sender` is dropped, and
//! `send` fails only when every `Receiver` is dropped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Unbounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// `send` failed because every `Receiver` was dropped; returns the value.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: `Debug` without a `T: Debug` bound, so
    // `.expect(..)` works on channels of non-Debug payloads.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// `recv` failed because the channel is empty and every `Sender` was
    /// dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every `Sender` was dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Why a bounded-time receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait deadline elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every `Sender` was dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        ///
        /// # Errors
        ///
        /// Returns the value when every `Receiver` has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all receivers so they observe it.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Errors when the channel is empty and every `Sender` was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .expect("channel mutex poisoned");
            }
        }

        /// Pops a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally every `Sender`
        /// was dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or `deadline` passes.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on deadline expiry,
        /// [`RecvTimeoutError::Disconnected`] when the channel is empty and
        /// every `Sender` was dropped.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _result) = self
                    .shared
                    .ready
                    .wait_timeout(queue, remaining)
                    .expect("channel mutex poisoned");
                queue = guard;
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// As [`Receiver::recv_deadline`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Number of queued messages (racy, for diagnostics only).
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .len()
        }

        /// Whether the queue is currently empty (racy, for diagnostics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::{Duration, Instant};

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_recv_empty() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
    }

    #[test]
    fn recv_deadline_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        let err = rx
            .recv_deadline(Instant::now() + Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        assert!(start.elapsed() >= Duration::from_millis(25));
        tx.send(7).unwrap();
        assert_eq!(
            rx.recv_deadline(Instant::now() + Duration::from_millis(30))
                .unwrap(),
            7
        );
    }

    #[test]
    fn blocking_recv_wakes_on_cross_thread_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(99u64).unwrap();
        assert_eq!(handle.join().unwrap(), 99);
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 800);
    }
}
