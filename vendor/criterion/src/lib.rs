//! An offline, in-tree subset of the [`criterion`](https://docs.rs/criterion)
//! benchmarking API used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a compatible-but-minimal harness: it honours warm-up and measurement
//! windows, reports the mean/min time per iteration on stdout, and skips the
//! statistics, plots, and baselines of the real crate. Good enough to keep
//! `cargo bench` runnable and relative numbers meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark harness entry point.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = name.into();
        println!("group {group}");
        let (warm_up_time, measurement_time, sample_size) =
            (self.warm_up_time, self.measurement_time, self.sample_size);
        BenchmarkGroup {
            _criterion: self,
            name: group,
            warm_up_time,
            measurement_time,
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let report = run_bench(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b),
        );
        report.print(name, None);
        self
    }
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id with only a parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares how much data one iteration processes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let report = run_bench(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b, input),
        );
        report.print(&format!("{}/{}", self.name, id.name), self.throughput);
        self
    }

    /// Benchmarks `f` under a plain string id.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let report = run_bench(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b),
        );
        report.print(&format!("{}/{}", self.name, name), self.throughput);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs the timed inner loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, keeping its output alive to prevent the optimizer from
    /// deleting the work (the caller usually adds `std::hint::black_box`).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

struct BenchReport {
    mean: Duration,
    min: Duration,
    samples: usize,
}

impl BenchReport {
    fn print(&self, label: &str, throughput: Option<Throughput>) {
        let rate = throughput
            .map(|t| {
                let per_sec = |units: u64| units as f64 / self.mean.as_secs_f64();
                match t {
                    Throughput::Bytes(b) => format!("  {:.1} MiB/s", per_sec(b) / (1 << 20) as f64),
                    Throughput::Elements(e) => format!("  {:.0} elem/s", per_sec(e)),
                }
            })
            .unwrap_or_default();
        println!(
            "  {label}: mean {:?}, min {:?} ({} samples){rate}",
            self.mean, self.min, self.samples
        );
    }
}

fn run_bench(
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) -> BenchReport {
    // Warm-up: run single iterations until the window closes, estimating the
    // per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut iter_estimate = Duration::ZERO;
    let mut warm_runs = 0u32;
    while warm_start.elapsed() < warm_up || warm_runs == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        iter_estimate += b.elapsed;
        warm_runs += 1;
        if warm_runs >= 10_000 {
            break;
        }
    }
    iter_estimate /= warm_runs.max(1);

    // Choose iterations per sample so that all samples fit the window.
    let budget_per_sample = measurement / sample_size.max(1) as u32;
    let iters_per_sample = if iter_estimate.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / iter_estimate.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut mean_accum = Duration::ZERO;
    let mut min = Duration::MAX;
    let measure_start = Instant::now();
    let mut samples = 0usize;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / iters_per_sample.max(1) as u32;
        mean_accum += per_iter;
        min = min.min(per_iter);
        samples += 1;
        // Never overrun the window by more than 2x.
        if measure_start.elapsed() > measurement * 2 {
            break;
        }
    }
    BenchReport {
        mean: mean_accum / samples.max(1) as u32,
        min,
        samples,
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
            sample_size: 3,
        };
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            warm_up_time: Duration::from_millis(2),
            measurement_time: Duration::from_millis(10),
            sample_size: 2,
        };
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| b.iter(|| n * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).name, "f/32");
        assert_eq!(BenchmarkId::from_parameter(9).name, "9");
    }
}
