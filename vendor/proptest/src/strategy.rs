//! The [`Strategy`] trait and the combinators used by the workspace.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// Maximum retries before a [`Strategy::prop_filter`] gives up.
const MAX_FILTER_TRIES: usize = 10_000;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a reusable generator driven by a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retains only values satisfying `pred`; `whence` labels the filter in
    /// the panic raised if generation keeps failing.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {MAX_FILTER_TRIES} candidates in a row",
            self.whence
        );
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
