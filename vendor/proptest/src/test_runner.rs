//! Test-case configuration and the failure/rejection channel used by the
//! `prop_assert*` macros.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a [`crate::proptest!`] test executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case violated an assertion: the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold: skip, don't count.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Deterministic per-test RNG: the seed is an FNV-1a hash of the test name,
/// overridable via `PROPTEST_SEED` for ad-hoc exploration.
pub fn rng_for_test(name: &str) -> StdRng {
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().unwrap_or_else(|_| fnv1a(name)),
        Err(_) => fnv1a(name),
    };
    StdRng::seed_from_u64(seed)
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = rng_for_test("some_test");
        let mut b = rng_for_test("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for_test("other_test");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn error_constructors_roundtrip() {
        assert_eq!(
            TestCaseError::fail("x"),
            TestCaseError::Fail("x".to_string())
        );
        assert_eq!(
            TestCaseError::reject("y"),
            TestCaseError::Reject("y".to_string())
        );
    }
}
