//! An offline, in-tree subset of the [`proptest`](https://docs.rs/proptest)
//! API used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of proptest the tests rely on: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`bool`](crate::bool) strategies,
//! [`Just`](strategy::Just), the [`proptest!`] runner macro, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a deterministic
//! per-test seed (reproducible by construction), there is **no shrinking**,
//! and `prop_filter` retries locally instead of rejecting the whole case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number of elements a generated collection may have.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access to strategy collections (`prop::collection::vec`,
    /// `prop::bool::ANY`), mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs and runs the body for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            let mut done: u32 = 0;
            let mut rejects: u32 = 0;
            while done < config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => done += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(why),
                    ) => {
                        rejects += 1;
                        assert!(
                            rejects <= 64 * config.cases + 1024,
                            "proptest '{}': too many rejected cases ({}): {}",
                            stringify!($name),
                            rejects,
                            why,
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(why),
                    ) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            done,
                            why,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r,
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r,
                            ::std::format!($($fmt)+),
                        )),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} != {}` (both: `{:?}`)",
                            stringify!($left),
                            stringify!($right),
                            l,
                        ),
                    ));
                }
            }
        }
    };
}

/// Skips the current case (without counting it) when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!("assume failed: {}", stringify!($cond)),
            ));
        }
    };
}
