//! An offline, in-tree subset of the [`rand` 0.9](https://docs.rs/rand/0.9)
//! API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the handful of primitives it actually uses: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`random`, `random_range`, `random_bool`),
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator behind `StdRng`
//! is xoshiro256++ (seeded via SplitMix64), which is more than adequate for
//! deterministic simulation, tie-breaking, and synthetic data generation.
//!
//! Only the API subset exercised by the workspace is implemented; this is
//! **not** a general-purpose replacement for the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// same way for every implementor.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws a uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Uniform `u64` below `bound` by rejection sampling (unbiased).
fn uniform_u64_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    debug_assert!(bound > 0);
    // Largest multiple of `bound` that fits in u64; reject draws above it.
    let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
    loop {
        let x = rng.next_u64();
        if x < zone || zone == 0 {
            return x % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(span + 1, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let x = lo + u * (hi - lo);
                if x < hi { x } else { lo }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                lo + unit_f64(rng) as $t * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a [`SampleUniform`] value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Types with a canonical "standard" distribution (`Rng::random`).
pub trait Standard: Sized {
    /// Draws one sample from the standard distribution for this type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including trait objects).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (uniform `[0, 1)` for floats, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be within [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12), but
    /// the workspace only relies on determinism for a fixed seed, never on a
    /// specific stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next().to_le_bytes();
                for (b, s) in chunk.iter_mut().zip(x) {
                    *b = s;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point for xoshiro; remix defensively.
            if s == [0; 4] {
                let mut st = 0xDEAD_BEEF_CAFE_F00Du64;
                for slot in &mut s {
                    *slot = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Slice extensions for random sampling and shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn unit_float_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([9].choose(&mut rng) == Some(&9));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(2);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.random_range(0..10usize);
        assert!(x < 10);
        let _: f64 = dyn_rng.random();
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5..5usize);
    }
}
