#!/usr/bin/env bash
# Regenerates every experiment output in results/ (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for bin in fig11 fig12 fig13 bounds fairness ablation expectation enduring partial distribution; do
    echo "== $bin =="
    cargo run --release -p isgc-bench --bin "$bin" --quiet | tee "results/$bin.txt"
    echo
done
echo "All experiment outputs written to results/."
