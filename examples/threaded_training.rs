//! Threaded training: runs IS-GC on real OS threads with injected straggler
//! delays — one master, four workers, crossbeam channels — and shows that
//! waiting for the two fastest workers still trains the model.
//!
//! Run with: `cargo run --release --example threaded_training`

use std::sync::Arc;
use std::time::Duration;

use isgc::core::Placement;
use isgc::ml::dataset::Dataset;
use isgc::ml::model::LinearRegression;
use isgc::runtime::{train_threaded, ThreadedConfig};

fn main() -> Result<(), isgc::core::Error> {
    let placement = Placement::cyclic(4, 2)?;
    let dataset = Dataset::synthetic_regression(256, 4, 0.05, 11);
    let model = LinearRegression::new(4);

    // Workers 1 and 3 are enduring stragglers: every step they sleep 20 ms
    // before uploading, while workers 0 and 2 answer immediately. In CR(4,2)
    // workers 0 and 2 share no partition, so the master recovers everything
    // without ever hearing from the stragglers.
    let config = ThreadedConfig {
        wait_for: 2,
        collection: None,
        batch_size: 16,
        learning_rate: 0.05,
        loss_threshold: 0.01,
        max_steps: 500,
        seed: 5,
        degrade: isgc::runtime::DegradePolicy::Skip,
        delay: Arc::new(|worker, _step| {
            if worker % 2 == 1 {
                Duration::from_millis(20)
            } else {
                Duration::ZERO
            }
        }),
    };

    println!("training on 4 real worker threads, waiting for the 2 fastest…");
    let report = train_threaded(model, dataset, &placement, &config);
    println!(
        "steps: {}   wall time: {:.2}s   mean step: {:.1} ms",
        report.step_count(),
        report.wall_time,
        1000.0 * report.mean_step_duration()
    );
    println!(
        "mean recovered fraction: {:.1}%   final loss: {:.4}   converged: {}",
        100.0 * report.mean_recovered_fraction(),
        report.final_loss(),
        report.reached_threshold
    );
    println!("\nthe two fast workers cover 2 partitions each; whenever they are");
    println!("non-conflicting the master recovers all 4 partitions without ever");
    println!("hearing from the stragglers.");
    Ok(())
}
