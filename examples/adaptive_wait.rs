//! Adaptive waiting: the paper's §IV remark — "receive gradients from fewer
//! workers at the beginning to save time, and then from more workers
//! afterwards until convergence" — implemented as a closed-loop controller
//! that raises `w` whenever the training loss stalls.
//!
//! Run with: `cargo run --release --example adaptive_wait`

use isgc::core::Placement;
use isgc::ml::dataset::Dataset;
use isgc::ml::model::LinearRegression;
use isgc::simnet::adaptive::AdaptiveWaitController;
use isgc::simnet::cluster::{ClusterConfig, StragglerSelection};
use isgc::simnet::delay::Delay;
use isgc::simnet::policy::WaitPolicy;
use isgc::simnet::trainer::{
    train, train_adaptive, CodingScheme, GradientNormalization, TrainingConfig,
};

fn main() -> Result<(), isgc::core::Error> {
    let n = 4;
    let dataset = Dataset::synthetic_regression(256, 4, 0.2, 11);
    let model = LinearRegression::new(4);
    let cluster = ClusterConfig {
        n,
        compute_time_per_partition: 0.1,
        comm_time: 0.05,
        jitter: Delay::Uniform { lo: 0.0, hi: 0.01 },
        straggler_delay: Delay::Exponential { mean: 1.0 },
        stragglers: StragglerSelection::RandomEachStep(2),
    };
    // Mean-normalized updates so that more workers lower the gradient
    // noise; the best fixed w is not known in advance, and a wrong guess
    // (w = 4) pays the straggler tax on every step.
    let config = TrainingConfig {
        batch_size: 4,
        learning_rate: 0.5,
        loss_threshold: 0.025,
        max_steps: 4000,
        seed: 5,
        normalization: GradientNormalization::MeanOverRecovered,
        ..TrainingConfig::default()
    };
    let placement = Placement::cyclic(n, 2)?;

    println!("fixed vs adaptive wait policies (loss threshold 0.025):\n");
    for w in [1usize, 4] {
        let r = train(
            &model,
            &dataset,
            &CodingScheme::IsGc(placement.clone()),
            &WaitPolicy::WaitForCount(w),
            cluster.clone(),
            &config,
        );
        println!(
            "fixed w={w}:    steps={:<5} time={:>7.1}s  converged={}",
            r.step_count(),
            r.sim_time(),
            r.reached_threshold
        );
    }

    let mut controller = AdaptiveWaitController::new(1, 4, 10, 0.03);
    let r = train_adaptive(
        &model,
        &dataset,
        &CodingScheme::IsGc(placement),
        &mut controller,
        cluster,
        &config,
    );
    let hist = controller.w_history();
    let escalations: Vec<(usize, usize)> = hist
        .windows(2)
        .enumerate()
        .filter(|(_, p)| p[0] != p[1])
        .map(|(i, p)| (i + 1, p[1]))
        .collect();
    println!(
        "adaptive 1→4: steps={:<5} time={:>7.1}s  converged={}",
        r.step_count(),
        r.sim_time(),
        r.reached_threshold
    );
    println!("escalations (step, new w): {escalations:?}");
    println!("\nThe controller starts at the cheapest w and escalates only if the");
    println!("loss stalls — matching the best fixed policy without knowing it in");
    println!("advance, while a wrong fixed guess (w = 4) costs several times more.");
    Ok(())
}
