//! Straggler showdown: trains the same model under every scheme on a
//! straggler-ridden simulated cluster and compares outcomes — a miniature of
//! the paper's Fig. 12 experiment.
//!
//! Run with: `cargo run --release --example straggler_showdown`

use isgc::core::Placement;
use isgc::ml::dataset::Dataset;
use isgc::ml::model::SoftmaxRegression;
use isgc::simnet::cluster::{ClusterConfig, StragglerSelection};
use isgc::simnet::delay::Delay;
use isgc::simnet::policy::WaitPolicy;
use isgc::simnet::trainer::{train, CodingScheme, TrainingConfig};

fn main() -> Result<(), isgc::core::Error> {
    let n = 4;
    let c = 2;
    // Half the workers straggle badly each step (fresh set every time).
    let cluster = ClusterConfig {
        n,
        compute_time_per_partition: 0.05,
        comm_time: 0.1,
        jitter: Delay::Uniform { lo: 0.0, hi: 0.05 },
        straggler_delay: Delay::Exponential { mean: 2.0 },
        stragglers: StragglerSelection::RandomEachStep(2),
    };
    let dataset = Dataset::gaussian_classification(512, 8, 4, 3.0, 777);
    let model = SoftmaxRegression::new(8, 4);
    let config = TrainingConfig {
        batch_size: 32,
        learning_rate: 0.05,
        loss_threshold: 0.21,
        max_steps: 4000,
        ..TrainingConfig::default()
    };

    let runs: Vec<(CodingScheme, WaitPolicy)> = vec![
        (CodingScheme::Synchronous, WaitPolicy::All),
        (
            CodingScheme::ClassicCr { c },
            WaitPolicy::WaitForCount(n - c + 1),
        ),
        (
            CodingScheme::IgnoreStragglerSgd,
            WaitPolicy::WaitForCount(2),
        ),
        (
            CodingScheme::IsGc(Placement::cyclic(n, c)?),
            WaitPolicy::WaitForCount(2),
        ),
        (
            CodingScheme::IsGc(Placement::fractional(n, c)?),
            WaitPolicy::WaitForCount(2),
        ),
        // The paper's §IV remark: start with few workers, ramp up later.
        (
            CodingScheme::IsGc(Placement::cyclic(n, c)?),
            WaitPolicy::Ramp {
                start: 2,
                end: 3,
                ramp_steps: 60,
            },
        ),
    ];

    println!(
        "{:<14} {:>6} {:>9} {:>11} {:>12} {:>10}",
        "scheme", "steps", "time (s)", "time/step", "recovered %", "converged"
    );
    for (scheme, policy) in runs {
        let report = train(&model, &dataset, &scheme, &policy, cluster.clone(), &config);
        println!(
            "{:<14} {:>6} {:>9.1} {:>11.3} {:>12.1} {:>10}",
            scheme.label(),
            report.step_count(),
            report.sim_time(),
            report.mean_step_duration(),
            100.0 * report.mean_recovered_fraction(),
            report.reached_threshold
        );
    }
    println!("\nIS-GC at w = 2 ignores both stragglers yet recovers most gradients,");
    println!("finishing far sooner than synchronous SGD or classic GC.");
    Ok(())
}
