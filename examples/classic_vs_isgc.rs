//! Classic GC vs IS-GC at the decoding cliff: classic gradient coding
//! recovers the exact gradient from any n − c + 1 workers but *nothing* from
//! fewer; IS-GC degrades gracefully, recovering the best partial gradient
//! from any number of survivors.
//!
//! Run with: `cargo run --release --example classic_vs_isgc`

use isgc::core::classic::ClassicGc;
use isgc::core::decode::{CrDecoder, Decoder};
use isgc::core::{Placement, WorkerSet};
use isgc::linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), isgc::core::Error> {
    let (n, c) = (6usize, 3usize);
    let mut rng = StdRng::seed_from_u64(2);

    // Classic GC with Tandon-style cyclic coefficients.
    let gc = ClassicGc::cyclic(n, c, &mut rng)?;
    // IS-GC on the same cyclic placement.
    let placement = Placement::cyclic(n, c)?;
    let isgc = CrDecoder::new(&placement)?;

    // Synthetic per-partition gradients g_j = [j + 1]; full g = 21.
    let grads: Vec<Vector> = (0..n)
        .map(|j| Vector::from_slice(&[j as f64 + 1.0]))
        .collect();
    let gc_codewords: Vec<Vector> = (0..n).map(|w| gc.encode(w, &grads)).collect();

    println!(
        "n = {n}, c = {c}: classic GC needs ≥ {} workers\n",
        gc.min_workers()
    );
    println!("{:>2}  {:<22} {:<30}", "w", "classic GC", "IS-GC");
    for w in (1..=n).rev() {
        // Deterministic subset: the first w workers (a worst case for CR).
        let avail = WorkerSet::from_indices(n, 0..w);
        let classic = match gc.recover(&avail, |i| gc_codewords[i].clone(), 1) {
            Ok(g) => format!("recovers g = {:.0}", g[0]),
            Err(_) => "DECODE FAILS".to_string(),
        };
        let result = isgc.decode(&avail, &mut rng);
        let partial: f64 = result.partitions().iter().map(|&j| j as f64 + 1.0).sum();
        println!(
            "{w:>2}  {classic:<22} recovers {:>2}/{n} partitions (ĝ = {partial:.0})",
            result.recovered_count()
        );
    }
    println!("\nbelow the n − c + 1 cliff classic GC gets nothing, while IS-GC");
    println!("still returns the maximum recoverable partial gradient.");
    Ok(())
}
