//! Hybrid repetition tradeoff: sweeps HR(8, c1, 4−c1) from CR (c1 = 0) to
//! FR (c1 = 3) and reports the expected recovery at each wait level — a
//! miniature of the paper's Fig. 13(a), plus the conflict-graph edge counts
//! that drive it (Theorem 7's monotone chain).
//!
//! Run with: `cargo run --release --example hybrid_tradeoff`

use isgc::core::decode::{Decoder, HrDecoder};
use isgc::core::{ConflictGraph, HrParams, Placement, WorkerSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), isgc::core::Error> {
    let (n, c, g) = (8usize, 4usize, 2usize);
    println!("HR(n = {n}, c1, c2) with g = {g} groups, c = {c}:\n");
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>12}",
        "placement", "edges", "recov@w=2", "recov@w=4", "recov@w=6"
    );

    let mut rng = StdRng::seed_from_u64(9);
    let mut last_edges = 0usize;
    for c1 in 0..=3usize {
        let placement = Placement::hybrid(HrParams::new(n, g, c1, c - c1))?;
        let graph = ConflictGraph::from_placement(&placement);
        let decoder = HrDecoder::new(&placement)?;
        let mut cells = Vec::new();
        for w in [2usize, 4, 6] {
            let trials = 10_000;
            let mut total = 0usize;
            for _ in 0..trials {
                let avail = WorkerSet::random_subset(n, w, &mut rng);
                total += decoder.decode(&avail, &mut rng).recovered_count();
            }
            cells.push(100.0 * total as f64 / (trials * n) as f64);
        }
        let label = match c1 {
            0 => "HR(8,0,4) = CR",
            3 => "HR(8,3,1) = FR",
            _ => &format!("HR(8,{c1},{})", c - c1),
        };
        println!(
            "{label:<16} {:>6} {:>11.1}% {:>11.1}% {:>11.1}%",
            graph.edge_count(),
            cells[0],
            cells[1],
            cells[2]
        );
        // Theorem 7: growing c1 only removes conflict edges.
        assert!(c1 == 0 || graph.edge_count() <= last_edges);
        last_edges = graph.edge_count();
    }

    println!("\nfewer conflict edges (higher c1) → larger independent sets → more");
    println!("gradients recovered, at the price of FR's rigid parameter choices.");
    Ok(())
}
