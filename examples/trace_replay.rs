//! Trace replay: record a straggler trace (here synthesized from a Markov
//! model, in practice measured from a real cluster), serialize it to CSV,
//! reload it, and train against the *identical* conditions with different
//! schemes — apples-to-apples comparison on recorded stragglers.
//!
//! Run with: `cargo run --release --example trace_replay`

use isgc::core::Placement;
use isgc::ml::dataset::Dataset;
use isgc::ml::model::SoftmaxRegression;
use isgc::simnet::delay::Delay;
use isgc::simnet::policy::WaitPolicy;
use isgc::simnet::trace::{MarkovStragglerModel, StragglerTrace, TraceClusterSim};
use isgc::simnet::trainer::{train_on_trace, CodingScheme, TrainingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Record" a trace: 6 workers, correlated fast/slow episodes.
    let model = MarkovStragglerModel {
        n: 6,
        fast: Delay::Uniform { lo: 0.0, hi: 0.05 },
        slow: Delay::ShiftedExponential {
            shift: 0.8,
            mean: 0.5,
        },
        p_fast_to_slow: 0.05,
        p_slow_to_fast: 0.15,
    };
    let recorded = model.generate(3000, 42);
    println!(
        "recorded trace: {} steps × {} workers, {:.1}% worker-steps straggling",
        recorded.len(),
        recorded.n(),
        100.0 * recorded.straggle_rate(0.5)
    );

    // 2. Round-trip through CSV (what you would do with a real measurement).
    let csv = recorded.to_csv_string();
    let trace = StragglerTrace::from_csv_str(&csv)?;
    assert_eq!(trace, recorded);
    println!("CSV round-trip: {} bytes\n", csv.len());

    // 3. Replay the same trace against each scheme.
    let dataset = Dataset::gaussian_classification(384, 8, 4, 3.0, 777);
    let sgd_model = SoftmaxRegression::new(8, 4);
    let config = TrainingConfig {
        loss_threshold: 0.21,
        max_steps: 3000,
        ..TrainingConfig::default()
    };
    println!(
        "{:<16} {:>6} {:>11} {:>13}",
        "scheme", "steps", "recovered %", "sim time (s)"
    );
    for (scheme, w) in [
        (CodingScheme::Synchronous, 6),
        (CodingScheme::IgnoreStragglerSgd, 3),
        (CodingScheme::IsGc(Placement::cyclic(6, 2)?), 3),
        (CodingScheme::IsGc(Placement::fractional(6, 2)?), 3),
    ] {
        let sim = TraceClusterSim::new(trace.clone(), 0.05, 0.1);
        let report = train_on_trace(
            &sgd_model,
            &dataset,
            &scheme,
            &WaitPolicy::WaitForCount(w),
            sim,
            &config,
        );
        println!(
            "{:<16} {:>6} {:>11.1} {:>13.1}",
            scheme.label(),
            report.step_count(),
            100.0 * report.mean_recovered_fraction(),
            report.sim_time()
        );
    }
    println!("\nevery scheme saw the *same* recorded straggler episodes — the");
    println!("comparison isolates the coding scheme from the cluster randomness.");
    Ok(())
}
