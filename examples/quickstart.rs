//! Quickstart: the IS-GC pipeline on one simulated step, end to end.
//!
//! Reproduces the paper's Fig. 1(d) walkthrough: 4 workers, cyclic placement
//! with c = 2, two workers straggle, and the master still recovers the
//! *full* gradient from the two survivors — where IS-SGD would only get
//! half and classic GC would get nothing.
//!
//! Run with: `cargo run --example quickstart`

use isgc::core::decode::{CrDecoder, Decoder};
use isgc::core::encode::SumEncoder;
use isgc::core::{ConflictGraph, Placement, WorkerSet};
use isgc::linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), isgc::core::Error> {
    // 1. Place 4 dataset partitions on 4 workers, 2 partitions each (CR).
    let placement = Placement::cyclic(4, 2)?;
    for w in 0..4 {
        println!(
            "worker {w} stores partitions {:?}",
            placement.partitions_of(w)
        );
    }

    // 2. The conflict graph says whose codewords can be summed.
    let graph = ConflictGraph::from_placement(&placement);
    println!("\nconflict edges: {:?}", graph.edges());

    // 3. Each worker uploads the SUM of its partitions' gradients.
    //    (Gradient of partition j here is just [j + 1] for demonstration.)
    let gradient_of = |j: usize| Vector::from_slice(&[j as f64 + 1.0]);
    let encoder = SumEncoder::new(&placement);
    let codewords: Vec<Vector> = (0..4)
        .map(|w| {
            let grads: Vec<Vector> = placement
                .partitions_of(w)
                .iter()
                .map(|&j| gradient_of(j))
                .collect();
            encoder.encode(w, &grads)
        })
        .collect();

    // 4. Workers 1 and 3 straggle; the master stops waiting.
    let available = WorkerSet::from_indices(4, [0, 2]);
    println!("\navailable workers: {available:?}");

    // 5. Decode: pick a maximum independent set of the induced conflict
    //    graph — here workers {0, 2}, which cover all 4 partitions.
    let decoder = CrDecoder::new(&placement)?;
    let mut rng = StdRng::seed_from_u64(1);
    let result = decoder.decode(&available, &mut rng);
    println!(
        "selected workers {:?} → recovered partitions {:?}",
        result.selected(),
        result.partitions()
    );

    // 6. Assemble ĝ by summing the selected codewords.
    let g_hat = encoder.assemble(&result, 1, |w| codewords[w].clone());
    println!("ĝ = {:?}  (full gradient would be 1+2+3+4 = 10)", g_hat[0]);
    assert_eq!(g_hat[0], 10.0);
    println!("\nfull gradient recovered from just 2 of 4 workers ✓");
    Ok(())
}
