//! Distributed training over real TCP sockets: a master and eight worker
//! clients on loopback, two of them persistent stragglers. The master waits
//! for the six fastest codewords each step (the paper's `ray.wait(w)`), so
//! the stragglers are simply ignored — yet FR(8, 2)'s replication usually
//! recovers *all* partitions from whoever arrived (Theorems 10–11).
//!
//! Here the workers run on threads for a self-contained example; they speak
//! the same wire protocol as separate processes, so the same code works
//! across machines (see `isgc serve` / `isgc worker`).
//!
//! Run with: `cargo run --release --example distributed_training`

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use isgc::core::Placement;
use isgc::ml::dataset::Dataset;
use isgc::ml::model::LinearRegression;
use isgc::net::{run_worker, Master, NetConfig, WaitPolicy, WorkerOptions};

const N: usize = 8;
const FEATURES: usize = 6;
const DATA_SEED: u64 = 33;

/// Every peer rebuilds the same dataset from the shared seed; only model
/// parameters and codewords cross the wire.
fn shared_data() -> (LinearRegression, Dataset) {
    (
        LinearRegression::new(FEATURES),
        Dataset::synthetic_regression(512, FEATURES, 0.05, DATA_SEED),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let placement = Placement::fractional(N, 2)?;
    let mut config = NetConfig::new(placement, WaitPolicy::FirstW(6));
    config.batch_size = 16;
    config.learning_rate = 0.02;
    config.max_steps = 15;
    config.seed = DATA_SEED;

    let master = Master::bind("127.0.0.1:0")?;
    let addr = master.local_addr()?;
    println!("master on {addr}: waiting for the 6 fastest of {N} workers each step");

    let workers: Vec<_> = (0..N)
        .map(|_| {
            // Workers 6 and 7 straggle 40 ms every step; the rest answer
            // instantly. Ids are assigned by the master at registration.
            let options = WorkerOptions::with_delay(Arc::new(|worker, _step| {
                if worker >= 6 {
                    Duration::from_millis(40)
                } else {
                    Duration::ZERO
                }
            }));
            thread::spawn(move || run_worker(addr, &options, |_assignment| shared_data()))
        })
        .collect();

    let (model, dataset) = shared_data();
    let report = master.run_with(&model, &dataset, &config, |step| {
        println!(
            "step {:>2}: {} arrived, recovered {}/{N} partitions, loss {:.4}",
            step.step,
            step.arrivals.len(),
            step.recovered,
            step.loss
        );
    })?;

    for worker in workers {
        let summary = worker.join().expect("worker thread panicked")?;
        println!(
            "worker {} served {} steps ({:?})",
            summary.worker, summary.steps_served, summary.cause
        );
    }

    println!(
        "\n{} steps over real sockets: mean recovery {:.1}%, final loss {:.4}",
        report.step_count(),
        100.0 * report.mean_recovered_fraction(),
        report.final_loss()
    );
    println!("the two stragglers were ignored every step, and training still converged.");
    Ok(())
}
