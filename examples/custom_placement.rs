//! Custom placements: bring your own partition assignment and decode it
//! with the exact oracle — plus the placement recommender that picks
//! FR/HR/CR automatically for a storage budget.
//!
//! Run with: `cargo run --release --example custom_placement`

use isgc::core::decode::{Decoder, ExactDecoder};
use isgc::core::design::recommend;
use isgc::core::{ConflictGraph, Placement, WorkerSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A hand-rolled placement outside the paper's three families: pair
    //    each worker with the partition "two over" as well as its own —
    //    a (non-cyclic) perfect 2-regular design on 6 workers.
    let placement = Placement::custom(vec![
        vec![0, 2],
        vec![1, 3],
        vec![2, 4],
        vec![3, 5],
        vec![4, 0],
        vec![5, 1],
    ])?;
    println!(
        "custom placement accepted: n = {}, c = {}",
        placement.n(),
        placement.c()
    );
    let graph = ConflictGraph::from_placement(&placement);
    println!("conflict edges: {:?}", graph.edges());

    // 2. The exact decoder works for any placement.
    let decoder = ExactDecoder::new(&placement);
    let mut rng = StdRng::seed_from_u64(1);
    let available = WorkerSet::from_indices(6, [0, 1, 3, 4]);
    let result = decoder.decode(&available, &mut rng);
    println!(
        "from workers {:?}: selected {:?}, recovered {}/{} partitions",
        available.to_vec(),
        result.selected(),
        result.recovered_count(),
        placement.n()
    );

    // 3. Or let the library pick a placement for your budget.
    for (n, c) in [(12usize, 4usize), (10, 4), (7, 3)] {
        let rec = recommend(n, c)?;
        println!(
            "recommend(n={n}, c={c}) → {} ({:?})",
            rec.placement.scheme(),
            rec.rationale
        );
    }
    Ok(())
}
