//! The `isgc` command-line entry point; all logic lives in [`isgc::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match isgc::cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
