//! The `isgc` command-line tool: inspect placements, decode availability
//! patterns, check recovery bounds, and run quick straggler simulations
//! without writing any code.
//!
//! Command logic lives here as pure functions returning the rendered output,
//! so everything is unit-testable; `main` only does I/O.

use isgc_chaos::{
    failure_fingerprint, run_chaos, run_tree_chaos, ChaosConfig, FaultPlan, Trace, TreeChaosConfig,
    PLAN_NAMES,
};
use isgc_core::decode::{decoder_for, ExactDecoder, OracleTimeout};
use isgc_core::{bounds, ConflictGraph, HrParams, Placement, Scheme, WorkerSet};
use isgc_engine::{shard_ranges, DegradePolicy, StepOutcome};
use isgc_mc::{counterexample_trace, explore, explore_plan, minimize, McConfig};
use isgc_ml::dataset::Dataset;
use isgc_ml::model::SoftmaxRegression;
use isgc_net::{
    Master, MasterSession, NetConfig, Submaster, SubmasterOptions, SwarmOptions,
    WaitPolicy as NetWaitPolicy, WorkerOptions,
};
use isgc_obs::{Registry, Snapshot};
use isgc_sched::{DriverError, JobDriver, Scheduler, SchedulerConfig, SessionStatus};
use isgc_simnet::cluster::{ClusterConfig, StragglerSelection};
use isgc_simnet::delay::Delay;
use isgc_simnet::policy::WaitPolicy;
use isgc_simnet::trainer::{train, train_metered, CodingScheme, TrainingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "\
isgc — ignore-straggler gradient coding (ICDCS 2023 reproduction)

USAGE:
  isgc placement <fr|cr> <n> <c>           show a placement and its conflict graph
  isgc placement hr <n> <g> <c1> <c2>      show a hybrid placement
  isgc decode <fr|cr> <n> <c> <workers>    decode an availability pattern
                                           (workers: comma-separated, e.g. 0,2,5)
  isgc decode hr <n> <g> <c1> <c2> <workers>
  isgc bounds <n> <c>                      Theorem 10/11 recovery bounds for all w
  isgc recommend <n> <c>                   pick the best placement for a budget
  isgc plan <fr|cr> <n> <c>                profile every w and pick the fastest
  isgc trace <n> <steps> [slow-rate]       emit a Markov straggler trace as CSV
  isgc sim <fr|cr> <n> <c> <w> [steps]     quick straggler training simulation
       flags: --metrics-out <path>         collect metrics; append the logical
                                           series to the summary and write a
                                           full dump (.jsonl → JSON lines)
  isgc serve <fr|cr> <n> <c> [flags]       start a TCP master and train over real sockets
  isgc serve hr <n> <g> <c1> <c2> [flags]
       flags: --w <k> | --deadline-ms <d>  wait policy (default --w n)
              --steps <k>                  max training steps (default 20)
              --port <p>                   listen port (default 7070, 0 = ephemeral)
              --batch <b> --lr <r> --seed <s>
              --degrade fail|skip|approx   zero-recovery step posture (default fail)
              --max-consecutive <k>        approx only: degraded-streak cap (default 4)
              --min-coverage <f>           approx only: coverage floor in [0,1] (default 0.5)
              --heartbeat-timeout-ms <d>   declare a silent worker dead after d ms (default 2000)
              --metrics-out <path>         as for sim (adds net byte/frame counters)
  isgc serve-jobs <fr|cr> <n> <c> [flags]  host J concurrent training jobs in one
                                           process (fair round-robin, one TCP
                                           master per job on port, port+1, ...)
       flags: --jobs <J>                   concurrent jobs (default 2)
              --port <p>                   base port (default 7070; job j listens
                                           on p + j)
              --w, --deadline-ms, --steps, --batch, --lr, --seed, --degrade,
              --max-consecutive, --min-coverage, --heartbeat-timeout-ms,
              --metrics-out as for serve (per-job scoped metric series)
  isgc worker <host:port> [--delay-ms <d>] join a cluster as a worker
       [--job <id>]                        (--delay-ms injects a straggler delay;
       [--heartbeat-interval-ms <d>]       --job joins one tenant of serve-jobs;
                                           heartbeats every d ms, default 200)
  isgc swarm <host:port> --workers <n>     join a cluster as n workers multiplexed
       [--slow <k>] [--delay-ms <d>]       on one thread (the reactor-backed scale
       [--job <id>]                        client; workers with index < k straggle
       [--heartbeat-interval-ms <d>]       by d ms)
  isgc launch <fr|cr> <n> <c> [flags]      spawn master + n worker processes on
                                           loopback and train to completion
       flags: --w, --deadline-ms, --steps, --batch, --lr, --seed, --degrade,
              --max-consecutive, --min-coverage, --heartbeat-timeout-ms,
              --metrics-out as for serve
              --heartbeat-interval-ms <d>  forwarded to every spawned worker
              --slow <k> --delay-ms <d>    make k workers straggle by d ms (default 0/100)
              --jobs <J>                   run J co-tenant jobs (round-robin, J*n workers)
              --tree <S>                   aggregate through S sub-masters (2-level
                                           tree; FR only, S a power of two)
              --swarm <P>                  supply the n workers from P swarm
                                           processes instead of n single-worker
                                           processes (flat single-job only; 0 = off)
  isgc chaos --plan <name> [flags]         run a loopback cluster under a seeded
                                           fault plan; assert Theorem 10/11 bounds,
                                           checkpoint resume, and exact replay
       flags: --seed <s>                   fault + training seed (default 42)
              --n <k> --c <k> --steps <k>  cluster shape (default 6 2 8; c | n)
              --degrade fail|skip|approx   as for serve (default: the plan's
                                           recommended policy), with
                                           --max-consecutive / --min-coverage
              --metrics-out <path>         as for sim (adds chaos fault counters)
       plans: smoke, worker-flap, worker-crash, master-restart, frame-corrupt,
              delay, duplicate-stale, random, blackout, slow-bleed,
              submaster-crash
       submaster-crash flags: --submasters <S> --crash-shard <i> --crash-step <t>
              (2-level tree; kills sub-master i at step t, default 2 1 2)
       --plan may also name a counterexample trace file written by `isgc mc`
              (path ending in .json): the scripted schedule replays on a real
              cluster and the failure fingerprint must match the trace's
  isgc mc [flags]                          exhaustively model-check the collector
                                           protocol: enumerate every delivery
                                           order and fault schedule for a small
                                           cluster, asserting the chaos invariants
                                           at every reachable state
       flags: --shape flat3|flat4|tree2x2  cluster under test (default flat3)
              --steps <k> --seed <s>       run length and data seed (default 2 7)
              --max-faults <k>             faults budget per schedule (default 2)
              --depth <k>                  branching decisions per run (default 64)
              --max-runs <k>               search cutoff (default 200000)
              --trace-out <path>           where to write the minimized
                                           counterexample (default mc_trace.json)

Two-terminal quickstart (an 8-worker FR(8,2) cluster, ignore the 2 slowest):
  terminal 1:  isgc serve fr 8 2 --w 6 --steps 20
  terminal 2:  for i in $(seq 8); do isgc worker 127.0.0.1:7070 & done; wait
Or in one shot:  isgc launch fr 8 2 --w 6 --steps 20 --slow 2
";

/// Dispatches a full argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable error message for unknown commands or invalid
/// arguments.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("placement") => cmd_placement(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("recommend") => cmd_recommend(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("serve-jobs") => cmd_serve_jobs(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("swarm") => cmd_swarm(&args[1..]),
        Some("launch") => cmd_launch(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("mc") => cmd_mc(&args[1..]),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: '{s}'"))
}

fn build_placement(args: &[String]) -> Result<(Placement, usize), String> {
    match args.first().map(String::as_str) {
        Some("fr") | Some("cr") => {
            if args.len() < 3 {
                return Err("expected: <fr|cr> <n> <c>".to_string());
            }
            let n: usize = parse(&args[1], "n")?;
            let c: usize = parse(&args[2], "c")?;
            let p = if args[0] == "fr" {
                Placement::fractional(n, c)
            } else {
                Placement::cyclic(n, c)
            }
            .map_err(|e| e.to_string())?;
            Ok((p, 3))
        }
        Some("hr") => {
            if args.len() < 5 {
                return Err("expected: hr <n> <g> <c1> <c2>".to_string());
            }
            let n: usize = parse(&args[1], "n")?;
            let g: usize = parse(&args[2], "g")?;
            let c1: usize = parse(&args[3], "c1")?;
            let c2: usize = parse(&args[4], "c2")?;
            let p = Placement::hybrid(HrParams::new(n, g, c1, c2)).map_err(|e| e.to_string())?;
            Ok((p, 5))
        }
        _ => Err("expected placement kind: fr, cr, or hr".to_string()),
    }
}

fn cmd_placement(args: &[String]) -> Result<String, String> {
    let (p, _) = build_placement(args)?;
    let graph = ConflictGraph::from_placement(&p);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} placement, n = {}, c = {}",
        p.scheme(),
        p.n(),
        p.c()
    );
    for w in 0..p.n() {
        let _ = writeln!(out, "  worker {w:>3}: partitions {:?}", p.partitions_of(w));
    }
    let _ = writeln!(
        out,
        "conflict graph: {} edges{}",
        graph.edge_count(),
        if p.scheme() == Scheme::Cyclic {
            format!(" (circulant C_n^{{1..{}}})", p.c().saturating_sub(1))
        } else {
            String::new()
        }
    );
    let _ = writeln!(out, "  {:?}", graph.edges());
    Ok(out)
}

fn parse_workers(s: &str, n: usize) -> Result<WorkerSet, String> {
    let mut set = WorkerSet::empty(n);
    for tok in s.split(',').filter(|t| !t.is_empty()) {
        let id: usize = parse(tok, "worker id")?;
        if id >= n {
            return Err(format!("worker {id} outside 0..{n}"));
        }
        set.insert(id);
    }
    Ok(set)
}

fn cmd_decode(args: &[String]) -> Result<String, String> {
    let (p, consumed) = build_placement(args)?;
    let avail_arg = args
        .get(consumed)
        .ok_or_else(|| "missing availability list, e.g. 0,2,5".to_string())?;
    let available = parse_workers(avail_arg, p.n())?;
    let decoder = decoder_for(&p).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(0);
    let result = decoder.decode(&available, &mut rng);
    let mut out = String::new();
    let _ = writeln!(out, "available workers: {:?}", available.to_vec());
    let _ = writeln!(out, "selected (I):      {:?}", result.selected());
    let _ = writeln!(
        out,
        "recovered:         {}/{} partitions {:?}",
        result.recovered_count(),
        p.n(),
        result.partitions()
    );
    let w = available.len();
    let (alpha_lo, alpha_hi) = bounds::alpha_bounds_of(&p, w);
    let _ = writeln!(out, "Theorem 10/11:     {alpha_lo} ≤ |I| ≤ {alpha_hi}");
    Ok(out)
}

fn cmd_bounds(args: &[String]) -> Result<String, String> {
    if args.len() < 2 {
        return Err("expected: bounds <n> <c>".to_string());
    }
    let n: usize = parse(&args[0], "n")?;
    let c: usize = parse(&args[1], "c")?;
    if n == 0 || c == 0 || c > n {
        return Err(format!("need 1 ≤ c ≤ n, got n={n}, c={c}"));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recovery bounds for n = {n}, c = {c} (selectable workers)"
    );
    let _ = writeln!(out, "{:>4}  {:>8}  {:>8}", "w", "Thm10 lo", "Thm11 hi");
    for w in 0..=n {
        let _ = writeln!(
            out,
            "{w:>4}  {:>8}  {:>8}",
            bounds::alpha_lower_bound(n, c, w),
            bounds::alpha_upper_bound(n, c, w)
        );
    }
    Ok(out)
}

fn cmd_recommend(args: &[String]) -> Result<String, String> {
    if args.len() < 2 {
        return Err("expected: recommend <n> <c>".to_string());
    }
    let n: usize = parse(&args[0], "n")?;
    let c: usize = parse(&args[1], "c")?;
    let rec = isgc_core::design::recommend(n, c).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recommended placement for n = {n}, c = {c}: {}",
        rec.placement.scheme()
    );
    let _ = match rec.rationale {
        isgc_core::design::Rationale::FrDivides => {
            writeln!(
                out,
                "rationale: c | n, so FR maximizes recovery (Theorem 4)"
            )
        }
        isgc_core::design::Rationale::HrFeasible { g, c1, c2 } => writeln!(
            out,
            "rationale: c ∤ n but HR(n, {c1}, {c2}) with g = {g} groups fits \
             Theorem 6's range and beats CR"
        ),
        isgc_core::design::Rationale::CrFallback => {
            writeln!(out, "rationale: no FR/HR structure fits; CR always works")
        }
    };
    let graph = ConflictGraph::from_placement(&rec.placement);
    let cr_edges =
        ConflictGraph::from_placement(&Placement::cyclic(n, c).map_err(|e| e.to_string())?)
            .edge_count();
    let _ = writeln!(
        out,
        "conflict edges: {} (CR at the same budget would have {cr_edges})",
        graph.edge_count()
    );
    Ok(out)
}

fn cmd_plan(args: &[String]) -> Result<String, String> {
    let (p, _) = build_placement(args)?;
    let n = p.n();
    let decoder = decoder_for(&p).map_err(|e| e.to_string())?;
    let cluster = ClusterConfig {
        n,
        compute_time_per_partition: 0.05,
        comm_time: 0.1,
        jitter: Delay::Exponential { mean: 0.4 },
        straggler_delay: Delay::none(),
        stragglers: StragglerSelection::None,
    };
    let plans = isgc_simnet::planner::plan_wait_counts(&p, decoder.as_ref(), cluster, 2000, 7);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "wait-count profile for {} (exponential upload jitter, mean 0.4 s):",
        p.scheme()
    );
    let _ = writeln!(
        out,
        "{:>4}  {:>12}  {:>14}  {:>15}",
        "w", "E[step] (s)", "E[recovered]", "relative total"
    );
    for plan in &plans {
        let _ = writeln!(
            out,
            "{:>4}  {:>12.3}  {:>14.2}  {:>15.3}",
            plan.w, plan.step_time, plan.recovered, plan.relative_total_time
        );
    }
    let _ = writeln!(
        out,
        "best w = {} (minimum relative time-to-threshold)",
        isgc_simnet::planner::best_wait_count(&plans)
    );
    Ok(out)
}

fn cmd_trace(args: &[String]) -> Result<String, String> {
    if args.len() < 2 {
        return Err("expected: trace <n> <steps> [slow-rate]".to_string());
    }
    let n: usize = parse(&args[0], "n")?;
    let steps: usize = parse(&args[1], "steps")?;
    let slow_rate: f64 = match args.get(2) {
        Some(s) => parse(s, "slow-rate")?,
        None => 0.2,
    };
    if n == 0 || steps == 0 {
        return Err("n and steps must be positive".to_string());
    }
    if !(0.0..1.0).contains(&slow_rate) {
        return Err("slow-rate must be in [0, 1)".to_string());
    }
    // Pick transition rates with the requested stationary slow fraction and
    // mean episode length ~10 steps.
    let p_sf = 0.1;
    let p_fs = if slow_rate == 0.0 {
        0.0
    } else {
        p_sf * slow_rate / (1.0 - slow_rate)
    };
    let model = isgc_simnet::trace::MarkovStragglerModel {
        n,
        fast: Delay::Uniform { lo: 0.0, hi: 0.02 },
        slow: Delay::ShiftedExponential {
            shift: 1.0,
            mean: 0.5,
        },
        p_fast_to_slow: p_fs,
        p_slow_to_fast: p_sf,
    };
    Ok(model.generate(steps, 42).to_csv_string())
}

/// Writes a full metrics dump to `path`: JSON lines when the path ends in
/// `.jsonl`, the sorted text snapshot otherwise.
fn write_metrics_dump(path: &str, registry: &Registry) -> Result<(), String> {
    let dump = if path.ends_with(".jsonl") {
        registry.to_jsonl(Snapshot::Full)
    } else {
        registry.to_text(Snapshot::Full)
    };
    std::fs::write(path, dump).map_err(|e| format!("writing metrics to {path}: {e}"))
}

/// Renders the logical (seed-deterministic) series as the summary's
/// "metrics" section.
fn metrics_section(registry: &Registry) -> String {
    let mut out = String::from("metrics (logical series):\n");
    for line in registry.to_text(Snapshot::Logical).lines() {
        let _ = writeln!(out, "  {line}");
    }
    out
}

/// Appends the metrics dump + summary section when `--metrics-out` was given.
fn finish_metrics(out: &mut String, metrics: Option<&(String, Registry)>) -> Result<(), String> {
    if let Some((path, registry)) = metrics {
        write_metrics_dump(path, registry)?;
        let _ = writeln!(out, "metrics dump:       {path}");
        out.push_str(&metrics_section(registry));
    }
    Ok(())
}

/// Pulls `--metrics-out` from parsed flags as a `(path, fresh registry)`
/// pair for [`finish_metrics`].
fn metrics_from(flags: &HashMap<String, String>) -> Option<(String, Registry)> {
    flags
        .get("metrics-out")
        .map(|path| (path.clone(), Registry::new()))
}

fn cmd_sim(args: &[String]) -> Result<String, String> {
    let (p, consumed) = build_placement(args)?;
    let w: usize = parse(
        args.get(consumed)
            .ok_or("missing w (workers to wait for)")?,
        "w",
    )?;
    if !(1..=p.n()).contains(&w) {
        return Err(format!("w must be within 1..={}", p.n()));
    }
    let mut rest = consumed + 1;
    let max_steps: usize = match args.get(rest) {
        Some(s) if !s.starts_with("--") => {
            rest += 1;
            parse(s, "steps")?
        }
        _ => 200,
    };
    let flags = parse_flags(&args[rest..], &["metrics-out"])?;
    let metrics = metrics_from(&flags);
    let n = p.n();
    let dataset = Dataset::gaussian_classification(64 * n.max(4), 8, 4, 3.0, 777);
    let model = SoftmaxRegression::new(8, 4);
    let cluster = ClusterConfig {
        n,
        compute_time_per_partition: 0.05,
        comm_time: 0.1,
        jitter: Delay::Exponential { mean: 0.4 },
        straggler_delay: Delay::none(),
        stragglers: StragglerSelection::None,
    };
    let config = TrainingConfig {
        loss_threshold: 0.21,
        max_steps,
        ..TrainingConfig::default()
    };
    let scheme = CodingScheme::IsGc(p.clone());
    let policy = WaitPolicy::WaitForCount(w);
    let report = match &metrics {
        Some((_, registry)) => train_metered(
            &model, &dataset, &scheme, &policy, cluster, &config, registry,
        ),
        None => train(&model, &dataset, &scheme, &policy, cluster, &config),
    };
    let mut out = String::new();
    let _ = writeln!(out, "IS-GC {} n={} c={} w={w}", p.scheme(), n, p.c());
    let _ = writeln!(out, "steps:              {}", report.step_count());
    let _ = writeln!(out, "converged:          {}", report.reached_threshold);
    let _ = writeln!(out, "final loss:         {:.4}", report.final_loss());
    let _ = writeln!(
        out,
        "recovered (mean):   {:.1}%",
        100.0 * report.mean_recovered_fraction()
    );
    let _ = writeln!(out, "sim time:           {:.2} s", report.sim_time());
    let _ = writeln!(
        out,
        "time/step (mean):   {:.3} s",
        report.mean_step_duration()
    );
    finish_metrics(&mut out, metrics.as_ref())?;
    Ok(out)
}

/// Parses `--flag value` pairs, rejecting unknown or duplicated flags.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(token) = it.next() {
        let Some(name) = token.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{token}'"));
        };
        if !allowed.contains(&name) {
            return Err(format!("unknown flag --{name}"));
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        if map.insert(name.to_string(), value.clone()).is_some() {
            return Err(format!("--{name} given twice"));
        }
    }
    Ok(map)
}

/// Builds the wait policy from `--w` / `--deadline-ms` (default: wait for
/// everyone).
fn wait_policy_from(flags: &HashMap<String, String>, n: usize) -> Result<NetWaitPolicy, String> {
    match (flags.get("w"), flags.get("deadline-ms")) {
        (Some(_), Some(_)) => Err("give either --w or --deadline-ms, not both".to_string()),
        (Some(w), None) => {
            let w: usize = parse(w, "w")?;
            if !(1..=n).contains(&w) {
                return Err(format!("w must be within 1..={n}"));
            }
            Ok(NetWaitPolicy::FirstW(w))
        }
        (None, Some(ms)) => {
            let ms: u64 = parse(ms, "deadline-ms")?;
            if ms == 0 {
                return Err("--deadline-ms must be positive".to_string());
            }
            Ok(NetWaitPolicy::Deadline(Duration::from_millis(ms)))
        }
        (None, None) => Ok(NetWaitPolicy::FirstW(n)),
    }
}

/// Builds the degradation policy from `--degrade` / `--max-consecutive` /
/// `--min-coverage`. `None` means no `--degrade` flag was given, so the
/// command keeps its own default.
fn degrade_from(flags: &HashMap<String, String>) -> Result<Option<DegradePolicy>, String> {
    let max = flags.get("max-consecutive");
    let cov = flags.get("min-coverage");
    let name = flags.get("degrade").map(String::as_str);
    if name != Some("approx") && (max.is_some() || cov.is_some()) {
        return Err("--max-consecutive/--min-coverage require --degrade approx".to_string());
    }
    match name {
        None => Ok(None),
        Some("fail") => Ok(Some(DegradePolicy::Fail)),
        Some("skip") => Ok(Some(DegradePolicy::Skip)),
        Some("approx") => {
            let DegradePolicy::Approximate {
                max_consecutive: default_max,
                min_coverage: default_cov,
            } = DegradePolicy::approximate_default()
            else {
                unreachable!("approximate_default returns Approximate");
            };
            let max_consecutive: u64 = match max {
                Some(s) => parse(s, "max-consecutive")?,
                None => default_max,
            };
            if max_consecutive == 0 {
                return Err("--max-consecutive must be at least 1".to_string());
            }
            let min_coverage: f64 = match cov {
                Some(s) => parse(s, "min-coverage")?,
                None => default_cov,
            };
            if !(0.0..=1.0).contains(&min_coverage) {
                return Err(format!(
                    "--min-coverage must lie in [0, 1], got {min_coverage}"
                ));
            }
            Ok(Some(DegradePolicy::Approximate {
                max_consecutive,
                min_coverage,
            }))
        }
        Some(other) => Err(format!(
            "unknown degrade policy '{other}'; use fail, skip, or approx"
        )),
    }
}

/// Renders a policy for summaries: `fail`, `skip`, or `approx` with its knobs.
fn render_policy(policy: &DegradePolicy) -> String {
    match policy {
        DegradePolicy::Approximate {
            max_consecutive,
            min_coverage,
        } => format!("approx (max-consecutive {max_consecutive}, min-coverage {min_coverage})"),
        other => other.label().to_string(),
    }
}

/// Builds a [`NetConfig`] from parsed flags.
fn net_config_from(p: &Placement, flags: &HashMap<String, String>) -> Result<NetConfig, String> {
    let mut config = NetConfig::new(p.clone(), wait_policy_from(flags, p.n())?);
    config.max_steps = match flags.get("steps") {
        Some(s) => parse(s, "steps")?,
        None => 20,
    };
    if let Some(b) = flags.get("batch") {
        config.batch_size = parse(b, "batch")?;
    }
    if let Some(r) = flags.get("lr") {
        config.learning_rate = parse(r, "lr")?;
    }
    if let Some(s) = flags.get("seed") {
        config.seed = parse(s, "seed")?;
    }
    if let Some(policy) = degrade_from(flags)? {
        config.degrade = policy;
    }
    if let Some(s) = flags.get("heartbeat-timeout-ms") {
        let ms: u64 = parse(s, "heartbeat-timeout-ms")?;
        if ms == 0 {
            return Err("--heartbeat-timeout-ms must be positive".to_string());
        }
        config.heartbeat_timeout = Duration::from_millis(ms);
    }
    Ok(config)
}

/// The model/dataset recipe every networked peer rebuilds identically: the
/// worker only needs the cluster size from its `Assign` message.
fn net_model_and_data(n: usize) -> (SoftmaxRegression, Dataset) {
    (
        SoftmaxRegression::new(8, 4),
        Dataset::gaussian_classification(64 * n.max(4), 8, 4, 3.0, 777),
    )
}

/// Renders one master-side per-step progress line. `oracle` is the exact
/// decoder's verdict for the step: absent (not run), a recovered count, or a
/// typed timeout when the budgeted branch-and-bound could not finish.
fn render_step(
    r: &isgc_net::NetReport,
    n: usize,
    oracle: Option<Result<usize, OracleTimeout>>,
) -> String {
    let oracle_note = match oracle {
        Some(Ok(best)) if best == r.recovered => " (oracle ok)".to_string(),
        Some(Ok(best)) => format!(" (ORACLE MISMATCH: exact decoder finds {best})"),
        Some(Err(timeout)) => format!(" (oracle timeout > {:?})", timeout.budget),
        None => String::new(),
    };
    let dead_note = if r.dead.is_empty() {
        String::new()
    } else {
        format!(" dead {:?}", r.dead)
    };
    let repair_note = if r.repairs.is_empty() {
        String::new()
    } else {
        format!(" repaired {}", r.repairs.len())
    };
    let degrade_note = match r.outcome {
        StepOutcome::Exact => String::new(),
        StepOutcome::Approx => format!(
            " APPROX cov {:.0}% x{:.2} streak {}",
            100.0 * r.coverage,
            r.bias_weight,
            r.consecutive_degraded
        ),
        StepOutcome::Skipped => format!(" SKIPPED streak {}", r.consecutive_degraded),
    };
    format!(
        "step {:>3}: arrivals {}/{n} recovered {:>2}/{n}{oracle_note} waited {:>6.1} ms loss {:.4}{dead_note}{repair_note}{degrade_note}",
        r.step,
        r.arrivals.len(),
        r.recovered,
        r.waited_ms,
        r.loss,
    )
}

/// Renders the end-of-run summary shared by `serve` and `launch`.
fn render_net_summary(report: &isgc_net::NetTrainReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "steps:              {}", report.step_count());
    let _ = writeln!(out, "final loss:         {:.4}", report.final_loss());
    let _ = writeln!(
        out,
        "recovered (mean):   {:.1}%",
        100.0 * report.mean_recovered_fraction()
    );
    let _ = writeln!(out, "waited/step (mean): {:.1} ms", report.mean_waited_ms());
    if report.degraded_steps() > 0 {
        let _ = writeln!(
            out,
            "degraded steps:     {} ({} approx, {} skipped; worst streak {})",
            report.degraded_steps(),
            report.approx_steps(),
            report.skipped_steps(),
            report.max_consecutive_degraded()
        );
    }
    let _ = writeln!(out, "wall time:          {:.2} s", report.wall_time);
    out
}

const SERVE_FLAGS: &[&str] = &[
    "w",
    "deadline-ms",
    "steps",
    "port",
    "batch",
    "lr",
    "seed",
    "degrade",
    "max-consecutive",
    "min-coverage",
    "heartbeat-timeout-ms",
    "metrics-out",
];

fn cmd_serve(args: &[String]) -> Result<String, String> {
    let (p, consumed) = build_placement(args)?;
    let flags = parse_flags(&args[consumed..], SERVE_FLAGS)?;
    let mut config = net_config_from(&p, &flags)?;
    let metrics = metrics_from(&flags);
    config.metrics = metrics.as_ref().map(|(_, r)| r.clone());
    let port: u16 = match flags.get("port") {
        Some(s) => parse(s, "port")?,
        None => 7070,
    };
    let n = p.n();
    let master = Master::bind(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    let addr = master.local_addr().map_err(|e| e.to_string())?;
    println!("master listening on {addr}; waiting for {n} workers");
    let (model, dataset) = net_model_and_data(n);
    let report = master
        .run_with(&model, &dataset, &config, |r| {
            println!("{}", render_step(r, n, None));
        })
        .map_err(|e| e.to_string())?;
    let mut out = render_net_summary(&report);
    finish_metrics(&mut out, metrics.as_ref())?;
    Ok(out)
}

/// [`isgc_sched::JobDriver`] over a networked [`MasterSession`]: the
/// adapter that lets one scheduler round-robin several TCP masters in one
/// process. Lives here (not in `isgc-sched`) so the scheduler crate stays
/// transport-free.
struct NetJob {
    session: Option<MasterSession<SoftmaxRegression>>,
    done: bool,
}

impl NetJob {
    fn new(session: MasterSession<SoftmaxRegression>) -> Self {
        NetJob {
            session: Some(session),
            done: false,
        }
    }
}

impl JobDriver for NetJob {
    fn step(&mut self) -> Result<SessionStatus, DriverError> {
        if self.done {
            return Ok(SessionStatus::Done);
        }
        let session = self.session.as_mut().expect("live session");
        match session.step() {
            Ok(SessionStatus::Running) => Ok(SessionStatus::Running),
            Ok(SessionStatus::Done) => {
                self.done = true;
                Ok(SessionStatus::Done)
            }
            Err(e) => {
                self.done = true;
                Err(Box::new(e))
            }
        }
    }

    fn finish(mut self: Box<Self>) -> isgc_engine::TrainReport {
        self.session.take().expect("live session").finish()
    }
}

const SERVE_JOBS_FLAGS: &[&str] = &[
    "jobs",
    "port",
    "w",
    "deadline-ms",
    "steps",
    "batch",
    "lr",
    "seed",
    "degrade",
    "max-consecutive",
    "min-coverage",
    "heartbeat-timeout-ms",
    "metrics-out",
];

/// Builds job `j`'s config: shared shape, per-job id, name (metrics scope
/// and checkpoint namespace), and seed.
fn job_config(base: &NetConfig, j: u64) -> NetConfig {
    let mut config = base.clone();
    config.job = j;
    config.job_name = Some(format!("job-{j}"));
    config.seed = base.seed.wrapping_add(j);
    config
}

/// Renders one finished job's outcome line.
fn render_job_outcome(outcome: &isgc_sched::JobOutcome) -> String {
    match &outcome.result {
        Ok(report) => format!(
            "job {:>2} ({}): {} steps, final loss {:.4}, fingerprint {:016x}\n",
            outcome.id.0,
            outcome.name,
            report.step_count(),
            report.final_loss(),
            report.recovery_fingerprint(),
        ),
        Err(e) => format!(
            "job {:>2} ({}): FAILED after {} steps: {e}\n",
            outcome.id.0, outcome.name, outcome.steps_run
        ),
    }
}

fn cmd_serve_jobs(args: &[String]) -> Result<String, String> {
    let (p, consumed) = build_placement(args)?;
    let flags = parse_flags(&args[consumed..], SERVE_JOBS_FLAGS)?;
    let jobs: u64 = match flags.get("jobs") {
        Some(s) => parse(s, "jobs")?,
        None => 2,
    };
    if jobs == 0 {
        return Err("--jobs must be positive".to_string());
    }
    let base_port: u16 = match flags.get("port") {
        Some(s) => parse(s, "port")?,
        None => 7070,
    };
    let mut base = net_config_from(&p, &flags)?;
    let metrics = metrics_from(&flags);
    base.metrics = metrics.as_ref().map(|(_, r)| r.clone());
    let n = p.n();

    // Bind every tenant's listener up front so all the join addresses are
    // printable before any job blocks on registration.
    let mut masters = Vec::new();
    for j in 0..jobs {
        let port = if base_port == 0 {
            0
        } else {
            base_port
                .checked_add(u16::try_from(j).map_err(|_| "too many jobs".to_string())?)
                .ok_or_else(|| format!("port {base_port}+{j} overflows"))?
        };
        let master = Master::bind(("127.0.0.1", port)).map_err(|e| e.to_string())?;
        let addr = master.local_addr().map_err(|e| e.to_string())?;
        println!("job {j} listening on {addr}; join with: isgc worker {addr} --job {j}");
        masters.push(master);
    }
    println!("waiting for {n} workers per job (jobs register in submission order)");

    let mut sched = Scheduler::new(SchedulerConfig::new(jobs as usize, 0));
    for (j, master) in masters.into_iter().enumerate() {
        let config = job_config(&base, j as u64);
        let name = config.job_name.clone().unwrap_or_default();
        sched
            .submit_driver(
                name,
                Box::new(move || {
                    let (model, dataset) = net_model_and_data(n);
                    master
                        .into_session(model, dataset, &config)
                        .map(|session| Box::new(NetJob::new(session)) as Box<dyn JobDriver>)
                        .map_err(|e| Box::new(e) as DriverError)
                }),
            )
            .map_err(|e| e.to_string())?;
    }
    let outcomes = sched.run_to_completion();
    let mut out = String::new();
    let mut failed = false;
    for outcome in &outcomes {
        failed |= outcome.result.is_err();
        out.push_str(&render_job_outcome(outcome));
    }
    finish_metrics(&mut out, metrics.as_ref())?;
    if failed {
        return Err(out);
    }
    Ok(out)
}

fn cmd_worker(args: &[String]) -> Result<String, String> {
    let addr = args
        .first()
        .ok_or_else(|| "expected: worker <host:port> [--delay-ms <d>] [--job <id>]".to_string())?
        .clone();
    let flags = parse_flags(&args[1..], &["delay-ms", "job", "heartbeat-interval-ms"])?;
    let delay_ms: u64 = match flags.get("delay-ms") {
        Some(s) => parse(s, "delay-ms")?,
        None => 0,
    };
    let mut options =
        WorkerOptions::with_delay(Arc::new(move |_w, _step| Duration::from_millis(delay_ms)));
    if let Some(s) = flags.get("job") {
        options.job = parse(s, "job")?;
    }
    if let Some(s) = flags.get("heartbeat-interval-ms") {
        let ms: u64 = parse(s, "heartbeat-interval-ms")?;
        if ms == 0 {
            return Err("--heartbeat-interval-ms must be positive".to_string());
        }
        options.heartbeat_interval = Duration::from_millis(ms);
    }
    let summary = isgc_net::run_worker(addr.as_str(), &options, |assignment| {
        net_model_and_data(assignment.n)
    })
    .map_err(|e| e.to_string())?;
    Ok(format!(
        "worker {} served {} steps ({} reconnects), exiting: {:?}\n",
        summary.worker, summary.steps_served, summary.reconnects, summary.cause
    ))
}

fn cmd_swarm(args: &[String]) -> Result<String, String> {
    let addr = args
        .first()
        .ok_or_else(|| "expected: swarm <host:port> --workers <n> [flags]".to_string())?
        .clone();
    let flags = parse_flags(
        &args[1..],
        &[
            "workers",
            "slow",
            "delay-ms",
            "job",
            "heartbeat-interval-ms",
        ],
    )?;
    let workers: usize = match flags.get("workers") {
        Some(s) => parse(s, "workers")?,
        None => return Err("--workers is required".to_string()),
    };
    let slow: usize = match flags.get("slow") {
        Some(s) => parse(s, "slow")?,
        None => 0,
    };
    let delay_ms: u64 = match flags.get("delay-ms") {
        Some(s) => parse(s, "delay-ms")?,
        None => 100,
    };
    let mut options = SwarmOptions::new(workers);
    // Straggling keys on the master-assigned worker index, so the semantics
    // match `launch --slow` no matter which swarm process owns a member.
    options.delay = Arc::new(move |w, _step| {
        if w < slow {
            Duration::from_millis(delay_ms)
        } else {
            Duration::ZERO
        }
    });
    if let Some(s) = flags.get("job") {
        options.job = parse(s, "job")?;
    }
    if let Some(s) = flags.get("heartbeat-interval-ms") {
        let ms: u64 = parse(s, "heartbeat-interval-ms")?;
        if ms == 0 {
            return Err("--heartbeat-interval-ms must be positive".to_string());
        }
        options.heartbeat_interval = Duration::from_millis(ms);
    }
    let summary = isgc_net::run_swarm(addr.as_str(), &options, |assignment| {
        net_model_and_data(assignment.n)
    })
    .map_err(|e| e.to_string())?;
    Ok(format!(
        "swarm of {} workers served {} steps ({} clean shutdowns, {} lost)\n",
        summary.workers, summary.steps_served, summary.clean_shutdowns, summary.lost
    ))
}

/// This process's thread count as the kernel sees it (Linux only).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

const LAUNCH_FLAGS: &[&str] = &[
    "w",
    "deadline-ms",
    "steps",
    "batch",
    "lr",
    "seed",
    "degrade",
    "max-consecutive",
    "min-coverage",
    "heartbeat-timeout-ms",
    "heartbeat-interval-ms",
    "slow",
    "delay-ms",
    "metrics-out",
    "jobs",
    "tree",
    "swarm",
];

fn cmd_launch(args: &[String]) -> Result<String, String> {
    let (p, consumed) = build_placement(args)?;
    let flags = parse_flags(&args[consumed..], LAUNCH_FLAGS)?;
    let mut config = net_config_from(&p, &flags)?;
    let metrics = metrics_from(&flags);
    config.metrics = metrics.as_ref().map(|(_, r)| r.clone());
    let n = p.n();
    let slow: usize = match flags.get("slow") {
        Some(s) => parse(s, "slow")?,
        None => 0,
    };
    if slow > n {
        return Err(format!("--slow {slow} exceeds the {n} workers"));
    }
    let delay_ms: u64 = match flags.get("delay-ms") {
        Some(s) => parse(s, "delay-ms")?,
        None => 100,
    };
    let heartbeat_interval_ms: Option<u64> = match flags.get("heartbeat-interval-ms") {
        Some(s) => {
            let ms: u64 = parse(s, "heartbeat-interval-ms")?;
            if ms == 0 {
                return Err("--heartbeat-interval-ms must be positive".to_string());
            }
            Some(ms)
        }
        None => None,
    };
    let jobs: u64 = match flags.get("jobs") {
        Some(s) => parse(s, "jobs")?,
        None => 1,
    };
    if jobs == 0 {
        return Err("--jobs must be positive".to_string());
    }
    let tree: usize = match flags.get("tree") {
        Some(s) => parse(s, "tree")?,
        None => 0,
    };
    if tree > 0 {
        // `shard_ranges` (used to place workers before any session exists)
        // asserts the same geometry `TreeRootLoop::new` validates — check it
        // here so a bad --tree is an error, not a panic.
        if !tree.is_power_of_two() {
            return Err(format!(
                "--tree must be a power of two sub-masters, got {tree}"
            ));
        }
        if tree > n {
            return Err(format!("--tree {tree} exceeds the {n} workers"));
        }
    }
    let swarm: usize = match flags.get("swarm") {
        Some(s) => parse(s, "swarm")?,
        None => 0,
    };
    if swarm > 0 {
        if jobs > 1 || tree > 0 {
            return Err("--swarm applies to the flat single-job launch only".to_string());
        }
        if swarm > n {
            return Err(format!("--swarm {swarm} exceeds the {n} workers"));
        }
    }
    if jobs > 1 || tree > 0 {
        return launch_multi(
            &config,
            metrics.as_ref(),
            jobs,
            tree,
            slow,
            delay_ms,
            heartbeat_interval_ms,
        );
    }

    let master = Master::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = master.local_addr().map_err(|e| e.to_string())?;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut children = Vec::with_capacity(n.min(swarm.max(1)));
    if swarm > 0 {
        for p in 0..swarm {
            // Spread n as evenly as possible; each swarm straggles by
            // master-assigned worker index, so every process gets the same
            // global --slow threshold.
            let members = n / swarm + usize::from(p < n % swarm);
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("swarm")
                .arg(addr.to_string())
                .arg("--workers")
                .arg(members.to_string())
                .arg("--slow")
                .arg(slow.to_string())
                .arg("--delay-ms")
                .arg(delay_ms.to_string());
            if let Some(ms) = heartbeat_interval_ms {
                cmd.arg("--heartbeat-interval-ms").arg(ms.to_string());
            }
            cmd.stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null());
            children.push(cmd.spawn().map_err(|e| format!("spawning swarm: {e}"))?);
        }
        println!(
            "launched {n} workers from {swarm} swarm process(es) against {addr} ({slow} straggling by {delay_ms} ms)"
        );
    } else {
        for i in 0..n {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("worker").arg(addr.to_string());
            if i < slow {
                cmd.arg("--delay-ms").arg(delay_ms.to_string());
            }
            if let Some(ms) = heartbeat_interval_ms {
                cmd.arg("--heartbeat-interval-ms").arg(ms.to_string());
            }
            cmd.stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null());
            children.push(cmd.spawn().map_err(|e| format!("spawning worker: {e}"))?);
        }
        println!(
            "launched {n} worker processes against {addr} ({slow} straggling by {delay_ms} ms)"
        );
    }

    // Per-step oracle: replay each surviving worker set through the exact
    // decoder and flag any step where the runtime recovered less. The
    // oracle is branch-and-bound MIS — exponential in the worst case (it
    // visibly stalls on near-full availability already at FR(64, 2)) — so
    // it runs under a wall-clock budget: a step whose search exceeds the
    // budget is reported as a typed timeout instead of silently skipping
    // the check (or stalling the master mid-step).
    const ORACLE_BUDGET: Duration = Duration::from_millis(250);
    let oracle = ExactDecoder::with_budget(&p, ORACLE_BUDGET);
    let mut mismatches = 0usize;
    let mut oracle_timeouts = 0usize;
    let mut threads_during_run: Option<usize> = None;
    let (model, dataset) = net_model_and_data(n);
    let outcome = master.run_with(&model, &dataset, &config, |r| {
        threads_during_run = threads_during_run.or_else(process_threads);
        let available = WorkerSet::from_indices(n, r.arrivals.iter().copied());
        let best = oracle
            .decode_within(&available)
            .map(|d| d.recovered_count());
        match best {
            Ok(best) if best != r.recovered => mismatches += 1,
            Err(_) => oracle_timeouts += 1,
            Ok(_) => {}
        }
        println!("{}", render_step(r, n, Some(best)));
    });
    let report = match outcome {
        Ok(report) => report,
        Err(e) => {
            for mut child in children {
                let _ = child.kill();
            }
            return Err(e.to_string());
        }
    };
    for mut child in children {
        let _ = child.wait();
    }
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} steps recovered fewer partitions than the exact decoder"
        ));
    }
    let mut out = render_net_summary(&report);
    if oracle_timeouts > 0 {
        let _ = writeln!(
            out,
            "oracle timeouts:    {oracle_timeouts} steps exceeded the {ORACLE_BUDGET:?} \
             exact-MIS budget (maximality unchecked there)"
        );
    }
    if let Some(threads) = threads_during_run {
        let _ = writeln!(out, "master threads during run: {threads}");
    }
    finish_metrics(&mut out, metrics.as_ref())?;
    Ok(out)
}

/// The `--jobs`/`--tree` arm of `launch`: J co-tenant jobs in one scheduler,
/// each its own TCP master (optionally aggregating through `tree`
/// sub-master threads), with J×n loopback worker processes.
#[allow(clippy::too_many_arguments)]
fn launch_multi(
    base: &NetConfig,
    metrics: Option<&(String, Registry)>,
    jobs: u64,
    tree: usize,
    slow: usize,
    delay_ms: u64,
    heartbeat_interval_ms: Option<u64>,
) -> Result<String, String> {
    let n = base.placement.n();
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut children: Vec<std::process::Child> = Vec::new();
    let mut sub_threads = Vec::new();
    let mut masters = Vec::new();

    let spawn_child = |addr: std::net::SocketAddr, job: u64, slow_one: bool| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("worker")
            .arg(addr.to_string())
            .arg("--job")
            .arg(job.to_string());
        if slow_one {
            cmd.arg("--delay-ms").arg(delay_ms.to_string());
        }
        if let Some(ms) = heartbeat_interval_ms {
            cmd.arg("--heartbeat-interval-ms").arg(ms.to_string());
        }
        cmd.stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        cmd.spawn().map_err(|e| format!("spawning worker: {e}"))
    };
    let kill_all = |children: &mut Vec<std::process::Child>| {
        for child in children.iter_mut() {
            let _ = child.kill();
        }
    };

    for j in 0..jobs {
        let master = Master::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
        let root_addr = master.local_addr().map_err(|e| e.to_string())?;
        if tree > 0 {
            for (shard, &(lo, hi)) in shard_ranges(n, tree).iter().enumerate() {
                let sub = match Submaster::bind("127.0.0.1:0") {
                    Ok(sub) => sub,
                    Err(e) => {
                        kill_all(&mut children);
                        return Err(e.to_string());
                    }
                };
                let sub_addr = match sub.local_addr() {
                    Ok(addr) => addr,
                    Err(e) => {
                        kill_all(&mut children);
                        return Err(e.to_string());
                    }
                };
                let options = SubmasterOptions {
                    job: j,
                    ..SubmasterOptions::default()
                };
                sub_threads.push(std::thread::spawn(move || {
                    sub.run(root_addr, shard, &options)
                }));
                for w in lo..hi {
                    match spawn_child(sub_addr, j, w < slow) {
                        Ok(child) => children.push(child),
                        Err(e) => {
                            kill_all(&mut children);
                            return Err(e);
                        }
                    }
                }
            }
        } else {
            for w in 0..n {
                match spawn_child(root_addr, j, w < slow) {
                    Ok(child) => children.push(child),
                    Err(e) => {
                        kill_all(&mut children);
                        return Err(e);
                    }
                }
            }
        }
        masters.push(master);
    }
    let topology = if tree > 0 {
        format!("2-level tree, {tree} sub-masters per job")
    } else {
        "flat".to_string()
    };
    println!(
        "launched {jobs} jobs x {n} worker processes ({topology}; {slow} straggling by {delay_ms} ms per job)"
    );

    let mut sched = Scheduler::new(SchedulerConfig::new(jobs as usize, 0));
    for (j, master) in masters.into_iter().enumerate() {
        let config = job_config(base, j as u64);
        let name = config.job_name.clone().unwrap_or_default();
        let submitted = sched.submit_driver(
            name,
            Box::new(move || {
                let (model, dataset) = net_model_and_data(n);
                let session = if tree > 0 {
                    master.into_tree_session(model, dataset, &config, tree)
                } else {
                    master.into_session(model, dataset, &config)
                };
                session
                    .map(|session| Box::new(NetJob::new(session)) as Box<dyn JobDriver>)
                    .map_err(|e| Box::new(e) as DriverError)
            }),
        );
        if let Err(e) = submitted {
            kill_all(&mut children);
            return Err(e.to_string());
        }
    }
    let outcomes = sched.run_to_completion();

    for handle in sub_threads {
        // A sub-master error after its job already failed adds no signal;
        // surface per-job failures through the outcomes below.
        let _ = handle.join().map_err(|_| "sub-master thread panicked")?;
    }
    for mut child in children {
        let _ = child.wait();
    }

    let mut out = String::new();
    let mut failed = false;
    for outcome in &outcomes {
        failed |= outcome.result.is_err();
        out.push_str(&render_job_outcome(outcome));
    }
    finish_metrics(&mut out, metrics)?;
    if failed {
        return Err(out);
    }
    Ok(out)
}

/// `isgc chaos --plan <name> [--seed s] [--n k --c k --steps k]`: run a
/// loopback cluster under a named fault plan and report the per-step record,
/// the determinism fingerprint, and any invariant violations.
/// The `chaos --plan <trace.json>` arm: replays a model-checker
/// counterexample (or any saved trace) on a real loopback cluster and holds
/// the run to the trace's recorded failure fingerprint.
fn cmd_chaos_replay(path: &str, flags: &HashMap<String, String>) -> Result<String, String> {
    for flag in ["n", "c", "steps", "seed"] {
        if flags.contains_key(flag) {
            return Err(format!(
                "--{flag} conflicts with a trace file: the trace records the cluster shape"
            ));
        }
    }
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let trace = Trace::from_json(&json).map_err(|e| format!("invalid trace '{path}': {e}"))?;
    let mut config = ChaosConfig::new(trace.seed);
    config.n = trace.n;
    config.c = trace.c;
    config.steps = trace.steps;
    let metrics = metrics_from(flags);
    config.metrics = metrics.as_ref().map(|(_, r)| r.clone());
    if let Some(policy) = degrade_from(flags)? {
        config.degrade = policy;
    }
    let plan = trace.plan();
    let outcome = run_chaos(&plan, &config).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replaying trace '{}' ({path}) on FR({}, {}), {} steps, seed {}",
        trace.name, config.n, config.c, config.steps, trace.seed
    );
    for r in &outcome.reports {
        let _ = writeln!(out, "{}", render_step(r, config.n, None));
    }
    let _ = writeln!(out, "final loss:         {:.4}", outcome.final_loss);
    let _ = writeln!(out, "run fingerprint:    {:016x}", outcome.fingerprint);
    finish_metrics(&mut out, metrics.as_ref())?;
    for v in &outcome.violations {
        let _ = writeln!(out, "VIOLATION: {v}");
    }
    let observed = failure_fingerprint(&outcome.violations);
    match trace.fingerprint {
        Some(expected) if expected == observed => {
            let _ = writeln!(
                out,
                "failure fingerprint {observed:016x} matches the trace: the modeled \
                 counterexample reproduces on a real cluster"
            );
            Ok(out)
        }
        Some(expected) => {
            let _ = writeln!(
                out,
                "failure fingerprint mismatch: trace recorded {expected:016x}, replay \
                 produced {observed:016x}"
            );
            Err(out)
        }
        None if outcome.passed() => {
            let _ = writeln!(out, "trace records no failure and the replay is clean");
            Ok(out)
        }
        None => {
            let _ = writeln!(
                out,
                "trace records no failure but the replay violated invariants"
            );
            Err(out)
        }
    }
}

/// The `mc` command: exhaustive protocol model checking with counterexample
/// minimization. A violation writes a replayable trace and fails the command.
fn cmd_mc(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(
        args,
        &[
            "shape",
            "steps",
            "seed",
            "max-faults",
            "depth",
            "max-runs",
            "trace-out",
        ],
    )?;
    let shape = flags.get("shape").map_or("flat3", String::as_str);
    let mut cfg = match shape {
        "flat3" => McConfig::flat3(),
        "flat4" => McConfig::flat4(),
        "tree2x2" => McConfig::tree2x2(),
        other => {
            return Err(format!(
                "unknown shape '{other}'; available: flat3, flat4, tree2x2"
            ))
        }
    };
    if let Some(s) = flags.get("steps") {
        cfg.steps = parse(s, "steps")?;
    }
    if let Some(s) = flags.get("seed") {
        cfg.seed = parse(s, "seed")?;
    }
    if let Some(s) = flags.get("max-faults") {
        cfg.max_faults = parse(s, "max-faults")?;
    }
    if let Some(s) = flags.get("depth") {
        cfg.depth = parse(s, "depth")?;
    }
    if let Some(s) = flags.get("max-runs") {
        cfg.max_runs = parse(s, "max-runs")?;
    }

    let (n, c) = cfg.shape.cluster();
    let result = explore(&cfg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model checking '{}' — FR({n}, {c}), {} steps, seed {}, ≤{} faults, depth {}",
        cfg.shape.name(),
        cfg.steps,
        cfg.seed,
        cfg.max_faults,
        cfg.depth
    );
    let _ = writeln!(
        out,
        "runs:               {} ({} completed, {} degraded, {} all-lost, {} pruned, {} stuck)",
        result.runs, result.completed, result.degraded, result.lost, result.pruned, result.stuck
    );
    let _ = writeln!(
        out,
        "states:             {} ({} terminal + {} branching)",
        result.states(),
        result.runs,
        result.branch_states
    );
    let _ = writeln!(out, "events delivered:   {}", result.events);
    let _ = writeln!(
        out,
        "recovery outcomes:  {} distinct fingerprints",
        result.distinct_fingerprints
    );
    let _ = writeln!(
        out,
        "search:             {}",
        if result.truncated {
            "TRUNCATED by --max-runs (coverage incomplete)"
        } else if result.passed() {
            "exhausted the bounded state space"
        } else {
            "stopped at the first violation"
        }
    );
    let _ = writeln!(
        out,
        "mc_{}_states_per_sec: {:.0}",
        cfg.shape.name(),
        result.states_per_sec()
    );

    if result.passed() {
        let _ = writeln!(
            out,
            "invariants:         recovery bounds, oracle equality, ladder arithmetic, \
             absence/stale accounting, fingerprint determinism, progress — all hold"
        );
        return Ok(out);
    }

    let violation = &result.violations[0];
    let _ = writeln!(out, "\nVIOLATION under faults {:?}:", violation.faults);
    for m in &violation.messages {
        let _ = writeln!(out, "  {m}");
    }
    let minimized = minimize(&cfg, &violation.faults);
    let _ = writeln!(
        out,
        "minimized ({} -> {} faults): {:?}",
        violation.faults.len(),
        minimized.len(),
        minimized
    );
    let final_violation = explore_plan(&cfg, &minimized).unwrap_or_else(|| violation.clone());
    let trace = counterexample_trace(&cfg, &final_violation);
    let trace_path = flags
        .get("trace-out")
        .map_or("mc_trace.json", String::as_str);
    std::fs::write(trace_path, trace.to_json())
        .map_err(|e| format!("cannot write '{trace_path}': {e}"))?;
    let _ = writeln!(
        out,
        "counterexample written to {trace_path}; replay it on a real cluster with:\n  \
         isgc chaos --plan {trace_path}"
    );
    Err(out)
}

fn cmd_chaos(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(
        args,
        &[
            "plan",
            "seed",
            "n",
            "c",
            "steps",
            "degrade",
            "max-consecutive",
            "min-coverage",
            "metrics-out",
            "submasters",
            "crash-shard",
            "crash-step",
        ],
    )?;
    let name = flags.get("plan").map_or("smoke", String::as_str);
    if name.ends_with(".json") || std::path::Path::new(name).is_file() {
        return cmd_chaos_replay(name, &flags);
    }
    let seed: u64 = match flags.get("seed") {
        Some(s) => parse(s, "seed")?,
        None => 42,
    };
    if name == "submaster-crash" {
        for flag in ["degrade", "max-consecutive", "min-coverage"] {
            if flags.contains_key(flag) {
                return Err(format!(
                    "--{flag} is not supported with --plan submaster-crash"
                ));
            }
        }
        return cmd_chaos_tree(&flags, seed);
    }
    for tree_flag in ["submasters", "crash-shard", "crash-step"] {
        if flags.contains_key(tree_flag) {
            return Err(format!(
                "--{tree_flag} only applies to --plan submaster-crash"
            ));
        }
    }
    let mut config = ChaosConfig::new(seed);
    let metrics = metrics_from(&flags);
    config.metrics = metrics.as_ref().map(|(_, r)| r.clone());
    if let Some(s) = flags.get("n") {
        config.n = parse(s, "n")?;
    }
    if let Some(s) = flags.get("c") {
        config.c = parse(s, "c")?;
    }
    if let Some(s) = flags.get("steps") {
        config.steps = parse(s, "steps")?;
    }
    let plan = FaultPlan::named(name, seed, config.n, config.steps as u64).ok_or_else(|| {
        format!(
            "unknown plan '{name}'; available: {}, submaster-crash",
            PLAN_NAMES.join(", ")
        )
    })?;
    config.degrade = match degrade_from(&flags)? {
        Some(policy) => policy,
        None => plan.recommended_policy(config.n, config.steps as u64),
    };

    let outcome = run_chaos(&plan, &config).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos plan '{}' on FR({}, {}), {} steps, seed {seed}",
        outcome.plan, config.n, config.c, config.steps
    );
    let _ = writeln!(
        out,
        "degrade policy:     {}",
        render_policy(&config.degrade)
    );
    for r in &outcome.reports {
        let _ = writeln!(out, "{}", render_step(r, config.n, None));
    }
    let _ = writeln!(out, "master restarts:    {}", outcome.master_restarts);
    let reconnects: usize = outcome.workers.iter().map(|w| w.reconnects).sum();
    let _ = writeln!(out, "worker reconnects:  {reconnects}");
    if outcome.degraded_steps() > 0 {
        let _ = writeln!(
            out,
            "degraded steps:     {} (worst streak {})",
            outcome.degraded_steps(),
            outcome.max_consecutive_degraded()
        );
    }
    let _ = writeln!(out, "final loss:         {:.4}", outcome.final_loss);
    let _ = writeln!(out, "fingerprint:        {:016x}", outcome.fingerprint);
    finish_metrics(&mut out, metrics.as_ref())?;
    if outcome.passed() {
        let _ = writeln!(
            out,
            "invariants:         all steps within Theorem 10/11 bounds; ladder arithmetic consistent; decode matches oracle"
        );
        Ok(out)
    } else {
        for v in &outcome.violations {
            let _ = writeln!(out, "VIOLATION: {v}");
        }
        Err(out)
    }
}

/// The `submaster-crash` arm of `chaos`: a 2-level aggregation tree whose
/// scripted sub-master dies mid-step, restarts, and must leave exactly one
/// deterministically degraded step behind.
fn cmd_chaos_tree(flags: &HashMap<String, String>, seed: u64) -> Result<String, String> {
    if flags.contains_key("metrics-out") {
        return Err("--metrics-out is not supported with --plan submaster-crash".to_string());
    }
    let mut config = TreeChaosConfig::new(seed);
    if let Some(s) = flags.get("n") {
        config.n = parse(s, "n")?;
    }
    if let Some(s) = flags.get("c") {
        config.c = parse(s, "c")?;
    }
    if let Some(s) = flags.get("steps") {
        config.steps = parse(s, "steps")?;
    }
    if let Some(s) = flags.get("submasters") {
        config.submasters = parse(s, "submasters")?;
    }
    if let Some(s) = flags.get("crash-shard") {
        config.crash_shard = parse(s, "crash-shard")?;
    }
    if let Some(s) = flags.get("crash-step") {
        config.crash_at_step = parse(s, "crash-step")?;
    }
    let outcome = run_tree_chaos(&config).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos plan 'submaster-crash' on FR({}, {}), {} sub-masters, {} steps, seed {seed}",
        config.n, config.c, config.submasters, config.steps
    );
    let _ = writeln!(
        out,
        "sub-master {} killed on receiving step {}'s broadcast",
        config.crash_shard, config.crash_at_step
    );
    for r in &outcome.reports {
        let _ = writeln!(out, "{}", render_step(r, config.n, None));
    }
    let _ = writeln!(out, "sub-master restarts: {}", outcome.submaster_restarts);
    let _ = writeln!(out, "degraded steps:      {:?}", outcome.degraded_steps);
    let _ = writeln!(out, "final loss:          {:.4}", outcome.final_loss);
    let _ = writeln!(out, "fingerprint:         {:016x}", outcome.fingerprint);
    if outcome.passed() {
        let _ = writeln!(
            out,
            "invariants:          exactly one degraded step; recovery within bounds; decode matches oracle"
        );
        Ok(out)
    } else {
        for v in &outcome.violations {
            let _ = writeln!(out, "VIOLATION: {v}");
        }
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&args("help")).unwrap().contains("USAGE"));
        assert!(run(&args("frobnicate")).is_err());
    }

    #[test]
    fn placement_command_renders() {
        let out = run(&args("placement cr 4 2")).unwrap();
        assert!(out.contains("CR placement, n = 4, c = 2"));
        assert!(out.contains("worker   0: partitions [0, 1]"));
        assert!(out.contains("4 edges"));
        let out = run(&args("placement hr 8 2 2 2")).unwrap();
        assert!(out.contains("HR placement"));
    }

    #[test]
    fn placement_command_rejects_bad_input() {
        assert!(run(&args("placement fr 4 3")).is_err()); // c ∤ n
        assert!(run(&args("placement cr x 2")).is_err());
        assert!(run(&args("placement cr 4")).is_err());
        assert!(run(&args("placement zz 4 2")).is_err());
    }

    #[test]
    fn decode_command_matches_fig1d() {
        let out = run(&args("decode cr 4 2 0,2")).unwrap();
        assert!(out.contains("selected (I):      [0, 2]"));
        assert!(out.contains("recovered:         4/4"));
    }

    #[test]
    fn decode_command_validates_workers() {
        assert!(run(&args("decode cr 4 2 0,9")).is_err());
        assert!(run(&args("decode cr 4 2")).is_err());
        assert!(run(&args("decode cr 4 2 0,x")).is_err());
    }

    #[test]
    fn decode_empty_availability_is_fine() {
        let out = run(&args("decode cr 4 2 ,")).unwrap();
        assert!(out.contains("recovered:         0/4"));
    }

    #[test]
    fn bounds_command_renders_table() {
        let out = run(&args("bounds 8 2")).unwrap();
        assert!(out.contains("n = 8, c = 2"));
        // w = 8 row: both bounds are 4.
        assert!(out.lines().last().unwrap().contains('4'));
        assert!(run(&args("bounds 4 9")).is_err());
        assert!(run(&args("bounds 4")).is_err());
    }

    #[test]
    fn recommend_command_covers_all_rationales() {
        let fr = run(&args("recommend 8 2")).unwrap();
        assert!(fr.contains("FR"));
        assert!(fr.contains("Theorem 4"));
        let hr = run(&args("recommend 10 4")).unwrap();
        assert!(hr.contains("HR"));
        let cr = run(&args("recommend 7 3")).unwrap();
        assert!(cr.contains("CR always works"));
        assert!(run(&args("recommend 0 1")).is_err());
        assert!(run(&args("recommend 4")).is_err());
    }

    #[test]
    fn plan_command_profiles_wait_counts() {
        let out = run(&args("plan cr 4 2")).unwrap();
        assert!(out.contains("best w ="));
        assert!(out.lines().count() >= 7); // header + 4 rows + pick
        assert!(run(&args("plan cr 4")).is_err());
    }

    #[test]
    fn trace_command_emits_csv() {
        let out = run(&args("trace 3 5 0.5")).unwrap();
        assert_eq!(out.lines().count(), 5);
        assert_eq!(out.lines().next().unwrap().split(',').count(), 3);
        assert!(run(&args("trace 0 5")).is_err());
        assert!(run(&args("trace 3 5 1.5")).is_err());
        // Default slow rate works too.
        assert!(run(&args("trace 2 4")).is_ok());
    }

    #[test]
    fn sim_command_runs_quickly() {
        let out = run(&args("sim cr 4 2 2 30")).unwrap();
        assert!(out.contains("steps:"));
        assert!(out.contains("recovered (mean):"));
        assert!(!out.contains("metrics")); // quiet without --metrics-out
        assert!(run(&args("sim cr 4 2 9")).is_err()); // w > n
    }

    #[test]
    fn sim_command_collects_metrics() {
        let path =
            std::env::temp_dir().join(format!("isgc-cli-metrics-{}.txt", std::process::id()));
        let path_str = path.to_str().unwrap();
        let out = run(&args(&format!("sim cr 4 2 2 5 --metrics-out {path_str}"))).unwrap();
        assert!(out.contains("metrics (logical series):"));
        assert!(out.contains("counter engine.steps.total"));
        assert!(!out.contains("engine.decode.latency_ms")); // timing excluded
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.starts_with("# isgc-obs snapshot v1 (full)"));
        assert!(dump.contains("engine.decode.latency_ms")); // full dump has timing
        let _ = std::fs::remove_file(&path);
        // Steps stays optional when flags follow the positionals.
        assert!(run(&args("sim cr 4 2 9 --metrics-out /dev/null")).is_err()); // w > n still checked
    }

    #[test]
    fn sim_command_writes_jsonl_dumps() {
        let path =
            std::env::temp_dir().join(format!("isgc-cli-metrics-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap();
        run(&args(&format!("sim cr 4 2 4 3 --metrics-out {path_str}"))).unwrap();
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.lines().count() > 3);
        for line in dump.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not JSON: {line}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sim_command_rejects_unknown_flags() {
        assert!(run(&args("sim cr 4 2 2 5 --bogus x")).is_err());
        assert!(run(&args("sim cr 4 2 2 --metrics-out")).is_err()); // missing value
    }

    #[test]
    fn flag_parser_accepts_known_pairs() {
        let flags = parse_flags(&args("--w 6 --steps 20"), SERVE_FLAGS).unwrap();
        assert_eq!(flags.get("w").map(String::as_str), Some("6"));
        assert_eq!(flags.get("steps").map(String::as_str), Some("20"));
    }

    #[test]
    fn flag_parser_rejects_malformed_input() {
        assert!(parse_flags(&args("w 6"), SERVE_FLAGS).is_err()); // missing --
        assert!(parse_flags(&args("--bogus 1"), SERVE_FLAGS).is_err());
        assert!(parse_flags(&args("--w"), SERVE_FLAGS).is_err()); // no value
        assert!(parse_flags(&args("--w 6 --w 7"), SERVE_FLAGS).is_err());
    }

    #[test]
    fn wait_policy_resolves_and_validates() {
        let flags = parse_flags(&args("--w 6"), SERVE_FLAGS).unwrap();
        assert_eq!(
            wait_policy_from(&flags, 8).unwrap(),
            NetWaitPolicy::FirstW(6)
        );
        let flags = parse_flags(&args("--deadline-ms 250"), SERVE_FLAGS).unwrap();
        assert_eq!(
            wait_policy_from(&flags, 8).unwrap(),
            NetWaitPolicy::Deadline(Duration::from_millis(250))
        );
        let flags = parse_flags(&args(""), SERVE_FLAGS).unwrap();
        assert_eq!(
            wait_policy_from(&flags, 8).unwrap(),
            NetWaitPolicy::FirstW(8)
        );
        // Invalid combinations.
        let both = parse_flags(&args("--w 6 --deadline-ms 250"), SERVE_FLAGS).unwrap();
        assert!(wait_policy_from(&both, 8).is_err());
        let big = parse_flags(&args("--w 9"), SERVE_FLAGS).unwrap();
        assert!(wait_policy_from(&big, 8).is_err());
        let zero = parse_flags(&args("--deadline-ms 0"), SERVE_FLAGS).unwrap();
        assert!(wait_policy_from(&zero, 8).is_err());
    }

    #[test]
    fn net_config_reads_training_flags() {
        let p = Placement::fractional(8, 2).unwrap();
        let flags = parse_flags(
            &args("--w 6 --steps 12 --batch 4 --lr 0.1 --seed 9"),
            SERVE_FLAGS,
        )
        .unwrap();
        let config = net_config_from(&p, &flags).unwrap();
        assert_eq!(config.max_steps, 12);
        assert_eq!(config.batch_size, 4);
        assert!((config.learning_rate - 0.1).abs() < 1e-12);
        assert_eq!(config.seed, 9);
        assert_eq!(config.wait, NetWaitPolicy::FirstW(6));
    }

    #[test]
    fn net_commands_validate_arguments() {
        assert!(run(&args("serve fr 8 3 --w 6")).is_err()); // c ∤ n
        assert!(run(&args("serve fr 8 2 --bogus 1")).is_err());
        assert!(run(&args("worker")).is_err());
        assert!(run(&args("worker 127.0.0.1:7070 --delay-ms x")).is_err());
        assert!(run(&args("launch fr 8 2 --slow 9")).is_err()); // slow > n
        assert!(run(&args("launch fr 8 2 --w 0")).is_err());
    }

    #[test]
    fn worker_dataset_recipe_is_deterministic() {
        // Master and workers must rebuild byte-identical data from n alone.
        let (_, a) = net_model_and_data(8);
        let (_, b) = net_model_and_data(8);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.features_of(i), b.features_of(i));
            assert_eq!(a.target_of(i), b.target_of(i));
        }
    }

    #[test]
    fn step_rendering_marks_oracle_and_dead() {
        let r = isgc_net::NetReport {
            step: 3,
            arrivals: vec![0, 1, 2],
            waited_ms: 12.5,
            duration: 0.0125,
            decode_ms: 0.2,
            selected: vec![0, 2],
            recovered: 5,
            bounds: None,
            ignored: vec![1, 3],
            dead: vec![3],
            declined: vec![1],
            repairs: vec![isgc_net::RepairEvent {
                partition: 2,
                from: 3,
                to: 0,
            }],
            stale: 1,
            failed_decode: false,
            outcome: isgc_engine::StepOutcome::Exact,
            coverage: 1.0,
            bias_weight: 1.0,
            consecutive_degraded: 0,
            loss: 0.5,
        };
        let line = render_step(&r, 4, Some(Ok(5)));
        assert!(line.contains("oracle ok"));
        assert!(line.contains("dead [3]"));
        assert!(line.contains("repaired 1"));
        let line = render_step(&r, 4, Some(Ok(6)));
        assert!(line.contains("ORACLE MISMATCH"));
        let timeout = OracleTimeout {
            budget: Duration::from_millis(250),
        };
        let line = render_step(&r, 4, Some(Err(timeout)));
        assert!(line.contains("oracle timeout > 250ms"), "{line}");
        let line = render_step(&r, 4, None);
        assert!(!line.contains("oracle"));

        // Degraded outcomes get an explicit ladder note.
        let mut approx = r.clone();
        approx.outcome = isgc_engine::StepOutcome::Approx;
        approx.coverage = 0.5;
        approx.bias_weight = 2.0;
        approx.consecutive_degraded = 1;
        let line = render_step(&approx, 4, None);
        assert!(line.contains("APPROX cov 50% x2.00 streak 1"), "{line}");
        let mut skipped = r.clone();
        skipped.outcome = isgc_engine::StepOutcome::Skipped;
        skipped.consecutive_degraded = 3;
        assert!(render_step(&skipped, 4, None).contains("SKIPPED streak 3"));
    }

    #[test]
    fn degrade_flags_build_policies_and_validate() {
        let policy = |s: &str| parse_flags(&args(s), SERVE_FLAGS).and_then(|f| degrade_from(&f));
        assert_eq!(policy("").unwrap(), None);
        assert_eq!(policy("--degrade fail").unwrap(), Some(DegradePolicy::Fail));
        assert_eq!(policy("--degrade skip").unwrap(), Some(DegradePolicy::Skip));
        assert_eq!(
            policy("--degrade approx").unwrap(),
            Some(DegradePolicy::approximate_default())
        );
        assert_eq!(
            policy("--degrade approx --max-consecutive 2 --min-coverage 0.25").unwrap(),
            Some(DegradePolicy::Approximate {
                max_consecutive: 2,
                min_coverage: 0.25,
            })
        );
        assert!(policy("--degrade sideways").is_err());
        assert!(policy("--degrade approx --max-consecutive 0").is_err());
        assert!(policy("--degrade approx --min-coverage 1.5").is_err());
        // The approx knobs are rejected outside --degrade approx.
        assert!(policy("--degrade skip --min-coverage 0.5").is_err());
        assert!(policy("--max-consecutive 3").is_err());
    }

    #[test]
    fn heartbeat_flags_validate() {
        let p = Placement::fractional(4, 2).unwrap();
        let flags = parse_flags(&args("--heartbeat-timeout-ms 500"), SERVE_FLAGS).unwrap();
        let config = net_config_from(&p, &flags).unwrap();
        assert_eq!(config.heartbeat_timeout, Duration::from_millis(500));
        let flags = parse_flags(&args("--heartbeat-timeout-ms 0"), SERVE_FLAGS).unwrap();
        assert!(net_config_from(&p, &flags).is_err());
        assert!(run(&args("worker 127.0.0.1:7070 --heartbeat-interval-ms 0")).is_err());
        assert!(run(&args("launch fr 4 2 --heartbeat-interval-ms 0")).is_err());
    }

    #[test]
    fn chaos_blackout_surfaces_the_ladder() {
        let out = run(&args("chaos --plan blackout --seed 7 --steps 8")).unwrap();
        assert!(out.contains("degrade policy:     approx"), "{out}");
        assert!(out.contains("SKIPPED streak"), "{out}");
        assert!(out.contains("degraded steps:"), "{out}");
        // A strict policy cannot ride out a total blackout: the plan
        // validator rejects it up front with a clean error.
        let err = run(&args("chaos --plan blackout --degrade fail")).unwrap_err();
        assert!(err.contains("skip or approx"), "{err}");
        // Tree chaos has no ladder: the flag is rejected, not ignored.
        assert!(run(&args("chaos --plan submaster-crash --degrade skip")).is_err());
    }
}
