//! The `isgc` command-line tool: inspect placements, decode availability
//! patterns, check recovery bounds, and run quick straggler simulations
//! without writing any code.
//!
//! Command logic lives here as pure functions returning the rendered output,
//! so everything is unit-testable; `main` only does I/O.

use isgc_core::decode::{CrDecoder, Decoder, ExactDecoder, FrDecoder, HrDecoder};
use isgc_core::{bounds, ConflictGraph, HrParams, Placement, Scheme, WorkerSet};
use isgc_ml::dataset::Dataset;
use isgc_ml::model::SoftmaxRegression;
use isgc_simnet::cluster::{ClusterConfig, StragglerSelection};
use isgc_simnet::delay::Delay;
use isgc_simnet::policy::WaitPolicy;
use isgc_simnet::trainer::{train, CodingScheme, TrainingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Top-level usage text.
pub const USAGE: &str = "\
isgc — ignore-straggler gradient coding (ICDCS 2023 reproduction)

USAGE:
  isgc placement <fr|cr> <n> <c>           show a placement and its conflict graph
  isgc placement hr <n> <g> <c1> <c2>      show a hybrid placement
  isgc decode <fr|cr> <n> <c> <workers>    decode an availability pattern
                                           (workers: comma-separated, e.g. 0,2,5)
  isgc decode hr <n> <g> <c1> <c2> <workers>
  isgc bounds <n> <c>                      Theorem 10/11 recovery bounds for all w
  isgc recommend <n> <c>                   pick the best placement for a budget
  isgc plan <fr|cr> <n> <c>                profile every w and pick the fastest
  isgc trace <n> <steps> [slow-rate]       emit a Markov straggler trace as CSV
  isgc sim <fr|cr> <n> <c> <w> [steps]     quick straggler training simulation
";

/// Dispatches a full argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable error message for unknown commands or invalid
/// arguments.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("placement") => cmd_placement(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("recommend") => cmd_recommend(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: '{s}'"))
}

fn build_placement(args: &[String]) -> Result<(Placement, usize), String> {
    match args.first().map(String::as_str) {
        Some("fr") | Some("cr") => {
            if args.len() < 3 {
                return Err("expected: <fr|cr> <n> <c>".to_string());
            }
            let n: usize = parse(&args[1], "n")?;
            let c: usize = parse(&args[2], "c")?;
            let p = if args[0] == "fr" {
                Placement::fractional(n, c)
            } else {
                Placement::cyclic(n, c)
            }
            .map_err(|e| e.to_string())?;
            Ok((p, 3))
        }
        Some("hr") => {
            if args.len() < 5 {
                return Err("expected: hr <n> <g> <c1> <c2>".to_string());
            }
            let n: usize = parse(&args[1], "n")?;
            let g: usize = parse(&args[2], "g")?;
            let c1: usize = parse(&args[3], "c1")?;
            let c2: usize = parse(&args[4], "c2")?;
            let p = Placement::hybrid(HrParams::new(n, g, c1, c2)).map_err(|e| e.to_string())?;
            Ok((p, 5))
        }
        _ => Err("expected placement kind: fr, cr, or hr".to_string()),
    }
}

fn cmd_placement(args: &[String]) -> Result<String, String> {
    let (p, _) = build_placement(args)?;
    let graph = ConflictGraph::from_placement(&p);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} placement, n = {}, c = {}",
        p.scheme(),
        p.n(),
        p.c()
    );
    for w in 0..p.n() {
        let _ = writeln!(out, "  worker {w:>3}: partitions {:?}", p.partitions_of(w));
    }
    let _ = writeln!(
        out,
        "conflict graph: {} edges{}",
        graph.edge_count(),
        if p.scheme() == Scheme::Cyclic {
            format!(" (circulant C_n^{{1..{}}})", p.c().saturating_sub(1))
        } else {
            String::new()
        }
    );
    let _ = writeln!(out, "  {:?}", graph.edges());
    Ok(out)
}

fn parse_workers(s: &str, n: usize) -> Result<WorkerSet, String> {
    let mut set = WorkerSet::empty(n);
    for tok in s.split(',').filter(|t| !t.is_empty()) {
        let id: usize = parse(tok, "worker id")?;
        if id >= n {
            return Err(format!("worker {id} outside 0..{n}"));
        }
        set.insert(id);
    }
    Ok(set)
}

fn cmd_decode(args: &[String]) -> Result<String, String> {
    let (p, consumed) = build_placement(args)?;
    let avail_arg = args
        .get(consumed)
        .ok_or_else(|| "missing availability list, e.g. 0,2,5".to_string())?;
    let available = parse_workers(avail_arg, p.n())?;
    let decoder: Box<dyn Decoder> = match p.scheme() {
        Scheme::Fractional => Box::new(FrDecoder::new(&p).map_err(|e| e.to_string())?),
        Scheme::Cyclic => Box::new(CrDecoder::new(&p).map_err(|e| e.to_string())?),
        Scheme::Hybrid => Box::new(HrDecoder::new(&p).map_err(|e| e.to_string())?),
        Scheme::Custom => Box::new(ExactDecoder::new(&p)),
    };
    let mut rng = StdRng::seed_from_u64(0);
    let result = decoder.decode(&available, &mut rng);
    let mut out = String::new();
    let _ = writeln!(out, "available workers: {:?}", available.to_vec());
    let _ = writeln!(out, "selected (I):      {:?}", result.selected());
    let _ = writeln!(
        out,
        "recovered:         {}/{} partitions {:?}",
        result.recovered_count(),
        p.n(),
        result.partitions()
    );
    let w = available.len();
    let _ = writeln!(
        out,
        "Theorem 10/11:     {} ≤ |I| ≤ {}",
        bounds::alpha_lower_bound(p.n(), p.c(), w),
        bounds::alpha_upper_bound(p.n(), p.c(), w)
    );
    Ok(out)
}

fn cmd_bounds(args: &[String]) -> Result<String, String> {
    if args.len() < 2 {
        return Err("expected: bounds <n> <c>".to_string());
    }
    let n: usize = parse(&args[0], "n")?;
    let c: usize = parse(&args[1], "c")?;
    if n == 0 || c == 0 || c > n {
        return Err(format!("need 1 ≤ c ≤ n, got n={n}, c={c}"));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recovery bounds for n = {n}, c = {c} (selectable workers)"
    );
    let _ = writeln!(out, "{:>4}  {:>8}  {:>8}", "w", "Thm10 lo", "Thm11 hi");
    for w in 0..=n {
        let _ = writeln!(
            out,
            "{w:>4}  {:>8}  {:>8}",
            bounds::alpha_lower_bound(n, c, w),
            bounds::alpha_upper_bound(n, c, w)
        );
    }
    Ok(out)
}

fn cmd_recommend(args: &[String]) -> Result<String, String> {
    if args.len() < 2 {
        return Err("expected: recommend <n> <c>".to_string());
    }
    let n: usize = parse(&args[0], "n")?;
    let c: usize = parse(&args[1], "c")?;
    let rec = isgc_core::design::recommend(n, c).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recommended placement for n = {n}, c = {c}: {}",
        rec.placement.scheme()
    );
    let _ = match rec.rationale {
        isgc_core::design::Rationale::FrDivides => {
            writeln!(
                out,
                "rationale: c | n, so FR maximizes recovery (Theorem 4)"
            )
        }
        isgc_core::design::Rationale::HrFeasible { g, c1, c2 } => writeln!(
            out,
            "rationale: c ∤ n but HR(n, {c1}, {c2}) with g = {g} groups fits \
             Theorem 6's range and beats CR"
        ),
        isgc_core::design::Rationale::CrFallback => {
            writeln!(out, "rationale: no FR/HR structure fits; CR always works")
        }
    };
    let graph = ConflictGraph::from_placement(&rec.placement);
    let cr_edges =
        ConflictGraph::from_placement(&Placement::cyclic(n, c).map_err(|e| e.to_string())?)
            .edge_count();
    let _ = writeln!(
        out,
        "conflict edges: {} (CR at the same budget would have {cr_edges})",
        graph.edge_count()
    );
    Ok(out)
}

fn cmd_plan(args: &[String]) -> Result<String, String> {
    let (p, _) = build_placement(args)?;
    let n = p.n();
    let decoder: Box<dyn Decoder> = match p.scheme() {
        Scheme::Fractional => Box::new(FrDecoder::new(&p).map_err(|e| e.to_string())?),
        Scheme::Cyclic => Box::new(CrDecoder::new(&p).map_err(|e| e.to_string())?),
        Scheme::Hybrid => Box::new(HrDecoder::new(&p).map_err(|e| e.to_string())?),
        Scheme::Custom => Box::new(ExactDecoder::new(&p)),
    };
    let cluster = ClusterConfig {
        n,
        compute_time_per_partition: 0.05,
        comm_time: 0.1,
        jitter: Delay::Exponential { mean: 0.4 },
        straggler_delay: Delay::none(),
        stragglers: StragglerSelection::None,
    };
    let plans = isgc_simnet::planner::plan_wait_counts(&p, decoder.as_ref(), cluster, 2000, 7);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "wait-count profile for {} (exponential upload jitter, mean 0.4 s):",
        p.scheme()
    );
    let _ = writeln!(
        out,
        "{:>4}  {:>12}  {:>14}  {:>15}",
        "w", "E[step] (s)", "E[recovered]", "relative total"
    );
    for plan in &plans {
        let _ = writeln!(
            out,
            "{:>4}  {:>12.3}  {:>14.2}  {:>15.3}",
            plan.w, plan.step_time, plan.recovered, plan.relative_total_time
        );
    }
    let _ = writeln!(
        out,
        "best w = {} (minimum relative time-to-threshold)",
        isgc_simnet::planner::best_wait_count(&plans)
    );
    Ok(out)
}

fn cmd_trace(args: &[String]) -> Result<String, String> {
    if args.len() < 2 {
        return Err("expected: trace <n> <steps> [slow-rate]".to_string());
    }
    let n: usize = parse(&args[0], "n")?;
    let steps: usize = parse(&args[1], "steps")?;
    let slow_rate: f64 = match args.get(2) {
        Some(s) => parse(s, "slow-rate")?,
        None => 0.2,
    };
    if n == 0 || steps == 0 {
        return Err("n and steps must be positive".to_string());
    }
    if !(0.0..1.0).contains(&slow_rate) {
        return Err("slow-rate must be in [0, 1)".to_string());
    }
    // Pick transition rates with the requested stationary slow fraction and
    // mean episode length ~10 steps.
    let p_sf = 0.1;
    let p_fs = if slow_rate == 0.0 {
        0.0
    } else {
        p_sf * slow_rate / (1.0 - slow_rate)
    };
    let model = isgc_simnet::trace::MarkovStragglerModel {
        n,
        fast: Delay::Uniform { lo: 0.0, hi: 0.02 },
        slow: Delay::ShiftedExponential {
            shift: 1.0,
            mean: 0.5,
        },
        p_fast_to_slow: p_fs,
        p_slow_to_fast: p_sf,
    };
    Ok(model.generate(steps, 42).to_csv_string())
}

fn cmd_sim(args: &[String]) -> Result<String, String> {
    let (p, consumed) = build_placement(args)?;
    let w: usize = parse(
        args.get(consumed)
            .ok_or("missing w (workers to wait for)")?,
        "w",
    )?;
    if !(1..=p.n()).contains(&w) {
        return Err(format!("w must be within 1..={}", p.n()));
    }
    let max_steps: usize = match args.get(consumed + 1) {
        Some(s) => parse(s, "steps")?,
        None => 200,
    };
    let n = p.n();
    let dataset = Dataset::gaussian_classification(64 * n.max(4), 8, 4, 3.0, 777);
    let model = SoftmaxRegression::new(8, 4);
    let cluster = ClusterConfig {
        n,
        compute_time_per_partition: 0.05,
        comm_time: 0.1,
        jitter: Delay::Exponential { mean: 0.4 },
        straggler_delay: Delay::none(),
        stragglers: StragglerSelection::None,
    };
    let report = train(
        &model,
        &dataset,
        &CodingScheme::IsGc(p.clone()),
        &WaitPolicy::WaitForCount(w),
        cluster,
        &TrainingConfig {
            loss_threshold: 0.21,
            max_steps,
            ..TrainingConfig::default()
        },
    );
    let mut out = String::new();
    let _ = writeln!(out, "IS-GC {} n={} c={} w={w}", p.scheme(), n, p.c());
    let _ = writeln!(out, "steps:              {}", report.steps);
    let _ = writeln!(out, "converged:          {}", report.reached_threshold);
    let _ = writeln!(out, "final loss:         {:.4}", report.final_loss());
    let _ = writeln!(
        out,
        "recovered (mean):   {:.1}%",
        100.0 * report.mean_recovered_fraction()
    );
    let _ = writeln!(out, "sim time:           {:.2} s", report.sim_time);
    let _ = writeln!(
        out,
        "time/step (mean):   {:.3} s",
        report.mean_step_duration()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&args("help")).unwrap().contains("USAGE"));
        assert!(run(&args("frobnicate")).is_err());
    }

    #[test]
    fn placement_command_renders() {
        let out = run(&args("placement cr 4 2")).unwrap();
        assert!(out.contains("CR placement, n = 4, c = 2"));
        assert!(out.contains("worker   0: partitions [0, 1]"));
        assert!(out.contains("4 edges"));
        let out = run(&args("placement hr 8 2 2 2")).unwrap();
        assert!(out.contains("HR placement"));
    }

    #[test]
    fn placement_command_rejects_bad_input() {
        assert!(run(&args("placement fr 4 3")).is_err()); // c ∤ n
        assert!(run(&args("placement cr x 2")).is_err());
        assert!(run(&args("placement cr 4")).is_err());
        assert!(run(&args("placement zz 4 2")).is_err());
    }

    #[test]
    fn decode_command_matches_fig1d() {
        let out = run(&args("decode cr 4 2 0,2")).unwrap();
        assert!(out.contains("selected (I):      [0, 2]"));
        assert!(out.contains("recovered:         4/4"));
    }

    #[test]
    fn decode_command_validates_workers() {
        assert!(run(&args("decode cr 4 2 0,9")).is_err());
        assert!(run(&args("decode cr 4 2")).is_err());
        assert!(run(&args("decode cr 4 2 0,x")).is_err());
    }

    #[test]
    fn decode_empty_availability_is_fine() {
        let out = run(&args("decode cr 4 2 ,")).unwrap();
        assert!(out.contains("recovered:         0/4"));
    }

    #[test]
    fn bounds_command_renders_table() {
        let out = run(&args("bounds 8 2")).unwrap();
        assert!(out.contains("n = 8, c = 2"));
        // w = 8 row: both bounds are 4.
        assert!(out.lines().last().unwrap().contains('4'));
        assert!(run(&args("bounds 4 9")).is_err());
        assert!(run(&args("bounds 4")).is_err());
    }

    #[test]
    fn recommend_command_covers_all_rationales() {
        let fr = run(&args("recommend 8 2")).unwrap();
        assert!(fr.contains("FR"));
        assert!(fr.contains("Theorem 4"));
        let hr = run(&args("recommend 10 4")).unwrap();
        assert!(hr.contains("HR"));
        let cr = run(&args("recommend 7 3")).unwrap();
        assert!(cr.contains("CR always works"));
        assert!(run(&args("recommend 0 1")).is_err());
        assert!(run(&args("recommend 4")).is_err());
    }

    #[test]
    fn plan_command_profiles_wait_counts() {
        let out = run(&args("plan cr 4 2")).unwrap();
        assert!(out.contains("best w ="));
        assert!(out.lines().count() >= 7); // header + 4 rows + pick
        assert!(run(&args("plan cr 4")).is_err());
    }

    #[test]
    fn trace_command_emits_csv() {
        let out = run(&args("trace 3 5 0.5")).unwrap();
        assert_eq!(out.lines().count(), 5);
        assert_eq!(out.lines().next().unwrap().split(',').count(), 3);
        assert!(run(&args("trace 0 5")).is_err());
        assert!(run(&args("trace 3 5 1.5")).is_err());
        // Default slow rate works too.
        assert!(run(&args("trace 2 4")).is_ok());
    }

    #[test]
    fn sim_command_runs_quickly() {
        let out = run(&args("sim cr 4 2 2 30")).unwrap();
        assert!(out.contains("steps:"));
        assert!(out.contains("recovered (mean):"));
        assert!(run(&args("sim cr 4 2 9")).is_err()); // w > n
    }
}
