//! # isgc — umbrella crate
//!
//! Re-exports the whole IS-GC reproduction behind one dependency:
//!
//! - [`core`] — placements, conflict graphs, decoders, classic GC;
//! - [`linalg`] — the dense linear-algebra substrate;
//! - [`ml`] — models, synthetic datasets, SGD;
//! - [`simnet`] — discrete-event cluster simulation;
//! - [`runtime`] — real threaded master/worker execution;
//! - [`engine`] — the transport-agnostic training step engine;
//! - [`net`] — the TCP master/worker runtime (flat and 2-level tree);
//! - [`sched`] — the multi-tenant job scheduler;
//! - [`chaos`] — deterministic fault injection for the TCP runtime;
//! - [`obs`] — metrics registry and trace spans with deterministic snapshots.
//!
//! See the repository README for a guided tour and the `examples/` directory
//! for runnable entry points. The crate also ships the `isgc` CLI
//! (`placement | decode | bounds | recommend | plan | trace | sim | serve |
//! serve-jobs | worker | launch | chaos`).
//!
//! # Quickstart: decode a straggler pattern
//!
//! ```
//! use isgc::core::decode::{CrDecoder, Decoder};
//! use isgc::core::{Placement, WorkerSet};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), isgc::core::Error> {
//! let placement = Placement::cyclic(4, 2)?;
//! let decoder = CrDecoder::new(&placement)?;
//! let available = WorkerSet::from_indices(4, [0, 2]); // 1 and 3 straggle
//! let result = decoder.decode(&available, &mut StdRng::seed_from_u64(0));
//! assert_eq!(result.partitions(), &[0, 1, 2, 3]); // full recovery
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart: simulate a training run
//!
//! ```
//! use isgc::core::Placement;
//! use isgc::ml::dataset::Dataset;
//! use isgc::ml::model::SoftmaxRegression;
//! use isgc::simnet::cluster::ClusterConfig;
//! use isgc::simnet::policy::WaitPolicy;
//! use isgc::simnet::trainer::{train, CodingScheme, TrainingConfig};
//!
//! # fn main() -> Result<(), isgc::core::Error> {
//! let report = train(
//!     &SoftmaxRegression::new(8, 4),
//!     &Dataset::gaussian_classification(256, 8, 4, 3.0, 7),
//!     &CodingScheme::IsGc(Placement::cyclic(4, 2)?),
//!     &WaitPolicy::WaitForCount(2),
//!     ClusterConfig::uniform(4, 0.05, 0.05),
//!     &TrainingConfig {
//!         max_steps: 20,
//!         loss_threshold: 0.0,
//!         ..TrainingConfig::default()
//!     },
//! );
//! assert_eq!(report.step_count(), 20);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod cli;

pub use isgc_chaos as chaos;
pub use isgc_core as core;
pub use isgc_engine as engine;
pub use isgc_linalg as linalg;
pub use isgc_ml as ml;
pub use isgc_net as net;
pub use isgc_obs as obs;
pub use isgc_runtime as runtime;
pub use isgc_sched as sched;
pub use isgc_simnet as simnet;
